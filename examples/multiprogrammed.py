#!/usr/bin/env python3
"""Multiprogrammed scheduling — a job mix space-sharing one machine.

Builds a batched job set mixing small and large transition factors, runs it
under dynamic equi-partitioning with ABG and with A-Greedy feedback, and
reports makespan and mean response time against the theoretical lower bounds
(the paper's Figure 6 setting, one job set at a time).

Run:  python examples/multiprogrammed.py [--load 1.0] [--processors 128]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    AControl,
    AGreedy,
    DynamicEquiPartitioning,
    JobSetGenerator,
    JobSpec,
    makespan_lower_bound,
    mean_response_time_lower_bound,
    simulate_job_set,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=1.0,
                        help="target system load (avg parallelism / P)")
    parser.add_argument("--processors", type=int, default=128)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    sample = JobSetGenerator(args.processors, quantum_length=1000).generate(
        rng, args.load
    )
    print(f"job set: {len(sample.jobs)} jobs, achieved load {sample.load:.2f}, "
          f"transition factors {sorted(sample.transition_factors)}")

    m_star = makespan_lower_bound(
        sample.works, sample.spans, [0] * len(sample.jobs), args.processors
    )
    r_star = mean_response_time_lower_bound(
        sample.works, sample.spans, args.processors
    )
    print(f"lower bounds: M* = {m_star:.0f}, R* = {r_star:.0f}\n")

    for policy in (AControl(0.2), AGreedy()):
        specs = [JobSpec(job=j, feedback=policy) for j in sample.jobs]
        result = simulate_job_set(
            specs, DynamicEquiPartitioning(), args.processors, quantum_length=1000
        )
        print(f"=== {policy.name} ===")
        print(f"makespan           : {result.makespan:>9} "
              f"({result.makespan / m_star:.2f} x M*)")
        print(f"mean response time : {result.mean_response_time:>9.0f} "
              f"({result.mean_response_time / r_star:.2f} x R*)")
        print(f"total waste        : {result.total_waste:>9} cycles "
              f"({result.total_waste / result.total_work:.2f} x total work)\n")


if __name__ == "__main__":
    main()
