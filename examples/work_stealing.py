#!/usr/bin/env python3
"""Work stealing — ABG vs the distributed schedulers of the related work.

Runs the same fork-join dag under three schedulers:

- **ABG** — centralized breadth-first greedy + A-Control feedback;
- **A-Steal** — randomized work stealing + A-Greedy-style feedback
  (Agrawal, He, Leiserson);
- **ABP** — randomized work stealing, no feedback (Arora, Blumofe,
  Plaxton): always requests the whole machine.

The headline of the paper's related work — feedback-driven adaptation
dwarfs feedback-free work stealing on efficiency — shows up as ABP's waste
column.

Run:  python examples/work_stealing.py [--width 16] [--processors 32]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AControl, WorkStealingExecutor, simulate_job
from repro.dag import fork_join_from_phases
from repro.stealing import ABPPolicy, ASteal


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=16)
    parser.add_argument("--processors", type=int, default=32)
    parser.add_argument("--phase-levels", type=int, default=150)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--quantum", type=int, default=50)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    phases = []
    for _ in range(args.iterations):
        phases.append((1, args.phase_levels))
        phases.append((args.width, args.phase_levels))
    dag = fork_join_from_phases(phases)
    print(f"job: T1={dag.work}, Tinf={dag.span}, "
          f"avg parallelism {dag.average_parallelism:.1f}; "
          f"machine P={args.processors}, L={args.quantum}\n")

    rng = np.random.default_rng(args.seed)
    print(f"{'scheduler':<12} {'time':>7} {'time/Tinf':>10} {'waste/T1':>9} "
          f"{'avg procs':>10} {'steals ok':>10}")

    # ABG: centralized
    trace = simulate_job(dag, AControl(0.2), args.processors, quantum_length=args.quantum)
    print(f"{'ABG':<12} {trace.running_time:>7} "
          f"{trace.running_time / dag.span:>10.2f} "
          f"{trace.total_waste / dag.work:>9.2f} {trace.avg_allotment:>10.1f} "
          f"{'—':>10}")

    # the two work stealers
    for name, policy in (
        ("A-Steal", ASteal()),
        ("ABP", ABPPolicy(args.processors)),
    ):
        executor = WorkStealingExecutor(dag, rng)
        trace = simulate_job(
            executor, policy, args.processors, quantum_length=args.quantum
        )
        print(f"{name:<12} {trace.running_time:>7} "
              f"{trace.running_time / dag.span:>10.2f} "
              f"{trace.total_waste / dag.work:>9.2f} {trace.avg_allotment:>10.1f} "
              f"{executor.stats.steal_success_rate:>10.1%}")

    print("\nABP finishes fast by hogging every processor through the serial "
          "phases; the adaptive schedulers release what they cannot use.")


if __name__ == "__main__":
    main()
