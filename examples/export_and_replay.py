#!/usr/bin/env python3
"""Trace export, reload, and offline analysis.

A pattern for longer studies: run the (possibly expensive) simulation once,
persist the full quantum traces as versioned JSON, then analyze offline —
timelines, trim analysis, transition factors — without re-simulating.

Run:  python examples/export_and_replay.py [--dir /tmp/abg-traces]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro import (
    AControl,
    AGreedy,
    ForkJoinGenerator,
    classify_quanta,
    load_trace,
    measured_transition_factor,
    save_trace,
    simulate_job,
)
from repro.report import allotment_strip


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="/tmp/abg-traces")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()
    out = Path(args.dir)
    out.mkdir(parents=True, exist_ok=True)

    # --- simulate once, save ------------------------------------------------
    rng = np.random.default_rng(args.seed)
    job = ForkJoinGenerator(quantum_length=1000).generate(rng, transition_factor=24)
    paths = {}
    for policy in (AControl(0.2), AGreedy()):
        trace = simulate_job(job, policy, 128, quantum_length=1000)
        path = out / f"{policy.name.split('(')[0].lower().replace('-', '')}.json"
        save_trace(trace, path)
        paths[policy.name] = path
        print(f"saved {len(trace)} quanta -> {path}")

    # --- reload and analyze offline ------------------------------------------
    for name, path in paths.items():
        trace = load_trace(path)
        classes = classify_quanta(trace)
        print(f"\n=== {name} (reloaded from {path.name}) ===")
        print(allotment_strip(trace))
        print(f"running time {trace.running_time}, waste {trace.total_waste}, "
              f"CL {measured_transition_factor(trace):.1f}, "
              f"quanta acc/ded/nonfull = {classes.counts}")


if __name__ == "__main__":
    main()
