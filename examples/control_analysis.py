#!/usr/bin/env python3
"""Control-theoretic view — Theorem 1 on analytic and simulated loops.

For a constant-parallelism job this script:

1. builds the closed loop ``T(z) = (K/A)/(z - (1-K/A))`` with the gain of
   Theorem 1 and prints its pole and analytic step response;
2. simulates actual ABG scheduling of the same job and scores the measured
   request trace with the paper's four criteria (BIBO stability,
   steady-state error, overshoot, convergence rate);
3. does the same for A-Greedy, showing the oscillation ABG eliminates.

Run:  python examples/control_analysis.py [--parallelism 10] [--rate 0.2]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AControl, AGreedy, analyze_response, simulate_job, theorem1_loop
from repro.workloads.forkjoin import constant_parallelism_job


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallelism", type=int, default=10)
    parser.add_argument("--rate", type=float, default=0.2)
    parser.add_argument("--quanta", type=int, default=16)
    args = parser.parse_args()

    a_const, r = args.parallelism, args.rate

    # 1. analytic closed loop
    loop = theorem1_loop(a_const, r)
    print(f"closed loop: gain K = (1-r)A = {loop.gain:.2f}, pole = {loop.pole:.2f}, "
          f"BIBO stable = {loop.is_bibo_stable}, dc gain = {loop.dc_gain:.3f}")
    analytic = loop.request_response(args.quanta)
    print("analytic d(q):", " ".join(f"{d:.2f}" for d in analytic))

    # 2 & 3. simulated traces
    job_levels = args.quanta * 1000
    for policy in (AControl(r), AGreedy()):
        job = constant_parallelism_job(a_const, job_levels)
        trace = simulate_job(job, policy, 4 * a_const, quantum_length=1000)
        d = np.array(trace.request_series()[: args.quanta])
        m = analyze_response(d, float(a_const))
        print(f"\n=== {policy.name} (simulated) ===")
        print("d(q):", " ".join(f"{x:.2f}" for x in d))
        print(f"bounded              : {m.bounded}")
        print(f"steady-state error   : {m.steady_state_error:.4f}")
        print(f"maximum overshoot    : {m.overshoot:.4f}")
        print(f"convergence rate     : {m.convergence_rate:.4f}"
              f"  (target {r} for ABG)")
        print(f"oscillation amplitude: {m.oscillation_amplitude:.4f}")
        print(f"settled after        : {m.settling_quanta} quanta")


if __name__ == "__main__":
    main()
