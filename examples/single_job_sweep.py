#!/usr/bin/env python3
"""Figure-5-style sweep — ABG vs A-Greedy across transition factors.

Regenerates a reduced version of the paper's first simulation set: 10 jobs
per transition factor, each run alone on 128 processors with all requests
granted, reporting normalized running time and waste plus the per-factor
A-Greedy/ABG ratios.  The paper's headline numbers — ~20% faster, ~50% less
waste — should be visible in the summary line.

Run:  python examples/single_job_sweep.py [--full]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentTable, format_table, run_fig5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full scale (50 jobs x factors 2..100; slow)",
    )
    args = parser.parse_args()

    if args.full:
        factors, jobs = tuple(range(2, 101)), 50
    else:
        factors, jobs = tuple(range(2, 101, 10)), 10

    result = run_fig5(factors=factors, jobs_per_factor=jobs)
    print(
        format_table(
            ExperimentTable(
                title="Running time and waste vs transition factor "
                "(Figure 5 of the paper)",
                columns=(
                    "transition_factor",
                    "abg_time_norm",
                    "agreedy_time_norm",
                    "time_ratio",
                    "abg_waste_norm",
                    "agreedy_waste_norm",
                    "waste_ratio",
                ),
                rows=tuple(result.points),
            )
        )
    )
    print()
    print(f"ABG running-time improvement: {100 * result.mean_time_improvement:.1f}% "
          f"(paper reports ~20%)")
    print(f"ABG waste reduction:          {100 * result.mean_waste_reduction:.1f}% "
          f"(paper reports ~50%)")


if __name__ == "__main__":
    main()
