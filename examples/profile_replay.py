#!/usr/bin/env python3
"""Profile replay — schedule a measured parallelism profile adaptively.

A downstream-user scenario the paper's introduction motivates: you profiled
your application's parallelism over time (levels of its computation dag) and
want to know how an adaptive two-level scheduler would run it.  This script
replays a piecewise-constant profile through ABG, the A-Greedy baseline, a
static allocation (the conventional approach the paper argues against), and
a clairvoyant oracle, under a constrained machine.

Run:  python examples/profile_replay.py [--processors 48] [--seed 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AControl, AGreedy, FixedRequest, OracleFeedback, simulate_job
from repro.sim.jobs import make_executor
from repro.workloads.profiles import job_from_profile, random_profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--processors", type=int, default=48)
    parser.add_argument("--segments", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    profile = random_profile(
        rng, args.segments, segment_levels=(1500, 4000), widths=(1, 64)
    )
    job = job_from_profile(profile)
    print(f"profile: {len(profile)} levels over {args.segments} segments, "
          f"T1={job.work}, Tinf={job.span}, "
          f"avg parallelism {job.average_parallelism:.1f}, "
          f"peak width {job.max_width}")
    print(f"machine: P={args.processors}, L=1000\n")

    print(f"{'policy':<22} {'time':>8} {'time/Tinf':>10} {'waste':>10} "
          f"{'waste/T1':>9} {'reallocs':>9}")

    rows = []
    static = min(args.processors, round(job.average_parallelism))
    for name, make_policy in (
        ("ABG (r=0.2)", lambda ex: AControl(0.2)),
        ("A-Greedy", lambda ex: AGreedy()),
        (f"static ({static} procs)", lambda ex: FixedRequest(static)),
        ("oracle", lambda ex: OracleFeedback(lambda: ex.current_parallelism)),
    ):
        executor = make_executor(job)
        policy = make_policy(executor)
        trace = simulate_job(
            executor, policy, args.processors, quantum_length=1000
        )
        rows.append((name, trace))
        print(f"{name:<22} {trace.running_time:>8} "
              f"{trace.running_time / job.span:>10.2f} "
              f"{trace.total_waste:>10} "
              f"{trace.total_waste / job.work:>9.2f} "
              f"{trace.reallocation_count:>9}")

    abg = rows[0][1]
    oracle = rows[3][1]
    print(f"\nABG is within {abg.running_time / oracle.running_time:.2f}x of the "
          f"clairvoyant oracle's running time without seeing the future.")


if __name__ == "__main__":
    main()
