#!/usr/bin/env python3
"""Quickstart — schedule one malleable job with ABG and A-Greedy.

Builds the data-parallel fork-join job of the paper's evaluation, runs it
through the two-level simulator under both feedback policies, and prints the
per-quantum trace plus the headline metrics (running time, waste, measured
transition factor).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AControl,
    AGreedy,
    ForkJoinGenerator,
    measured_transition_factor,
    simulate_job,
)


def main() -> None:
    # A fork-join job whose parallel phases run 20 chains: its transition
    # factor (how sharply parallelism changes between quanta) is ~20.
    rng = np.random.default_rng(42)
    generator = ForkJoinGenerator(quantum_length=1000)
    job = generator.generate(rng, transition_factor=20)
    print(f"job: T1={job.work} tasks, Tinf={job.span} levels, "
          f"average parallelism {job.average_parallelism:.1f}")

    # 128-processor machine, every request granted (the paper's first
    # simulation setting), quantum length L=1000.
    for policy in (AControl(convergence_rate=0.2), AGreedy()):
        trace = simulate_job(job, policy, availability=128, quantum_length=1000)
        print(f"\n=== {policy.name} ===")
        print(f"{'q':>3} {'d(q)':>8} {'a(q)':>5} {'T1(q)':>7} "
              f"{'Tinf(q)':>8} {'A(q)':>7}")
        for rec in trace.records[:12]:
            print(f"{rec.index:>3} {rec.request:>8.2f} {rec.allotment:>5} "
                  f"{rec.work:>7} {rec.span:>8.1f} {rec.avg_parallelism:>7.2f}")
        if len(trace) > 12:
            print(f"... ({len(trace)} quanta total)")
        print(f"running time : {trace.running_time} steps "
              f"(critical path {job.span})")
        print(f"waste        : {trace.total_waste} processor cycles "
              f"({trace.total_waste / job.work:.2f} x T1)")
        print(f"measured CL  : {measured_transition_factor(trace):.1f}")
        print(f"reallocations: {trace.reallocation_count}")


if __name__ == "__main__":
    main()
