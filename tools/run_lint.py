#!/usr/bin/env python3
"""Thin runner for the project lint pass (``python -m repro lint``).

Exists so the lint can be invoked without an installed package or a
``PYTHONPATH`` export — pre-commit and bare checkouts both call this:

    python tools/run_lint.py [--deep] [--format json] [paths...]

Defaults to linting ``src/repro`` when no paths are given; flags pass
through to the ``lint`` subcommand (``--deep`` adds the interprocedural
ABG2xx analysis).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    args = sys.argv[1:]
    if not any(not a.startswith("-") for a in args):
        args = [*args, str(REPO_ROOT / "src" / "repro")]
    sys.exit(main(["lint", *args]))
