"""Static-analysis gates, degraded gracefully for minimal environments.

The custom lint pass and an annotation-completeness scan always run (pure
stdlib); ``ruff`` and ``mypy --strict`` run when the tools are installed
(CI installs them; a bare checkout skips).
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_custom_lint_clean() -> None:
    from repro.verify.lint import lint_paths

    findings = lint_paths([SRC])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_all_signatures_annotated() -> None:
    """Cheap proxy for ``mypy --strict``'s no-untyped-def: every function in
    ``src/repro`` annotates its parameters and return type."""
    missing: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            where = f"{path.relative_to(REPO_ROOT)}:{node.lineno} {node.name}"
            args = node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(f"{where}: parameter {arg.arg!r}")
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append(f"{where}: *{args.vararg.arg}")
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append(f"{where}: **{args.kwarg.arg}")
            if node.returns is None and node.name != "__init__":
                missing.append(f"{where}: return type")
    assert missing == [], "\n".join(missing)


def test_tools_runner_lints_the_tree() -> None:
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "run_lint.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean() -> None:
    proc = subprocess.run(
        ["ruff", "check", "src"], cwd=REPO_ROOT, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_clean() -> None:
    proc = subprocess.run(
        ["mypy", "--strict", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
