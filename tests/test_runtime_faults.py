"""Tests for the deterministic fault-injection harness (``repro.runtime.faults``)."""

from __future__ import annotations

import pytest

from repro.runtime import FAULT_KINDS, FAULTS_ENV_VAR, FaultPlan, TransientFault


class TestSpecSyntax:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=11:rate=0.4:kinds=crash,transient:max-failures=2:hang-seconds=30"
        )
        assert plan == FaultPlan(
            seed=11,
            rate=0.4,
            kinds=("crash", "transient"),
            max_failures=2,
            hang_seconds=30.0,
        )

    def test_format_round_trips(self):
        plan = FaultPlan(seed=3, rate=0.75, kinds=("hang",), max_failures=4)
        assert FaultPlan.parse(plan.format()) == plan

    def test_defaults(self):
        assert FaultPlan.parse("seed=1") == FaultPlan(seed=1)

    @pytest.mark.parametrize(
        "spec",
        [
            "seed=abc",
            "rate=2.0",
            "rate=-0.1",
            "kinds=explode",
            "max-failures=0",
            "frequency=1",
            "seed",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "seed=5:rate=1.0")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.seed == 5 and plan.rate == 1.0
        monkeypatch.setenv(FAULTS_ENV_VAR, "  ")
        assert FaultPlan.from_env() is None
        monkeypatch.delenv(FAULTS_ENV_VAR)
        assert FaultPlan.from_env() is None


class TestSchedule:
    def test_deterministic_across_instances(self):
        a = FaultPlan(seed=9, rate=0.5, max_failures=3)
        b = FaultPlan(seed=9, rate=0.5, max_failures=3)
        keys = [f"unit-{i}" for i in range(50)]
        assert [a.planned_failures(k) for k in keys] == [
            b.planned_failures(k) for k in keys
        ]
        assert [a.decide(k, 0) for k in keys] == [b.decide(k, 0) for k in keys]

    def test_rate_zero_never_faults(self):
        plan = FaultPlan(seed=1, rate=0.0)
        assert all(plan.planned_failures(f"u{i}") == 0 for i in range(100))

    def test_rate_one_always_faults(self):
        plan = FaultPlan(seed=1, rate=1.0)
        assert all(plan.planned_failures(f"u{i}") >= 1 for i in range(100))

    def test_failures_bounded_then_success(self):
        plan = FaultPlan(seed=2, rate=1.0, max_failures=3)
        for i in range(30):
            key = f"u{i}"
            k = plan.planned_failures(key)
            assert 1 <= k <= 3
            assert all(plan.decide(key, a) is not None for a in range(k))
            assert plan.decide(key, k) is None

    def test_decide_picks_from_declared_kinds(self):
        plan = FaultPlan(seed=4, rate=1.0, kinds=("transient",))
        assert {plan.decide(f"u{i}", 0) for i in range(20)} == {"transient"}

    def test_seed_changes_schedule(self):
        keys = [f"u{i}" for i in range(200)]
        a = [FaultPlan(seed=1, rate=0.5).planned_failures(k) for k in keys]
        b = [FaultPlan(seed=2, rate=0.5).planned_failures(k) for k in keys]
        assert a != b


class TestInjection:
    def test_unfaulted_attempt_is_a_no_op(self):
        FaultPlan(seed=1, rate=0.0).inject("u", 0, in_worker=True)

    def test_transient_raises(self):
        plan = FaultPlan(seed=1, rate=1.0, kinds=("transient",))
        with pytest.raises(TransientFault):
            plan.inject("u", 0, in_worker=True)

    def test_crash_and_hang_demote_in_process(self):
        # in the supervising process a crash/hang must not kill/stall the
        # parent: both demote to TransientFault
        for kinds in (("crash",), ("hang",)):
            plan = FaultPlan(seed=1, rate=1.0, kinds=kinds, hang_seconds=60.0)
            with pytest.raises(TransientFault):
                plan.inject("u", 0, in_worker=False)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_failures=0)
        with pytest.raises(ValueError):
            FaultPlan(kinds=())
        with pytest.raises(ValueError):
            FaultPlan(kinds=("nope",))
        assert FaultPlan().kinds == FAULT_KINDS
