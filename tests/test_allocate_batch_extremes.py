"""Extreme-regime lockstep tests for the array allocation paths.

Each allocator's ``allocate_batch`` must agree with its mapping-path
``allocate`` bit for bit in the regimes the usual randomized sweeps rarely
hit: machines vastly larger than the job set, degenerate single-job groups,
and invalid zero-request jobs appearing mid-set (both entry points must
reject them identically, including which job the error names)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocators import (
    DynamicEquiPartitioning,
    HierarchicalAllocator,
    RoundRobinAllocator,
)

ALLOCATOR_FACTORIES = [
    DynamicEquiPartitioning,
    RoundRobinAllocator,
    lambda: HierarchicalAllocator(group_size=512, rebalance_interval=3),
]


def as_arrays(requests: dict[int, int]) -> tuple[np.ndarray, np.ndarray]:
    ids = np.array(sorted(requests), dtype=np.int64)
    reqs = np.array([requests[int(j)] for j in ids], dtype=np.int64)
    return ids, reqs


def lockstep(make, request_rounds, total: int) -> None:
    """Run the same round sequence through a mapping-path instance and an
    array-path instance; every round must agree exactly (rotation state
    included, which is why the comparison spans multiple rounds)."""
    scalar = make()
    batched = make()
    for requests in request_rounds:
        ids, reqs = as_arrays(requests)
        expected = scalar.allocate(requests, total)
        grants = batched.allocate_batch(ids, reqs, total)
        assert expected == {int(j): int(g) for j, g in zip(ids, grants)}


class TestMachineMuchLargerThanJobSet:
    """P >> |J|: every job is satisfied outright and the waterfall's
    first round terminates; remainders never rotate."""

    @pytest.mark.parametrize("make", ALLOCATOR_FACTORIES)
    def test_three_jobs_ten_thousand_processors(self, make):
        rounds = [
            {0: 7, 1: 300, 2: 41},
            {0: 7, 1: 300, 2: 41},
            {0: 9999, 1: 1, 2: 5000},
        ]
        lockstep(make, rounds, total=10_000)

    @pytest.mark.parametrize("make", ALLOCATOR_FACTORIES)
    def test_single_job_huge_machine(self, make):
        lockstep(make, [{17: 3}, {17: 12_000}, {17: 1}], total=16_384)

    def test_hierarchical_grants_cap_at_group_budget(self):
        """A lone huge request on a big machine gets its whole group's
        budget, not the whole machine — the documented price of
        decentralization."""
        alloc = HierarchicalAllocator(group_size=1024)
        grants = alloc.allocate({0: 10_000}, 10_240)
        assert alloc.group_count == 10
        assert grants[0] == 1024


class TestZeroRequestMidSet:
    """A request below one processor is invalid; both entry points must
    reject the set and name the same offending job."""

    @pytest.mark.parametrize("make", ALLOCATOR_FACTORIES)
    def test_rejection_names_the_same_job(self, make):
        requests = {3: 5, 7: 0, 11: 2}
        scalar = make()
        batched = make()
        with pytest.raises(ValueError) as scalar_err:
            scalar.allocate(requests, 1024)
        ids, reqs = as_arrays(requests)
        with pytest.raises(ValueError) as batch_err:
            batched.allocate_batch(ids, reqs, 1024)
        assert str(scalar_err.value) == str(batch_err.value)
        assert "7" in str(batch_err.value)

    @pytest.mark.parametrize("make", ALLOCATOR_FACTORIES)
    def test_negative_request_rejected(self, make):
        ids = np.array([0, 1], dtype=np.int64)
        reqs = np.array([4, -2], dtype=np.int64)
        with pytest.raises(ValueError):
            make().allocate_batch(ids, reqs, 1024)

    def test_rejection_leaves_hierarchical_state_clean(self):
        """A rejected round must not advance the quantum counter or admit
        the offending set's jobs."""
        alloc = HierarchicalAllocator(group_size=8)
        alloc.allocate({0: 2, 1: 2}, 16)
        before = alloc.membership()
        with pytest.raises(ValueError):
            alloc.allocate({0: 2, 1: 2, 2: 0}, 16)
        assert alloc.membership() == before
        assert alloc.quanta_to_rebalance() == alloc.rebalance_interval - 1


class TestSingleJobGroups:
    """group_size=1 degenerates every group to one processor and at most
    one job: each inner waterfall is the |J|=1 base case."""

    def test_every_job_gets_exactly_one_processor(self):
        alloc = HierarchicalAllocator(group_size=1)
        grants = alloc.allocate({j: j + 1 for j in range(8)}, 8)
        assert alloc.group_count == 8
        assert grants == {j: 1 for j in range(8)}

    def test_lockstep_across_churn(self):
        rng = np.random.default_rng(6)
        rounds = []
        for _ in range(10):
            members = sorted(rng.choice(12, size=int(rng.integers(1, 9)), replace=False).tolist())
            rounds.append({int(j): int(rng.integers(1, 20)) for j in members})
        lockstep(lambda: HierarchicalAllocator(group_size=1, rebalance_interval=2), rounds, total=12)

    def test_fixed_point_certifies_full_span_between_boundaries(self):
        alloc = HierarchicalAllocator(group_size=1, rebalance_interval=100)
        requests = {0: 5, 1: 3}
        grants_map = alloc.allocate(requests, 4)
        ids, reqs = as_arrays(requests)
        grants = np.array([grants_map[int(j)] for j in ids], dtype=np.int64)
        assert alloc.fixed_point_probe(ids, reqs, grants, 4, 50) == 50
