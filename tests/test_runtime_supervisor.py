"""Tests for the supervised worker pool (``repro.runtime.supervisor``).

The fault seams — crash (``os._exit`` in a pool worker), hang (sleep past
the task timeout), transient (fail the first k attempts, then succeed) —
are driven through the deterministic :class:`FaultPlan` schedule, so every
assertion here is reproducible: retry counts, backoff delays, pool
restarts, and the serial-fallback activation are pure functions of the
plan's seed.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    CheckpointJournal,
    FaultPlan,
    RetryPolicy,
    TaskError,
    run_supervised,
)

#: Backoff sleeps are injected away — tests assert on recorded delays
#: instead of wall-clock time.
NO_SLEEP = {"sleep": lambda _s: None}


def _double(x: int) -> int:
    return x * 2


def _boom(x: int) -> int:
    raise ValueError(f"bad unit {x}")


class TestSerialBasics:
    def test_order_preserving_map(self):
        outcome = run_supervised(_double, [3, 1, 2], workers=1)
        assert outcome.results == [6, 2, 4]
        assert outcome.pool_restarts == 0
        assert not outcome.serial_fallback
        assert set(outcome.attempts.values()) == {1}

    def test_empty_input(self):
        assert run_supervised(_double, [], workers=4).results == []

    def test_real_failure_exhausts_budget(self):
        with pytest.raises(TaskError) as info:
            run_supervised(_boom, [7], workers=1, retries=2, **NO_SLEEP)
        assert info.value.attempts == 3  # 1 try + 2 retries
        assert isinstance(info.value.cause, ValueError)

    def test_zero_retries_fails_fast(self):
        with pytest.raises(TaskError) as info:
            run_supervised(_boom, [7], workers=1, retries=0, **NO_SLEEP)
        assert info.value.attempts == 1


class TestValidation:
    def test_journal_requires_keys(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        with pytest.raises(ValueError, match="keys"):
            run_supervised(_double, [1], journal=journal)

    def test_key_count_must_match(self):
        with pytest.raises(ValueError, match="keys"):
            run_supervised(_double, [1, 2], keys=["only-one"])

    def test_task_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="task_timeout"):
            run_supervised(_double, [1], task_timeout=0.0)

    def test_retries_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retries"):
            run_supervised(_double, [1], retries=-1)


class TestRetryAccounting:
    def test_transient_faults_retry_to_success(self):
        plan = FaultPlan(seed=5, rate=1.0, kinds=("transient",), max_failures=2)
        keys = [f"u{i}" for i in range(6)]
        outcome = run_supervised(
            _double, list(range(6)), keys=keys, retries=2, faults=plan, **NO_SLEEP
        )
        assert outcome.results == [0, 2, 4, 6, 8, 10]
        for key in keys:
            assert outcome.attempts[key] == plan.planned_failures(key) + 1

    def test_backoff_delays_are_deterministic(self):
        plan = FaultPlan(seed=5, rate=1.0, kinds=("transient",), max_failures=2)
        keys = [f"u{i}" for i in range(4)]
        runs = [
            run_supervised(
                _double, list(range(4)), keys=keys, retries=2, faults=plan, **NO_SLEEP
            )
            for _ in range(2)
        ]
        assert runs[0].delays == runs[1].delays
        assert len(runs[0].delays) > 0
        assert all(d > 0 for d in runs[0].delays)

    def test_retries_flag_bounds_transients(self):
        plan = FaultPlan(seed=3, rate=1.0, kinds=("transient",), max_failures=5)
        key = "victim"
        needed = plan.planned_failures(key)
        assert needed >= 1
        with pytest.raises(TaskError):
            run_supervised(
                _double, [1], keys=[key], retries=needed - 1, faults=plan, **NO_SLEEP
            )
        outcome = run_supervised(
            _double, [1], keys=[key], retries=needed, faults=plan, **NO_SLEEP
        )
        assert outcome.results == [2]


class TestRetryPolicy:
    def test_no_delay_before_first_retry(self):
        assert RetryPolicy().delay("k", 0) == 0.0

    def test_growth_and_cap(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.4, jitter=0.0)
        assert policy.delay("k", 1) == pytest.approx(0.1)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 3) == pytest.approx(0.4)
        assert policy.delay("k", 9) == pytest.approx(0.4)  # capped

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=1.0, jitter=0.5)
        d1 = policy.delay("k", 1)
        assert 0.1 <= d1 <= 0.1 * 1.5
        assert d1 == policy.delay("k", 1)
        assert policy.delay("other", 1) != d1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestJournalResume:
    def test_resume_skips_completed_units(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        keys = [f"u{i}" for i in range(5)]
        first = run_supervised(_double, list(range(5)), keys=keys, journal=journal)
        assert first.resumed == ()
        assert len(journal) == 5

        second = run_supervised(
            _double, list(range(5)), keys=keys, journal=CheckpointJournal(tmp_path / "j")
        )
        assert second.results == first.results
        assert second.resumed == tuple(keys)
        assert all(second.attempts[k] == 0 for k in keys)

    def test_partial_resume_runs_only_missing(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        keys = [f"u{i}" for i in range(4)]
        journal.record("u0", 0)
        journal.record("u2", 4)
        outcome = run_supervised(
            _double, list(range(4)), keys=keys, journal=journal
        )
        assert outcome.results == [0, 2, 4, 6]
        assert outcome.resumed == ("u0", "u2")
        assert outcome.attempts["u0"] == 0 and outcome.attempts["u1"] == 1

    def test_encode_decode_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        keys = ["a", "b"]
        run_supervised(
            _double,
            [1, 2],
            keys=keys,
            journal=journal,
            encode=lambda r: {"value": r},
            decode=lambda p: int(p["value"]),  # type: ignore[index]
        )
        resumed = run_supervised(
            _double,
            [1, 2],
            keys=keys,
            journal=CheckpointJournal(tmp_path / "j"),
            encode=lambda r: {"value": r},
            decode=lambda p: int(p["value"]),  # type: ignore[index]
        )
        assert resumed.results == [2, 4]
        assert resumed.resumed == ("a", "b")


@pytest.mark.slow
class TestPoolSupervision:
    def test_pool_matches_serial(self):
        serial = run_supervised(_double, list(range(12)), workers=1)
        pooled = run_supervised(_double, list(range(12)), workers=4)
        assert pooled.results == serial.results

    def test_crash_recovery_restarts_pool(self):
        plan = FaultPlan(seed=2, rate=1.0, kinds=("crash",), max_failures=1)
        outcome = run_supervised(
            _double,
            list(range(4)),
            workers=2,
            keys=[f"c{i}" for i in range(4)],
            retries=2,
            faults=plan,
            max_pool_restarts=20,
            **NO_SLEEP,
        )
        assert outcome.results == [0, 2, 4, 6]
        assert outcome.pool_restarts >= 1
        assert not outcome.serial_fallback

    def test_transient_faults_do_not_restart_pool(self):
        plan = FaultPlan(seed=2, rate=1.0, kinds=("transient",), max_failures=1)
        outcome = run_supervised(
            _double,
            list(range(4)),
            workers=2,
            keys=[f"t{i}" for i in range(4)],
            retries=2,
            faults=plan,
            **NO_SLEEP,
        )
        assert outcome.results == [0, 2, 4, 6]
        assert outcome.pool_restarts == 0

    def test_hang_reaped_by_timeout(self):
        plan = FaultPlan(
            seed=2, rate=1.0, kinds=("hang",), max_failures=1, hang_seconds=30.0
        )
        outcome = run_supervised(
            _double,
            list(range(2)),
            workers=2,
            keys=["h0", "h1"],
            retries=2,
            task_timeout=0.8,
            faults=plan,
            max_pool_restarts=20,
            **NO_SLEEP,
        )
        assert outcome.results == [0, 2]
        assert outcome.pool_restarts >= 1

    def test_serial_fallback_after_repeated_pool_failure(self):
        plan = FaultPlan(seed=2, rate=1.0, kinds=("crash",), max_failures=2)
        outcome = run_supervised(
            _double,
            list(range(4)),
            workers=2,
            keys=[f"f{i}" for i in range(4)],
            retries=4,
            faults=plan,
            max_pool_restarts=0,
            **NO_SLEEP,
        )
        # the pool broke more often than allowed; the supervisor degraded to
        # in-process execution where crashes demote to transients and the
        # retry budget still completes every unit
        assert outcome.results == [0, 2, 4, 6]
        assert outcome.serial_fallback

    def test_submit_time_pool_breakage_loses_no_unit(self, monkeypatch):
        # Regression: a BrokenProcessPool raised by submit() itself (worker
        # died between scheduler iterations) used to drop the popped unit,
        # leaving a None hole in the results.
        from concurrent.futures.process import BrokenProcessPool

        from repro.runtime import supervisor as sup_mod

        real_pool = sup_mod.ProcessPoolExecutor
        state = {"broken": False}

        class _FlakySubmitPool(real_pool):  # type: ignore[valid-type, misc]
            def submit(self, *args, **kwargs):
                if not state["broken"]:
                    state["broken"] = True
                    raise BrokenProcessPool("simulated submit-time breakage")
                return super().submit(*args, **kwargs)

        monkeypatch.setattr(sup_mod, "ProcessPoolExecutor", _FlakySubmitPool)
        outcome = run_supervised(_double, list(range(6)), workers=3, **NO_SLEEP)
        assert outcome.results == [0, 2, 4, 6, 8, 10]
        assert outcome.pool_restarts == 1


class TestWorkerPool:
    """The reusable cross-call pool the sharded executor shares between
    window barriers."""

    def test_acquire_is_lazy_and_reuses_the_executor(self):
        from repro.runtime.supervisor import WorkerPool

        pool = WorkerPool(2)
        try:
            first = pool.acquire()
            assert pool.acquire() is first
        finally:
            pool.close()

    def test_discard_forces_a_fresh_executor(self):
        from repro.runtime.supervisor import WorkerPool

        with WorkerPool(2) as pool:
            first = pool.acquire()
            pool.discard(first)
            assert pool.acquire() is not first

    def test_shared_pool_survives_run_supervised(self):
        from repro.runtime.supervisor import WorkerPool

        with WorkerPool(2) as pool:
            executor = pool.acquire()
            a = run_supervised(_double, list(range(6)), workers=2, pool=pool)
            b = run_supervised(_double, list(range(6)), workers=2, pool=pool)
            assert a.results == b.results == [x * 2 for x in range(6)]
            # neither run tore the shared executor down
            assert pool.acquire() is executor

    def test_shared_pool_crash_recovery_discards_and_rebuilds(self):
        from repro.runtime.supervisor import WorkerPool

        plan = FaultPlan(seed=2, rate=1.0, kinds=("crash",), max_failures=1)
        with WorkerPool(2) as pool:
            broken = pool.acquire()
            outcome = run_supervised(
                _double,
                list(range(4)),
                workers=2,
                keys=[f"wp{i}" for i in range(4)],
                retries=2,
                faults=plan,
                max_pool_restarts=20,
                pool=pool,
                **NO_SLEEP,
            )
            assert outcome.results == [0, 2, 4, 6]
            assert outcome.pool_restarts >= 1
            # the crashed executor was discarded, not resurrected
            assert pool.acquire() is not broken
