"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _parse_range, build_parser, main
from repro.experiments.common import ExperimentTable, format_series, format_table


class TestParseRange:
    def test_single(self):
        assert _parse_range("5") == [5]

    def test_two_part(self):
        assert _parse_range("2:6") == [2, 3, 4, 5]

    def test_three_part(self):
        assert _parse_range("2:10:3") == [2, 5, 8]

    def test_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_range("1:2:3:4")


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = [
            "fig1",
            "fig2",
            "fig4",
            "fig5",
            "fig6",
            "theorem1",
            "bounds",
            "ablation-rate",
            "ablation-quantum",
            "ablation-discipline",
            "ablation-allocator",
        ]
        for cmd in sub:
            args = parser.parse_args([cmd])
            assert callable(args.func)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestResilienceFlagValidation:
    """``--jobs``/``--workers``/``--retries``/``--task-timeout`` are validated
    at the CLI boundary with friendly argparse errors."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["all", "--jobs", "-1"],
            ["all", "--jobs", "two"],
            ["fig5", "--workers", "-2"],
            ["fig6", "--workers", "1.5"],
            ["fig5", "--jobs", "0"],
            ["fig6", "--sets", "0"],
            ["fig6", "--bins", "-3"],
            ["all", "--retries", "-1"],
            ["fig5", "--retries", "many"],
            ["all", "--task-timeout", "0"],
            ["fig6", "--task-timeout", "-5"],
            ["all", "--task-timeout", "soon"],
            ["all", "--faults", "rate=7"],
            ["all", "--faults", "kinds=explode"],
        ],
    )
    def test_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(argv)
        assert info.value.code == 2
        assert "error: argument" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "argv",
        [
            ["all", "--jobs", "0"],  # 0 = all cores
            ["fig5", "--workers", "0", "--retries", "0"],
            ["fig6", "--workers", "3", "--task-timeout", "2.5"],
            ["all", "--resume", "--retries", "4"],
            ["all", "--no-resume"],
            ["all", "--faults", "seed=1:rate=0.5:kinds=crash,transient"],
        ],
    )
    def test_accepted(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestMainCommands:
    """End-to-end through main() with tiny parameters where supported."""

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "matches paper: True" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "--parallelism", "6", "--quanta", "6"]) == 0
        assert "request d(q)" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4", "--parallelism", "6"]) == 0
        out = capsys.readouterr().out
        assert "(a) ABG" in out and "(b) A-Greedy" in out

    def test_fig5_tiny(self, capsys):
        assert main(["fig5", "--factors", "2:20:9", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "running-time ratio" in out

    def test_fig6_tiny(self, capsys):
        assert main(["fig6", "--sets", "4", "--bins", "2"]) == 0
        out = capsys.readouterr().out
        assert "light load" in out

    def test_theorem1(self, capsys):
        assert main(["theorem1"]) == 0
        assert "A-Greedy" in capsys.readouterr().out

    def test_bounds(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "theorem3-time" in out
        assert "no" not in [cell.strip() for cell in out.split()]  # all hold

    def test_ablation_discipline(self, capsys):
        assert main(["ablation-discipline"]) == 0
        assert "lifo" in capsys.readouterr().out


class TestFormatting:
    def test_format_table_alignment(self):
        table = ExperimentTable(
            title="t", columns=("a", "b"), rows=({"a": 1, "b": 2.5},)
        )
        text = format_table(table)
        assert "a" in text and "2.5" in text

    def test_format_table_bools_and_big_floats(self):
        table = ExperimentTable(
            title="t",
            columns=("ok", "x"),
            rows=({"ok": True, "x": 123456.0}, {"ok": False, "x": float("nan")}),
        )
        text = format_table(table)
        assert "yes" in text and "no" in text
        assert "1.235e+05" in text and "nan" in text

    def test_format_series_wraps(self):
        text = format_series("s", list(range(25)), per_line=10)
        assert text.count("\n") == 3
