"""Lifetime edges of the columnar quantum log (the ABG34x hazards, dynamically).

The provenance pass (``tests/test_verify_provenance.py``) proves statically
that no recorded column aliases a live arena buffer; these tests pin the
same contract at runtime: records materialized *after* the arena doubles or
its rows are reused must still show emission-time values, an empty
``QuantumLog`` must be a no-op, and groups spanning a layout-epoch boundary
must expand against the layout registered for *their* epoch.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import JobTrace
from repro.sim.superstep import QuantumLog, SuperstepArena

L = 10


def _emit(log: QuantumLog, *, start_step: int, repeat: int, index0, request) -> None:
    """Append one valid group; the non-snapshot columns are always fresh."""
    n = len(index0)
    log.append_quantum(
        start_step=start_step,
        repeat=repeat,
        index0=np.asarray(index0, dtype=np.int64),
        request=np.asarray(request, dtype=np.float64),
        request_int=np.full(n, 2, dtype=np.int64),
        available=np.full(n, 4, dtype=np.int64),
        allotment=np.full(n, 2, dtype=np.int64),
        work=np.full(n, 2 * L, dtype=np.int64),
        span=np.full(n, float(L), dtype=np.float64),
        steps=np.full(n, L, dtype=np.int64),
    )


class TestSnapshotLifetimes:
    def test_layout_survives_caller_mutation(self):
        # set_layout must own its memory: the kernel keeps appending to and
        # compacting the very list it registers (the seeded-mutation twin
        # of this test reverts the copy and expects ABG341)
        log = QuantumLog(L)
        jids = [7, 9]
        log.set_layout(jids)
        _emit(log, start_step=0, repeat=1, index0=[1, 1], request=[2.0, 2.0])
        jids.append(11)
        jids[0] = 99

        traces = {7: JobTrace(L, job_id=7), 9: JobTrace(L, job_id=9)}
        log.build_traces(traces)
        assert len(traces[7].records) == 1
        assert len(traces[9].records) == 1

    def test_index_and_request_survive_arena_reuse(self):
        # index0/request are emitted as live arena views; the simulation
        # mutates them in place right after emission
        log = QuantumLog(L)
        arena = SuperstepArena()
        arena.admit(request=2.0, seg_w=np.array([4], dtype=np.int64),
                    seg_total=np.array([400], dtype=np.int64))
        arena.admit(request=3.0, seg_w=np.array([4], dtype=np.int64),
                    seg_total=np.array([400], dtype=np.int64))
        log.set_layout([1, 2])
        _emit(
            log,
            start_step=0,
            repeat=1,
            index0=arena.next_q[: arena.n],
            request=arena.request[: arena.n],
        )
        # the next quantum bumps cursors and reuses the same rows
        arena.next_q[: arena.n] += 1
        arena.request[: arena.n] = -1.0

        traces = {1: JobTrace(L, job_id=1), 2: JobTrace(L, job_id=2)}
        log.build_traces(traces)
        assert traces[1].records[0].index == 1
        assert traces[1].records[0].request == 2.0
        assert traces[2].records[0].request == 3.0

    def test_records_materialized_after_arena_doubling(self):
        # grow the arena past its initial capacity *after* emission: the
        # recorded group must keep reading emission-time values, not the
        # reallocated (or dead) buffers
        log = QuantumLog(L)
        arena = SuperstepArena()
        seg_w = np.array([4], dtype=np.int64)
        seg_total = np.array([400], dtype=np.int64)
        arena.admit(request=2.0, seg_w=seg_w, seg_total=seg_total)
        cap0 = arena.request.size
        log.set_layout([1])
        _emit(
            log,
            start_step=0,
            repeat=1,
            index0=arena.next_q[: arena.n],
            request=arena.request[: arena.n],
        )
        while arena.request.size == cap0:  # force at least one doubling
            arena.admit(request=9.0, seg_w=seg_w, seg_total=seg_total)
        arena.request[:] = -1.0

        traces = {1: JobTrace(L, job_id=1)}
        log.build_traces(traces)
        record = traces[1].records[0]
        assert record.request == 2.0
        assert record.index == 1


class TestEmptyLog:
    def test_build_traces_is_a_noop(self):
        log = QuantumLog(L)
        assert len(log) == 0
        trace = JobTrace(L, job_id=1)
        log.build_traces({1: trace})
        assert not trace.has_columns
        assert trace.records == []

    def test_layout_only_log_is_still_empty(self):
        log = QuantumLog(L)
        log.set_layout([1, 2])
        trace = JobTrace(L, job_id=1)
        log.build_traces({1: trace})
        assert not trace.has_columns
        assert len(log) == 0


class TestLayoutEpochBoundary:
    def test_groups_expand_against_their_own_epoch(self):
        # epoch 0: jobs (1, 2); epoch 1: job 1 finished, job 3 admitted in
        # its slot.  Rows must land on the epoch's layout, not the latest.
        log = QuantumLog(L)
        log.set_layout([1, 2])
        _emit(log, start_step=0, repeat=1, index0=[1, 1], request=[2.0, 3.0])
        log.set_layout([3, 2])
        _emit(log, start_step=L, repeat=1, index0=[1, 2], request=[4.0, 3.0])

        traces = {j: JobTrace(L, job_id=j) for j in (1, 2, 3)}
        log.build_traces(traces)
        assert [r.request for r in traces[1].records] == [2.0]
        assert [r.request for r in traces[2].records] == [3.0, 3.0]
        assert [r.index for r in traces[2].records] == [1, 2]
        assert [r.request for r in traces[3].records] == [4.0]

    def test_superstep_group_expands_across_the_boundary(self):
        # a repeat=K group fast-forwards K quanta inside one epoch; the
        # following epoch's group must start where the expansion left off
        log = QuantumLog(L)
        log.set_layout([5])
        _emit(log, start_step=0, repeat=3, index0=[1], request=[2.0])
        log.set_layout([5, 6])
        _emit(log, start_step=3 * L, repeat=1, index0=[4, 1], request=[2.0, 8.0])

        traces = {5: JobTrace(L, job_id=5), 6: JobTrace(L, job_id=6)}
        log.build_traces(traces)
        five = traces[5].records
        assert [r.index for r in five] == [1, 2, 3, 4]
        assert [r.start_step for r in five] == [0, L, 2 * L, 3 * L]
        assert [r.index for r in traces[6].records] == [1]

    def test_group_records_epoch_at_emission_time(self):
        log = QuantumLog(L)
        log.set_layout([1])
        group = log.append_quantum(
            start_step=0,
            repeat=1,
            index0=np.array([1], dtype=np.int64),
            request=np.array([2.0]),
            request_int=np.array([2], dtype=np.int64),
            available=np.array([4], dtype=np.int64),
            allotment=np.array([2], dtype=np.int64),
            work=np.array([2 * L], dtype=np.int64),
            span=np.array([float(L)]),
            steps=np.array([L], dtype=np.int64),
        )
        assert group.epoch == 0
        log.set_layout([1, 2])
        assert group.epoch == 0  # a later epoch never relabels old groups
