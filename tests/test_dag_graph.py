"""Unit tests for repro.dag.graph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dag.graph import Dag, DagValidationError


class TestConstruction:
    def test_single_task(self):
        d = Dag(1, [])
        assert d.work == 1
        assert d.span == 1
        assert d.sources() == [0]
        assert d.sinks() == [0]

    def test_empty_dag_rejected(self):
        with pytest.raises(DagValidationError):
            Dag(0, [])

    def test_edge_out_of_range(self):
        with pytest.raises(DagValidationError):
            Dag(2, [(0, 2)])
        with pytest.raises(DagValidationError):
            Dag(2, [(-1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(DagValidationError):
            Dag(2, [(1, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(DagValidationError):
            Dag(3, [(0, 1), (1, 2), (2, 0)])

    def test_two_cycle_rejected(self):
        with pytest.raises(DagValidationError):
            Dag(2, [(0, 1), (1, 0)])


class TestLevels:
    def test_chain_levels(self):
        d = Dag(4, [(0, 1), (1, 2), (2, 3)])
        assert list(d.levels) == [1, 2, 3, 4]
        assert d.num_levels == 4

    def test_independent_tasks_all_level_one(self):
        d = Dag(5, [])
        assert list(d.levels) == [1] * 5
        assert d.num_levels == 1

    def test_diamond_levels(self):
        # 0 -> {1, 2} -> 3
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert list(d.levels) == [1, 2, 2, 3]

    def test_level_is_longest_path(self):
        # 0 -> 1 -> 3 and 0 -> 3: level(3) must follow the longer chain
        d = Dag(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert d.level_of(3) == 4

    def test_level_sizes(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert list(d.level_sizes) == [1, 2, 1]

    def test_parallelism_profile_is_level_sizes(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert list(d.parallelism_profile()) == [1, 2, 1]

    def test_levels_view_read_only(self):
        d = Dag(2, [(0, 1)])
        with pytest.raises(ValueError):
            d.levels[0] = 7


class TestAccessors:
    def test_predecessors_successors(self):
        d = Dag(3, [(0, 1), (0, 2), (1, 2)])
        assert list(d.successors(0)) == [1, 2]
        assert list(d.predecessors(2)) == [0, 1]
        assert d.in_degree(2) == 2

    def test_num_edges(self):
        d = Dag(3, [(0, 1), (0, 2), (1, 2)])
        assert d.num_edges == 3

    def test_topological_order_respects_edges(self):
        d = Dag(5, [(0, 2), (1, 2), (2, 3), (2, 4)])
        order = list(d.topological_order())
        pos = {t: i for i, t in enumerate(order)}
        for u in range(5):
            for v in d.successors(u):
                assert pos[u] < pos[v]

    def test_sources_and_sinks(self):
        d = Dag(4, [(0, 2), (1, 2), (2, 3)])
        assert d.sources() == [0, 1]
        assert d.sinks() == [3]


class TestCharacteristics:
    def test_work_is_task_count(self):
        d = Dag(7, [(0, 1)])
        assert d.work == 7

    def test_average_parallelism(self):
        d = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert d.average_parallelism == pytest.approx(4 / 3)

    def test_span_counts_nodes_not_edges(self):
        # The paper: "the number of nodes on the longest dependency chain"
        d = Dag(3, [(0, 1), (1, 2)])
        assert d.span == 3


class TestEquality:
    def test_equal_dags(self):
        a = Dag(3, [(0, 1), (1, 2)])
        b = Dag(3, [(0, 1), (1, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_dags(self):
        assert Dag(3, [(0, 1), (1, 2)]) != Dag(3, [(0, 1)])

    def test_not_equal_to_other_types(self):
        assert Dag(1, []) != "dag"


class TestArrayEdges:
    """An (E, 2) ndarray edge list must produce the identical Dag — same
    validation errors, same adjacency contents, ordering, and int types —
    as the equivalent pair list."""

    def test_ndarray_equals_list(self):
        edges = [(0, 2), (1, 2), (0, 3), (2, 3)]
        a = Dag(4, edges)
        b = Dag(4, np.asarray(edges, dtype=np.int64))
        assert a == b and hash(a) == hash(b)
        for t in range(4):
            assert list(a.predecessors(t)) == list(b.predecessors(t))
            assert list(a.successors(t)) == list(b.successors(t))

    def test_empty_edge_array(self):
        d = Dag(3, np.empty((0, 2), dtype=np.int64))
        assert d == Dag(3, [])

    def test_adjacency_holds_plain_ints(self):
        d = Dag(3, np.asarray([(0, 1), (1, 2)], dtype=np.int64))
        assert all(type(p) is int for p in d.predecessors(2))
        assert all(type(s) is int for s in d.successors(0))

    def test_duplicate_edges_kept_in_order(self):
        edges = [(0, 1), (0, 1)]
        a = Dag(2, edges)
        b = Dag(2, np.asarray(edges, dtype=np.int64))
        assert list(b.predecessors(1)) == list(a.predecessors(1)) == [0, 0]

    @pytest.mark.parametrize(
        "edges",
        [
            [(0, 3), (0, 1)],  # out of range
            [(-1, 0)],  # negative
            [(0, 1), (2, 2)],  # self-loop
            [(2, 2), (0, 9)],  # first bad row wins; range checked first
        ],
    )
    def test_error_messages_match_scalar_path(self, edges):
        with pytest.raises(DagValidationError) as scalar_err:
            Dag(3, edges)
        with pytest.raises(DagValidationError) as array_err:
            Dag(3, np.asarray(edges, dtype=np.int64))
        assert str(array_err.value) == str(scalar_err.value)

    def test_cycle_still_rejected(self):
        with pytest.raises(DagValidationError, match="cycle"):
            Dag(2, np.asarray([(0, 1), (1, 0)], dtype=np.int64))

    def test_random_dags_identical(self):
        rng = np.random.default_rng(99)
        for _ in range(30):
            n = int(rng.integers(2, 20))
            edges = [
                (u, v)
                for v in range(1, n)
                for u in range(v)
                if rng.random() < 0.3
            ]
            a = Dag(n, edges)
            b = Dag(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
            assert a == b
            for t in range(n):
                assert list(a.successors(t)) == list(b.successors(t))


@st.composite
def random_dag_edges(draw):
    """Random dags as forward edges over a shuffled ordering (always acyclic)."""
    n = draw(st.integers(min_value=1, max_value=20))
    edges = []
    for v in range(1, n):
        for u in range(v):
            if draw(st.booleans()):
                edges.append((u, v))
    return n, edges


class TestPropertyInvariants:
    @given(random_dag_edges())
    def test_levels_are_consistent(self, spec):
        n, edges = spec
        d = Dag(n, edges)
        levels = d.levels
        for u, _ in enumerate(range(n)):
            for v in d.successors(u):
                assert levels[v] >= levels[u] + 1
        # every task reachable from a source has a well-defined level >= 1
        assert np.all(levels >= 1)
        assert d.span == int(levels.max())

    @given(random_dag_edges())
    def test_level_sizes_sum_to_work(self, spec):
        n, edges = spec
        d = Dag(n, edges)
        assert int(d.level_sizes.sum()) == d.work

    @given(random_dag_edges())
    def test_sources_have_level_one(self, spec):
        n, edges = spec
        d = Dag(n, edges)
        for s in d.sources():
            assert d.level_of(s) == 1
