"""Tests for the kernel-parity and numerical-determinism passes (ABG3xx).

Golden fixtures per rule (a minimal positive plus the idiomatic negative),
the ``batch_fallback`` opt-out marker, the flow-analyzer v2 rules
(attribute-level mutation tracking, exception-path effects, strict dispatch
roots), the analyzer-version cache invalidation, and the seeded-mutation
acceptance checks from the issue: swapping a stable sort for an unstable
one, deleting an ``allocate_batch`` override, and mutating shared module
state on a worker path must each produce the expected ABG3xx finding via
``python -m repro lint --deep --format=json``.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.verify.flow import (
    ParityContract,
    SummaryCache,
    analyze_paths,
    analyzer_version,
    is_kernel_path,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Synthetic contract used by the parity fixtures: one scalar/batched method
#: pair rooted at ``m.Base``, mirroring the real Allocator contract.
CONTRACT = ParityContract(
    module="m", cls="Base", scalar="allocate", batch="allocate_batch"
)

BASE = """\
    class Base:
        batch_fallback = False

        def allocate(self, requests, total):
            return {}

        def allocate_batch(self, ids, requests, total):
            return None

"""


def parity_codes(tmp_path: Path, subclass_source: str) -> list[str]:
    """Analyze ``Base`` plus one subclass under the synthetic contract."""
    target = tmp_path / "m.py"
    target.write_text(textwrap.dedent(BASE) + textwrap.dedent(subclass_source))
    report = analyze_paths(
        [target],
        root_patterns=(),
        kernel_patterns=(),
        parity_contracts=(CONTRACT,),
    )
    return [f.code for f in report.findings]


def kernel_codes(tmp_path: Path, source: str) -> list[str]:
    """Run the numeric pass over one synthetic kernel module."""
    target = tmp_path / "engine" / "batched.py"
    target.parent.mkdir(exist_ok=True)
    target.write_text(textwrap.dedent(source))
    report = analyze_paths([target], root_patterns=(), parity_contracts=())
    return [f.code for f in report.findings]


def flow_codes(
    tmp_path: Path,
    source: str,
    *,
    roots: tuple[str, ...] = ("m::worker",),
    strict_roots: bool = False,
) -> list[str]:
    """Analyze one synthetic module rooted at ``worker``; return codes."""
    target = tmp_path / "m.py"
    target.write_text(textwrap.dedent(source))
    report = analyze_paths(
        [target],
        root_patterns=(),
        extra_roots=roots,
        strict_roots=strict_roots,
        kernel_patterns=(),
        parity_contracts=(),
    )
    return [f.code for f in report.findings]


class TestKernelPathMatching:
    def test_repo_kernels_match(self):
        assert is_kernel_path("src/repro/sim/multi_batched.py")
        assert is_kernel_path("src/repro/engine/batched.py")
        assert is_kernel_path("src/repro/allocators/equipartition.py")
        assert is_kernel_path("src/repro/dag/structure.py")

    def test_non_kernels_do_not_match(self):
        assert not is_kernel_path("src/repro/experiments/runner.py")
        assert not is_kernel_path("src/repro/verify/lint.py")

    def test_numeric_pass_skips_non_kernel_files(self, tmp_path):
        target = tmp_path / "other.py"
        target.write_text("import numpy as np\n\nORDER = np.argsort([3, 1])\n")
        report = analyze_paths([target], root_patterns=(), parity_contracts=())
        assert report.findings == []


class TestParityPass:
    def test_missing_batch_counterpart_flagged(self, tmp_path):
        sub = """\

            class Greedy(Base):
                def allocate(self, requests, total):
                    return dict(requests)
        """
        assert parity_codes(tmp_path, sub) == ["ABG301"]

    def test_marker_opts_out(self, tmp_path):
        sub = """\

            class Greedy(Base):
                batch_fallback = True

                def allocate(self, requests, total):
                    return dict(requests)
        """
        assert parity_codes(tmp_path, sub) == []

    def test_complete_pair_is_clean(self, tmp_path):
        sub = """\

            class Greedy(Base):
                def allocate(self, requests, total):
                    return dict(requests)

                def allocate_batch(self, ids, requests, total):
                    return requests
        """
        assert parity_codes(tmp_path, sub) == []

    def test_scalar_override_inheriting_ancestor_batch_flagged(self, tmp_path):
        sub = """\

            class Mid(Base):
                def allocate(self, requests, total):
                    return dict(requests)

                def allocate_batch(self, ids, requests, total):
                    return requests

            class Leaf(Mid):
                def allocate(self, requests, total):
                    return {}
        """
        assert parity_codes(tmp_path, sub) == ["ABG302"]

    def test_parameter_drift_flagged(self, tmp_path):
        sub = """\

            class Greedy(Base):
                def allocate(self, reqs, total):
                    return dict(reqs)

                def allocate_batch(self, ids, requests, total):
                    return requests
        """
        assert parity_codes(tmp_path, sub) == ["ABG303"]

    def test_default_drift_flagged(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            textwrap.dedent(
                """\
                class Base:
                    def allocate(self, requests, total=64):
                        return {}

                    def allocate_batch(self, ids, requests, total=64):
                        return None


                class Greedy(Base):
                    def allocate(self, requests, total=32):
                        return dict(requests)

                    def allocate_batch(self, ids, requests, total=64):
                        return requests
                """
            )
        )
        report = analyze_paths(
            [target],
            root_patterns=(),
            kernel_patterns=(),
            parity_contracts=(CONTRACT,),
        )
        assert [f.code for f in report.findings] == ["ABG303"]

    def test_suppression_with_reason_honored(self, tmp_path):
        sub = """\

            class Greedy(Base):
                def allocate(self, requests, total):  # abg: allow[ABG301] reason=scalar-only adapter
                    return dict(requests)
        """
        assert parity_codes(tmp_path, sub) == []

    def test_contract_base_absent_is_a_noop(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("class Unrelated:\n    pass\n")
        report = analyze_paths(
            [target],
            root_patterns=(),
            kernel_patterns=(),
            parity_contracts=(CONTRACT,),
        )
        assert report.findings == []


class TestNumericPass:
    def test_unstable_argsort_flagged(self, tmp_path):
        src = """\
            import numpy as np

            def repack(jids):
                return np.argsort(jids)
        """
        assert kernel_codes(tmp_path, src) == ["ABG311"]

    def test_method_argsort_flagged(self, tmp_path):
        src = """\
            def repack(jids):
                return jids.argsort()
        """
        assert kernel_codes(tmp_path, src) == ["ABG311"]

    def test_stable_argsort_is_clean(self, tmp_path):
        src = """\
            import numpy as np

            def repack(jids):
                return np.argsort(jids, kind="stable")
        """
        assert kernel_codes(tmp_path, src) == []

    def test_float_reduction_over_dict_view_flagged(self, tmp_path):
        src = """\
            def total_work(spans):
                return sum(spans.values())
        """
        assert kernel_codes(tmp_path, src) == ["ABG312"]

    def test_sorted_canonicalizes_the_reduction(self, tmp_path):
        src = """\
            def total_work(spans):
                return sum(sorted(spans.values()))
        """
        assert kernel_codes(tmp_path, src) == []

    def test_missing_dtype_flagged(self, tmp_path):
        src = """\
            import numpy as np

            def indices(n):
                return np.arange(n)
        """
        assert kernel_codes(tmp_path, src) == ["ABG313"]

    def test_pinned_dtype_is_clean(self, tmp_path):
        src = """\
            import numpy as np

            def indices(n):
                return np.arange(n, dtype=np.int64)
        """
        assert kernel_codes(tmp_path, src) == []

    def test_asarray_of_typed_numpy_call_exempt(self, tmp_path):
        src = """\
            import numpy as np

            def widen(n):
                return np.asarray(np.zeros(n, dtype=np.float64))
        """
        assert kernel_codes(tmp_path, src) == []

    def test_zeros_needs_no_dtype(self, tmp_path):
        src = """\
            import numpy as np

            def buffer(n):
                return np.zeros(n)
        """
        assert kernel_codes(tmp_path, src) == []

    def test_out_aliasing_input_flagged(self, tmp_path):
        src = """\
            import numpy as np

            def accumulate(a, b):
                return np.add(a, b, out=a)
        """
        assert kernel_codes(tmp_path, src) == ["ABG314"]

    def test_distinct_out_buffer_is_clean(self, tmp_path):
        src = """\
            import numpy as np

            def accumulate(a, b, scratch):
                return np.add(a, b, out=scratch)
        """
        assert kernel_codes(tmp_path, src) == []

    def test_shared_sentinel_stored_without_copy_flagged(self, tmp_path):
        src = """\
            import numpy as np

            _EMPTY = np.zeros(0, dtype=np.int64)


            class State:
                def __init__(self):
                    self.order = _EMPTY
        """
        assert kernel_codes(tmp_path, src) == ["ABG314"]

    def test_copied_sentinel_is_clean(self, tmp_path):
        src = """\
            import numpy as np

            _EMPTY = np.zeros(0, dtype=np.int64)


            class State:
                def __init__(self):
                    self.order = _EMPTY.copy()
        """
        assert kernel_codes(tmp_path, src) == []

    def test_array_built_from_dict_view_flagged(self, tmp_path):
        src = """\
            import numpy as np

            def columns(spans):
                return np.array(list(spans.values()), dtype=np.float64)
        """
        assert kernel_codes(tmp_path, src) == ["ABG315"]

    def test_array_built_from_sorted_items_is_clean(self, tmp_path):
        src = """\
            import numpy as np

            def columns(spans):
                return np.array(sorted(spans.values()), dtype=np.float64)
        """
        assert kernel_codes(tmp_path, src) == []

    def test_suppression_with_reason_honored(self, tmp_path):
        src = """\
            def total(alloc):
                return sum(alloc.values())  # abg: allow[ABG312] reason=integer sum; order cannot change it
        """
        assert kernel_codes(tmp_path, src) == []


class TestFlowV2:
    def test_attr_mutation_of_module_instance_flagged(self, tmp_path):
        src = """\
            CONFIG = Settings()

            def worker(n):
                CONFIG.limits.max_jobs = n
                return n
        """
        assert flow_codes(tmp_path, src) == ["ABG331"]

    def test_mutating_method_on_instance_attr_flagged(self, tmp_path):
        src = """\
            CONFIG = Settings()

            def worker(n):
                CONFIG.limits.append(n)
                return n
        """
        assert flow_codes(tmp_path, src) == ["ABG331"]

    def test_local_instance_mutation_is_fine(self, tmp_path):
        src = """\
            def worker(n):
                cfg = Settings()
                cfg.limits.max_jobs = n
                return cfg
        """
        assert flow_codes(tmp_path, src) == []

    def test_param_mutation_before_raise_flagged(self, tmp_path):
        src = """\
            def worker(acc, items):
                acc.total += 1
                if not items:
                    raise ValueError("empty batch")
                return acc
        """
        assert flow_codes(tmp_path, src) == ["ABG332"]

    def test_validate_then_fill_is_fine(self, tmp_path):
        src = """\
            def worker(acc, items):
                if not items:
                    raise ValueError("empty batch")
                acc.total += 1
                return acc
        """
        assert flow_codes(tmp_path, src) == []

    def test_strict_roots_flags_computed_payload(self, tmp_path):
        src = """\
            def worker(task, table, items):
                return map_deterministic(table[task], items)
        """
        assert "ABG333" in flow_codes(tmp_path, src, strict_roots=True)

    def test_default_mode_tolerates_computed_payload(self, tmp_path):
        src = """\
            def worker(task, table, items):
                return map_deterministic(table[task], items)
        """
        assert flow_codes(tmp_path, src) == []

    def test_strict_roots_exempts_forwarded_param(self, tmp_path):
        src = """\
            def worker(fn, items):
                return map_deterministic(fn, items)
        """
        assert flow_codes(tmp_path, src, strict_roots=True) == []


class TestAnalyzerVersionCache:
    def _fixture(self, tmp_path: Path) -> Path:
        target = tmp_path / "m.py"
        target.write_text("def worker(x):\n    return x\n")
        return target

    def test_version_recorded_in_cache_file(self, tmp_path):
        target = self._fixture(tmp_path)
        cache_path = tmp_path / "cache.json"
        analyze_paths([target], root_patterns=(), cache=SummaryCache(cache_path))
        data = json.loads(cache_path.read_text())
        assert data["analyzer"] == analyzer_version()

    def test_stale_analyzer_version_discards_entries(self, tmp_path):
        target = self._fixture(tmp_path)
        cache_path = tmp_path / "cache.json"
        analyze_paths([target], root_patterns=(), cache=SummaryCache(cache_path))
        data = json.loads(cache_path.read_text())
        data["analyzer"] = "0" * 16
        cache_path.write_text(json.dumps(data))
        report = analyze_paths(
            [target], root_patterns=(), cache=SummaryCache(cache_path)
        )
        assert report.stats["cache_hits"] == 0
        assert report.stats["cache_misses"] == 1

    def test_version_tracks_the_rule_set(self, monkeypatch):
        from repro.verify import findings as findings_mod

        before = analyzer_version()
        monkeypatch.setitem(findings_mod.RULES, "ABG999", "hypothetical rule")
        assert analyzer_version() != before


def _copy_tree(tmp_path: Path) -> Path:
    """A private copy of ``src/repro`` the mutation tests can edit freely.

    Dotted module names resolve identically because the package
    ``__init__.py`` chain is copied along with the sources.
    """
    tree = tmp_path / "repro"
    shutil.copytree(REPO_SRC, tree)
    return tree


def _mutate(tree: Path, rel: str, old: str, new: str) -> Path:
    target = tree / rel
    source = target.read_text()
    assert source.count(old) == 1, f"mutation anchor not unique in {rel}"
    target.write_text(source.replace(old, new))
    return target


def _lint_json(tree: Path, capsys, *extra: str) -> dict:
    """Run ``lint --deep --format=json`` over the tree; return the payload."""
    argv = ["lint", "--deep", "--no-cache", "--format", "json", *extra, str(tree)]
    try:
        rc = cli_main(argv)
    except SystemExit as exc:
        rc = exc.code
    payload = json.loads(capsys.readouterr().out)
    payload["_rc"] = rc
    return payload


class TestSeededMutations:
    """The acceptance criteria: each seeded mutation of the real tree must
    surface the expected ABG3xx finding through the CLI JSON output."""

    def test_clean_tree_is_deep_clean_under_strict_roots(self, capsys):
        payload = _lint_json(REPO_SRC, capsys, "--strict-roots")
        assert payload["_rc"] == 0
        assert payload["findings"] == []

    def test_unstable_sort_swap_detected(self, tmp_path, capsys):
        tree = _copy_tree(tmp_path)
        _mutate(
            tree,
            "sim/multi_batched.py",
            'np.argsort(jids, kind="stable")  # jids are unique',
            "np.argsort(jids)",
        )
        payload = _lint_json(tree, capsys)
        assert payload["_rc"] == 1
        codes = [f["code"] for f in payload["findings"]]
        assert codes == ["ABG311"]
        assert payload["findings"][0]["path"].endswith("multi_batched.py")

    def test_deleted_batch_override_detected(self, tmp_path, capsys):
        tree = _copy_tree(tmp_path)
        _mutate(
            tree,
            "allocators/equipartition.py",
            "def allocate_batch(",
            "def allocate_batch_disabled(",
        )
        payload = _lint_json(tree, capsys)
        assert payload["_rc"] == 1
        codes = [f["code"] for f in payload["findings"]]
        assert codes == ["ABG301"]
        assert payload["findings"][0]["path"].endswith("equipartition.py")

    def test_shared_state_mutation_on_worker_path_detected(self, tmp_path, capsys):
        tree = _copy_tree(tmp_path)
        target = tree / "experiments" / "runner.py"
        source = target.read_text()
        anchor = "    if task_timeout is None:\n        task_timeout = default_task_timeout(scale)\n"
        assert source.count(anchor) == 1
        source = source.replace(
            anchor, anchor + "    _PROBE_STATE.mode.flags = 1\n"
        )
        source += '\n\n_PROBE_STATE = Path("probe")\n'
        target.write_text(source)
        payload = _lint_json(tree, capsys)
        assert payload["_rc"] == 1
        probe = [
            f
            for f in payload["findings"]
            if f["code"] == "ABG331" and f["path"].endswith("runner.py")
        ]
        assert len(probe) == 1

    def test_reasonless_kernel_suppression_detected(self, tmp_path, capsys):
        tree = _copy_tree(tmp_path)
        _mutate(
            tree,
            "sim/multi_batched.py",
            'np.argsort(jids, kind="stable")  # jids are unique',
            "np.argsort(jids)  # abg: allow[ABG311]",
        )
        payload = _lint_json(tree, capsys)
        assert payload["_rc"] == 1
        codes = [f["code"] for f in payload["findings"]]
        # a reasonless allow is inert: the finding still fires, plus ABG290
        assert "ABG290" in codes
        assert "ABG311" in codes
