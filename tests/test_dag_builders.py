"""Unit tests for repro.dag.builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag import builders


class TestChain:
    def test_structure(self):
        d = builders.chain(5)
        assert d.work == 5
        assert d.span == 5
        assert d.average_parallelism == 1.0

    def test_single(self):
        d = builders.chain(1)
        assert d.work == 1 and d.span == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            builders.chain(0)


class TestWideLevel:
    def test_structure(self):
        d = builders.wide_level(8)
        assert d.work == 8
        assert d.span == 1
        assert d.average_parallelism == 8.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            builders.wide_level(0)


class TestDiamond:
    def test_structure(self):
        d = builders.diamond(6)
        assert d.work == 8
        assert d.span == 3
        assert list(d.level_sizes) == [1, 6, 1]

    def test_minimal(self):
        d = builders.diamond(1)
        assert d.work == 3
        assert d.span == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            builders.diamond(0)


class TestForkJoinFromPhases:
    def test_single_serial_phase_is_chain(self):
        d = builders.fork_join_from_phases([(1, 4)])
        assert d.work == 4 and d.span == 4

    def test_work_and_span(self):
        d = builders.fork_join_from_phases([(1, 3), (5, 2), (1, 1)])
        assert d.work == 3 + 10 + 1
        assert d.span == 3 + 2 + 1

    def test_profile_matches_phases(self):
        d = builders.fork_join_from_phases([(1, 2), (4, 3)])
        assert list(d.level_sizes) == [1, 1, 4, 4, 4]

    def test_barrier_edges(self):
        # 2-wide phase into 3-wide phase: every tail precedes every head
        d = builders.fork_join_from_phases([(2, 1), (3, 1)])
        tails = [0, 1]
        heads = [2, 3, 4]
        for h in heads:
            assert sorted(d.predecessors(h)) == tails

    def test_chains_inside_phase(self):
        d = builders.fork_join_from_phases([(2, 3)])
        # chain 0 = tasks 0,1,2; chain 1 = tasks 3,4,5
        assert list(d.successors(0)) == [1]
        assert list(d.successors(1)) == [2]
        assert list(d.successors(3)) == [4]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            builders.fork_join_from_phases([])

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            builders.fork_join_from_phases([(0, 3)])
        with pytest.raises(ValueError):
            builders.fork_join_from_phases([(3, 0)])


def _scalar_fork_join_reference(phases):
    """The pre-vectorization edge-emission order, kept as the test oracle:
    per phase, barrier edges (prev tail major, head minor) then chain edges
    (chain major, depth minor)."""
    from repro.dag.graph import Dag

    edges: list[tuple[int, int]] = []
    base = 0
    prev_tails: list[int] | None = None
    for w, k in phases:
        ids = [[base + c * k + d for d in range(k)] for c in range(w)]
        if prev_tails is not None:
            for t in prev_tails:
                for c in range(w):
                    edges.append((t, ids[c][0]))
        for c in range(w):
            for d in range(k - 1):
                edges.append((ids[c][d], ids[c][d + 1]))
        prev_tails = [ids[c][-1] for c in range(w)]
        base += w * k
    return Dag(sum(w * k for w, k in phases), edges)


class TestForkJoinVectorizedBuilder:
    """The numpy edge-list builder must yield the *identical* Dag — same
    adjacency contents and per-task ordering — as the scalar loops did."""

    CASES = [
        [(1, 1)],
        [(1, 4)],
        [(5, 1)],
        [(2, 3)],
        [(1, 3), (4, 2), (1, 1), (8, 5)],
        [(3, 1), (1, 2), (3, 1)],
        [(2, 2), (2, 2), (2, 2)],
    ]

    def test_known_shapes_identical(self):
        for phases in self.CASES:
            got = builders.fork_join_from_phases(phases)
            want = _scalar_fork_join_reference(phases)
            assert got == want
            for t in range(want.num_tasks):
                assert list(got.predecessors(t)) == list(want.predecessors(t))
                assert list(got.successors(t)) == list(want.successors(t))
            assert list(got.levels) == list(want.levels)
            assert list(got.topological_order()) == list(want.topological_order())

    def test_random_shapes_identical(self):
        rng = np.random.default_rng(606)
        for _ in range(25):
            phases = [
                (int(rng.integers(1, 9)), int(rng.integers(1, 6)))
                for _ in range(int(rng.integers(1, 7)))
            ]
            got = builders.fork_join_from_phases(phases)
            want = _scalar_fork_join_reference(phases)
            assert got == want
            for t in range(want.num_tasks):
                assert list(got.successors(t)) == list(want.successors(t))

    def test_adjacency_holds_plain_ints(self):
        d = builders.fork_join_from_phases([(2, 2), (3, 1)])
        for t in range(d.num_tasks):
            assert all(type(p) is int for p in d.predecessors(t))
            assert all(type(s) is int for s in d.successors(t))


class TestForkJoin:
    def test_two_iterations(self):
        d = builders.fork_join(2, 4, 3, 2)
        # per iteration: serial 2 + parallel 4*3
        assert d.work == 2 * (2 + 12)
        assert d.span == 2 * (2 + 3)

    def test_trailing_serial(self):
        d = builders.fork_join(2, 4, 3, 1, leading_serial=False)
        assert list(d.level_sizes)[:3] == [4, 4, 4]

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            builders.fork_join(1, 1, 1, 0)


class TestFigure2Fragment:
    def test_shape(self):
        d = builders.figure2_fragment()
        assert d.work == 15
        assert d.span == 3
        assert list(d.level_sizes) == [5, 5, 5]
        assert d.average_parallelism == pytest.approx(5.0)


class TestRandomLayered:
    def test_levels_exact(self, rng):
        d = builders.random_layered(rng, 10, min_width=1, max_width=5)
        assert d.span == 10

    def test_widths_within_bounds(self, rng):
        d = builders.random_layered(rng, 12, min_width=2, max_width=4)
        sizes = d.level_sizes
        assert np.all(sizes >= 2) and np.all(sizes <= 4)

    def test_every_nonsource_has_parent(self, rng):
        d = builders.random_layered(rng, 8, min_width=1, max_width=6)
        for t in range(d.num_tasks):
            if d.level_of(t) > 1:
                assert d.in_degree(t) >= 1

    def test_deterministic_given_seed(self):
        a = builders.random_layered(np.random.default_rng(5), 6, max_width=4)
        b = builders.random_layered(np.random.default_rng(5), 6, max_width=4)
        assert a == b

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            builders.random_layered(rng, 0)
        with pytest.raises(ValueError):
            builders.random_layered(rng, 3, min_width=5, max_width=2)


class TestSeriesParallel:
    def test_depth_zero_single_task(self, rng):
        d = builders.series_parallel(rng, 0)
        assert d.work == 1

    def test_valid_dag(self, rng):
        d = builders.series_parallel(rng, 4)
        assert d.work >= 1
        assert d.span >= 1
        # single entry, single exit by construction
        assert len(d.sources()) == 1
        assert len(d.sinks()) == 1

    def test_deterministic_given_seed(self):
        a = builders.series_parallel(np.random.default_rng(9), 3)
        b = builders.series_parallel(np.random.default_rng(9), 3)
        assert a == b
