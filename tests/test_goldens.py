"""Tests for the golden-trace regression harness (``repro.goldens``)."""

from __future__ import annotations

import json

import pytest

from repro.core.abg import AControl
from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.goldens import (
    ExplicitJob,
    ScenarioSpec,
    TraceDivergence,
    check_freshness,
    dag_scenario,
    default_scenarios,
    first_divergence,
    fixture_paths,
    record_bundle,
    record_fixtures,
    record_stale_fixtures,
    scenario_from_fig6,
    verify_traces,
)
from repro.io.traces import (
    golden_bundle_payload,
    load_golden_bundle,
    load_traces,
    save_golden_bundle,
    trace_from_dict,
    trace_to_dict,
)
from repro.core.types import JobTrace, QuantumRecord


def tiny_spec(scenario_id: str = "tiny", **overrides) -> ScenarioSpec:
    fields = dict(
        scenario_id=scenario_id,
        policy="abg",
        policy_params=(("convergence_rate", 0.2),),
        allocator="deq",
        processors=4,
        quantum_length=50,
        max_quanta=10_000,
        jobs=(
            # long enough to span several quanta so the feedback policy's
            # next_request actually shapes the trace
            ExplicitJob(job_id=0, release_time=0, phases=((1, 120), (4, 260))),
            ExplicitJob(job_id=1, release_time=0, phases=((2, 180),)),
        ),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def make_trace(values, *, quantum_length=100, release_time=0, job_id=None):
    trace = JobTrace(
        quantum_length=quantum_length, release_time=release_time, job_id=job_id
    )
    start = release_time
    for i, (request, allotment) in enumerate(values, start=1):
        trace.append(
            QuantumRecord(
                index=i,
                request=float(request),
                request_int=int(round(request)),
                available=allotment,
                allotment=allotment,
                work=allotment * quantum_length,
                span=float(quantum_length),
                steps=quantum_length,
                quantum_length=quantum_length,
                start_step=start,
            )
        )
        start += quantum_length
    return trace


class TestTraceHardening:
    def test_missing_record_field_names_path(self):
        data = trace_to_dict(make_trace([(2, 2)]))
        del data["records"][0]["span"]
        with pytest.raises(ValueError, match=r"trace\.records\[0\]\.span"):
            trace_from_dict(data)

    def test_mistyped_record_field_names_path(self):
        data = trace_to_dict(make_trace([(2, 2)]))
        data["records"][0]["allotment"] = "three"
        with pytest.raises(ValueError, match=r"records\[0\]\.allotment"):
            trace_from_dict(data)

    def test_bool_rejected_in_count_field(self):
        data = trace_to_dict(make_trace([(2, 2)]))
        data["records"][0]["steps"] = True
        with pytest.raises(ValueError, match=r"records\[0\]\.steps"):
            trace_from_dict(data)

    def test_nonfinite_float_names_path(self):
        data = trace_to_dict(make_trace([(2, 2)]))
        data["records"][0]["request"] = float("inf")
        with pytest.raises(ValueError, match=r"records\[0\]\.request"):
            trace_from_dict(data)

    def test_where_prefix_propagates(self):
        data = trace_to_dict(make_trace([(2, 2)]))
        del data["records"][0]["work"]
        with pytest.raises(ValueError, match=r"traces\['3'\]\.records\[0\]\.work"):
            trace_from_dict(data, where="traces['3']")

    def test_duplicate_json_keys_rejected(self, tmp_path):
        inner = json.dumps(trace_to_dict(make_trace([(1, 1)])))
        path = tmp_path / "dup.json"
        path.write_text(
            '{"schema": 1, "traces": {"1": %s, "1": %s}}' % (inner, inner)
        )
        with pytest.raises(ValueError, match="duplicate key"):
            load_traces(path)

    def test_normalization_collision_rejected(self, tmp_path):
        inner = json.dumps(trace_to_dict(make_trace([(1, 1)])))
        path = tmp_path / "dup.json"
        path.write_text(
            '{"schema": 1, "traces": {"1": %s, "01": %s}}' % (inner, inner)
        )
        with pytest.raises(ValueError, match="duplicate job id 1"):
            load_traces(path)

    def test_bad_job_id_key_rejected(self, tmp_path):
        inner = json.dumps(trace_to_dict(make_trace([(1, 1)])))
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1, "traces": {"seven": %s}}' % inner)
        with pytest.raises(ValueError, match="bad job id 'seven'"):
            load_traces(path)


class TestScenarioSpec:
    def test_round_trip(self):
        spec = tiny_spec(horizon=7)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            tiny_spec(policy="fifo", policy_params=())

    def test_wrong_policy_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            tiny_spec(policy_params=(("responsiveness", 2.0),))

    def test_unsorted_params_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            tiny_spec(
                policy="agreedy",
                policy_params=(
                    ("utilization_threshold", 0.8),
                    ("responsiveness", 2.0),
                ),
            )

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate job id"):
            tiny_spec(
                jobs=(
                    ExplicitJob(job_id=0, release_time=0, phases=((1, 1),)),
                    ExplicitJob(job_id=0, release_time=0, phases=((1, 1),)),
                )
            )

    def test_from_dict_names_bad_phase_path(self):
        data = tiny_spec().to_dict()
        data["jobs"][1]["phases"][0] = [0, 3]
        with pytest.raises(ValueError, match=r"jobs\[1\]\.phases\[0\]\[0\]"):
            ScenarioSpec.from_dict(data)

    def test_from_dict_missing_field(self):
        data = tiny_spec().to_dict()
        del data["processors"]
        with pytest.raises(ValueError, match=r"missing field scenario\.processors"):
            ScenarioSpec.from_dict(data)

    def test_build_is_executable_and_fresh(self):
        spec = tiny_spec()
        specs_a, alloc_a = spec.build()
        specs_b, alloc_b = spec.build()
        assert alloc_a is not alloc_b
        assert specs_a[0].job is not specs_b[0].job
        assert [s.job_id for s in specs_a] == [0, 1]
        # one shared policy instance across jobs (the experiment idiom)
        assert specs_a[0].feedback is specs_a[1].feedback

    def test_scenario_from_fig6_is_deterministic(self):
        a = scenario_from_fig6("x", seed=5, index=3)
        b = scenario_from_fig6("x", seed=5, index=3)
        assert a == b
        assert a != scenario_from_fig6("x", seed=5, index=4)


class TestGoldenBundles:
    def test_record_round_trip(self, tmp_path):
        bundle = record_bundle(tiny_spec())
        path = save_golden_bundle(tmp_path / "tiny.json", bundle)
        loaded = load_golden_bundle(path)
        assert loaded.scenario == bundle.scenario
        assert loaded.digest == bundle.digest
        assert set(loaded.traces) == set(bundle.traces)
        assert loaded.provenance["reference_path"] == "serial"

    def test_recording_twice_is_byte_identical(self, tmp_path):
        spec = tiny_spec()
        a = save_golden_bundle(tmp_path / "a.json", record_bundle(spec))
        b = save_golden_bundle(tmp_path / "b.json", record_bundle(spec))
        assert a.read_bytes() == b.read_bytes()

    def test_digest_ignores_provenance(self):
        spec = tiny_spec()
        a = record_bundle(spec)
        b = record_bundle(spec, extra_provenance={"note": "different"})
        assert a.provenance != b.provenance
        assert a.digest == b.digest

    def test_hand_edit_fails_digest_check(self, tmp_path):
        path = save_golden_bundle(tmp_path / "t.json", record_bundle(tiny_spec()))
        data = json.loads(path.read_text())
        first_jid = sorted(data["traces"])[0]
        # a still-valid record (allotment <= available still holds) so the
        # tamper is caught by the digest, not by field validation
        data["traces"][first_jid]["records"][0]["available"] += 1
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="digest mismatch"):
            load_golden_bundle(path)

    def test_unknown_schema_rejected(self, tmp_path):
        payload = golden_bundle_payload(record_bundle(tiny_spec()))
        payload["schema"] = 99
        path = tmp_path / "t.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported golden-bundle schema"):
            load_golden_bundle(path)


class TestVerifyTraces:
    def test_all_paths_pass_on_unmutated_tree(self, tmp_path):
        record_fixtures(tmp_path, [tiny_spec()])
        report = verify_traces(fixture_paths(tmp_path))
        assert report.passed
        assert [o["status"] for o in report.outcomes] == ["pass"] * 4
        assert [o["path"] for o in report.outcomes] == [
            "serial",
            "batched",
            "superstep",
            "sharded",
        ]

    def test_default_registry_passes_all_paths(self, tmp_path):
        record_fixtures(tmp_path, default_scenarios())
        report = verify_traces(fixture_paths(tmp_path))
        assert report.passed
        # 7 scenarios x 4 paths; the reference-engine dag fixture skips
        # the sharded path (non-batchable jobs) without failing the run.
        assert len(report.outcomes) == 28
        assert report.render().endswith("27 pass, 0 fail, 0 error, 1 skip")

    def test_report_is_deterministic(self, tmp_path):
        record_fixtures(tmp_path, [tiny_spec()])
        a = verify_traces(fixture_paths(tmp_path))
        b = verify_traces(fixture_paths(tmp_path))
        assert a.render() == b.render()
        assert a.payload() == b.payload()

    def test_unreadable_fixture_is_abg403(self, tmp_path):
        (tmp_path / "junk.json").write_text('{"schema": 99}')
        report = verify_traces(fixture_paths(tmp_path))
        assert not report.passed
        assert {f.code for f in report.findings} == {"ABG403"}

    def test_policy_drift_fails_with_field_diff(self, tmp_path, monkeypatch):
        heavy = [s for s in default_scenarios() if s.scenario_id == "fig6-heavy-abg"]
        record_fixtures(tmp_path, heavy)

        orig = AControl.next_request_batch

        def drifted(self, **kwargs):
            out = orig(self, **kwargs)
            return None if out is None else out + 0.5

        monkeypatch.setattr(AControl, "next_request_batch", drifted)
        report = verify_traces(fixture_paths(tmp_path))
        assert not report.passed
        by_path = {o["path"]: o for o in report.outcomes}
        # serial uses the scalar policy and still matches the golden: the
        # drift is isolated to the batched/superstep kernels
        assert by_path["serial"]["status"] == "pass"
        assert by_path["batched"]["status"] == "fail"
        assert by_path["superstep"]["status"] == "fail"
        div = by_path["batched"]["divergence"]
        assert div["kind"] == "field"
        assert div["quantum"] >= 2  # the first quantum's request is initial
        assert "request" in {f["field"] for f in div["fields"]}
        for diff in div["fields"]:
            assert diff["expected"] != diff["got"]
        # the exact same first divergence on both mutated paths
        assert div == by_path["superstep"]["divergence"]
        assert {f.code for f in report.findings} == {"ABG401"}

    def test_deq_waterfall_perturbation_fails_exactly(self, tmp_path, monkeypatch):
        heavy = [s for s in default_scenarios() if s.scenario_id == "fig6-heavy-abg"]
        record_fixtures(tmp_path, heavy)
        _perturb_deq(monkeypatch)
        report = verify_traces(fixture_paths(tmp_path))
        assert not report.passed
        by_path = {o["path"]: o for o in report.outcomes}
        assert by_path["serial"]["status"] == "pass"
        div = by_path["batched"]["divergence"]
        assert div["kind"] == "field"
        assert div["job_id"] is not None and div["quantum"] is not None
        assert div["start_step"] is not None
        assert "allotment" in {f["field"] for f in div["fields"]}
        assert "first divergence at quantum" in div["summary"]


def _perturb_deq(monkeypatch):
    """Transfer one processor from a rich job to a deprived one — a valid
    allocation (coverage/bounds invariants hold) that perturbs the DEQ
    waterfall on the batched/superstep paths only."""
    import numpy as np

    orig = DynamicEquiPartitioning.allocate_batch

    def perturbed(self, ids, requests, total):
        grants = orig(self, ids, requests, total)
        deprived = np.flatnonzero(grants < requests)
        rich = np.flatnonzero(grants >= 2)
        if deprived.size and rich.size and rich[-1] != deprived[0]:
            grants = grants.copy()
            grants[rich[-1]] -= 1
            grants[deprived[0]] += 1
        return grants

    monkeypatch.setattr(DynamicEquiPartitioning, "allocate_batch", perturbed)


class TestFirstDivergence:
    def test_identical_traces_no_divergence(self):
        a = {1: make_trace([(2, 2), (3, 3)])}
        assert first_divergence(a, a) is None

    def test_field_divergence_reports_all_fields(self):
        expected = {1: make_trace([(2, 2), (3, 3)])}
        got = {1: make_trace([(2, 2), (4, 4)])}
        div = first_divergence(expected, got)
        assert div is not None and div.kind == "field"
        assert div.quantum == 2 and div.position == 1
        names = {f.field for f in div.fields}
        assert {"request", "request_int", "available", "allotment", "work"} <= names

    def test_earliest_start_step_wins_across_jobs(self):
        expected = {
            1: make_trace([(2, 2), (3, 3), (3, 3)]),
            2: make_trace([(1, 1), (1, 1), (1, 1)]),
        }
        got = {
            1: make_trace([(2, 2), (3, 3), (4, 4)]),  # diverges at start 200
            2: make_trace([(1, 1), (2, 2), (1, 1)]),  # diverges at start 100
        }
        div = first_divergence(expected, got)
        assert div is not None
        assert div.job_id == 2 and div.start_step == 100

    def test_quantum_count_mismatch(self):
        expected = {1: make_trace([(2, 2), (3, 3)])}
        got = {1: make_trace([(2, 2)])}
        div = first_divergence(expected, got)
        assert div is not None and div.kind == "quantum-count"
        assert div.quantum == 2 and "expected 2 quanta, got 1" in div.detail

    def test_job_set_mismatch(self):
        expected = {1: make_trace([(1, 1)]), 2: make_trace([(1, 1)])}
        got = {1: make_trace([(1, 1)]), 3: make_trace([(1, 1)])}
        div = first_divergence(expected, got)
        assert div is not None and div.kind == "job-set"
        assert "missing jobs [2]" in div.detail
        assert "unexpected jobs [3]" in div.detail

    def test_float_comparison_is_bitwise(self):
        a = make_trace([(2, 2)])
        b = make_trace([(2, 2)])
        object.__setattr__(b.records[0], "span", -0.0)  # dataclass is frozen
        div = first_divergence({1: a}, {1: b})
        assert div is not None
        assert {f.field for f in div.fields} == {"span"}

    def test_horizon_bounds_comparison(self):
        expected = {1: make_trace([(2, 2), (3, 3), (3, 3)])}
        got = {1: make_trace([(2, 2), (3, 3), (4, 4)])}
        assert first_divergence(expected, got, horizon=2) is None
        assert first_divergence(expected, got, horizon=3) is not None

    def test_metadata_mismatch(self):
        expected = {1: make_trace([(1, 1)], quantum_length=100)}
        got = {1: make_trace([(1, 1)], quantum_length=200)}
        div = first_divergence(expected, got)
        assert div is not None and div.kind == "metadata"
        assert "quantum_length" in div.detail

    def test_payload_round_trips_to_json(self):
        div = TraceDivergence(kind="job-set", detail="missing jobs [1]")
        assert json.loads(json.dumps(div.to_payload()))["kind"] == "job-set"


class TestFreshness:
    def test_fresh_fixtures_are_clean(self, tmp_path):
        scenarios = [tiny_spec()]
        record_fixtures(tmp_path, scenarios)
        assert check_freshness(tmp_path, scenarios) == []

    def test_missing_fixture_is_abg404(self, tmp_path):
        scenarios = [tiny_spec()]
        findings = check_freshness(tmp_path, scenarios)
        assert [f.code for f in findings] == ["ABG404"]
        assert "no recorded fixture" in findings[0].message

    def test_registry_change_is_abg404(self, tmp_path):
        record_fixtures(tmp_path, [tiny_spec()])
        changed = [tiny_spec(quantum_length=60)]
        findings = check_freshness(tmp_path, changed)
        assert [f.code for f in findings] == ["ABG404"]
        assert "no longer matches" in findings[0].message

    def test_behaviour_drift_is_abg404(self, tmp_path, monkeypatch):
        scenarios = [tiny_spec()]
        record_fixtures(tmp_path, scenarios)

        orig = AControl.next_request

        def drifted(self, record):
            return orig(self, record) + 1.0

        monkeypatch.setattr(AControl, "next_request", drifted)
        findings = check_freshness(tmp_path, scenarios)
        assert [f.code for f in findings] == ["ABG404"]
        assert "changes its digest" in findings[0].message

    def test_corrupt_fixture_is_abg403(self, tmp_path):
        record_fixtures(tmp_path, [tiny_spec()])
        path = fixture_paths(tmp_path)[0]
        data = json.loads(path.read_text())
        data["digest"] = "0" * 64
        path.write_text(json.dumps(data))
        findings = check_freshness(tmp_path, [tiny_spec()])
        # the corrupt file is ABG403; its registry scenario is then left
        # without a usable recording, which is an ABG404 on top
        assert "ABG403" in {f.code for f in findings}

    def test_extra_regression_fixture_is_allowed(self, tmp_path):
        scenarios = [tiny_spec()]
        record_fixtures(tmp_path, scenarios)
        extra = tiny_spec(scenario_id="tiny-min")
        save_golden_bundle(tmp_path / "tiny-min.json", record_bundle(extra))
        assert check_freshness(tmp_path, scenarios) == []


class TestCommittedFixtures:
    """The repo's own fixtures/goldens must replay clean and fresh."""

    def test_committed_fixtures_pass(self):
        paths = fixture_paths("fixtures/goldens")
        assert len(paths) >= 5
        report = verify_traces(paths)
        assert report.passed, report.render()

    def test_committed_fixtures_fresh(self):
        assert check_freshness("fixtures/goldens") == []


class TestCli:
    def test_record_verify_check_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "goldens")
        assert main(["record-traces", "--out", out]) == 0
        assert main(["verify-traces", "--fixtures", out]) == 0
        assert main(["record-traces", "--out", out, "--check"]) == 0
        text = capsys.readouterr().out
        assert "27 pass, 0 fail, 0 error, 1 skip" in text
        assert "clean: no findings" in text

    def test_verify_exit_code_and_diff_on_mutation(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        out = str(tmp_path / "goldens")
        record_fixtures(
            out, [s for s in default_scenarios() if "heavy" in s.scenario_id]
        )
        _perturb_deq(monkeypatch)
        with pytest.raises(SystemExit) as exc:
            main(["verify-traces", "--fixtures", out])
        assert exc.value.code == 1
        text = capsys.readouterr().out
        assert "first divergence at quantum" in text
        assert "allotment: expected" in text

    def test_verify_json_format(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "goldens")
        record_fixtures(out, [tiny_spec()])
        assert main(["verify-traces", "--fixtures", out, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert len(payload["outcomes"]) == 4

    def test_verify_empty_dir_is_usage_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["verify-traces", "--fixtures", str(tmp_path)])

    def test_record_from_experiments(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "goldens")
        assert (
            main(
                [
                    "record-traces",
                    "--out",
                    out,
                    "--from-experiments",
                    "smoke",
                    "--sets",
                    "1",
                ]
            )
            == 0
        )
        paths = fixture_paths(out)
        assert [p.stem for p in paths] == ["fig6-smoke-set0"]
        report = verify_traces(paths)
        assert report.passed


def dag_spec(scenario_id: str = "dag-tiny", **overrides) -> ScenarioSpec:
    """A mixed schema-2 scenario: one explicit dag job, one phased job."""
    fields = dict(
        scenario_id=scenario_id,
        policy="abg",
        policy_params=(("convergence_rate", 0.2),),
        allocator="deq",
        processors=4,
        quantum_length=10,
        max_quanta=10_000,
        jobs=(
            ExplicitJob(
                job_id=0,
                release_time=0,
                dag=(5, ((0, 1), (0, 2), (1, 3), (2, 3), (3, 4))),
            ),
            ExplicitJob(job_id=1, release_time=0, phases=((2, 40),)),
        ),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestDagScenarios:
    """Schema-2 fixtures: dag-structured jobs with pinned engines."""

    def test_round_trip_emits_schema_2(self):
        spec = dag_spec()
        data = spec.to_dict()
        assert data["schema"] == 2
        assert ScenarioSpec.from_dict(data) == spec

    def test_phased_only_scenario_still_emits_schema_1(self):
        # Committed pre-dag fixtures must stay byte-identical.
        assert tiny_spec().to_dict()["schema"] == 1

    def test_job_needs_exactly_one_structure(self):
        with pytest.raises(ValueError, match="exactly one of phases or dag"):
            ExplicitJob(job_id=0, release_time=0)
        with pytest.raises(ValueError, match="exactly one of phases or dag"):
            ExplicitJob(
                job_id=0, release_time=0, phases=((1, 5),), dag=(2, ((0, 1),))
            )

    def test_engine_requires_dag(self):
        with pytest.raises(ValueError, match="without a dag"):
            ExplicitJob(
                job_id=0, release_time=0, phases=((1, 5),), engine="reference"
            )
        with pytest.raises(ValueError, match="unknown engine"):
            ExplicitJob(
                job_id=0, release_time=0, dag=(2, ((0, 1),)), engine="heap"
            )

    def test_cyclic_dag_rejected(self):
        with pytest.raises(ValueError, match="invalid dag"):
            ExplicitJob(job_id=0, release_time=0, dag=(2, ((0, 1), (1, 0))))

    def test_schema_1_payload_with_dag_rejected(self):
        data = dag_spec().to_dict()
        data["schema"] = 1
        with pytest.raises(ValueError, match="require schema 2"):
            ScenarioSpec.from_dict(data)

    def test_batchable_dag_fixture_passes_all_four_paths(self, tmp_path):
        spec = dag_scenario(
            "dag-mini", seed=7, num_jobs=3, num_levels=(8, 12), structure="barrier"
        )
        record_fixtures(tmp_path, [spec])
        report = verify_traces(fixture_paths(tmp_path))
        assert report.passed
        assert [o["status"] for o in report.outcomes] == ["pass"] * 4

    def test_reference_engine_fixture_skips_sharded_path(self, tmp_path):
        spec = dag_scenario(
            "dag-ref-mini",
            seed=7,
            num_jobs=3,
            num_levels=(8, 12),
            structure="irregular",
            engine="reference",
        )
        record_fixtures(tmp_path, [spec])
        report = verify_traces(fixture_paths(tmp_path))
        assert report.passed
        by_path = {o["path"]: o["status"] for o in report.outcomes}
        assert by_path == {
            "serial": "pass",
            "batched": "pass",
            "superstep": "pass",
            "sharded": "skip",
        }
        # a skip is not a finding; the render still counts it
        assert report.findings == ()
        assert report.render().endswith("3 pass, 0 fail, 0 error, 1 skip")


class TestRecordOnGreen:
    def test_initial_record_writes_everything(self, tmp_path):
        written, skipped = record_stale_fixtures(tmp_path, [tiny_spec()])
        assert [p.stem for p in written] == ["tiny"]
        assert skipped == []

    def test_green_fixtures_stay_byte_identical(self, tmp_path):
        record_stale_fixtures(tmp_path, [tiny_spec()])
        before = (tmp_path / "tiny.json").read_bytes()
        written, skipped = record_stale_fixtures(tmp_path, [tiny_spec()])
        assert written == []
        assert [p.stem for p in skipped] == ["tiny"]
        assert (tmp_path / "tiny.json").read_bytes() == before

    def test_only_the_diverged_fixture_is_rewritten(self, tmp_path):
        scenarios = [tiny_spec(), tiny_spec(scenario_id="tiny2", quantum_length=60)]
        record_stale_fixtures(tmp_path, scenarios)
        fresh_bytes = (tmp_path / "tiny.json").read_bytes()
        # Simulate behaviour drift on one fixture: tamper with its traces.
        path = tmp_path / "tiny2.json"
        data = json.loads(path.read_text())
        key = next(iter(data["traces"]))
        data["traces"][key]["records"][0]["allotment"] += 1
        path.write_text(json.dumps(data))
        written, skipped = record_stale_fixtures(tmp_path, scenarios)
        assert [p.stem for p in written] == ["tiny2"]
        assert [p.stem for p in skipped] == ["tiny"]
        assert (tmp_path / "tiny.json").read_bytes() == fresh_bytes
        assert check_freshness(tmp_path, scenarios) == []

    def test_registry_change_re_records_that_fixture(self, tmp_path):
        record_stale_fixtures(tmp_path, [tiny_spec()])
        changed = [tiny_spec(quantum_length=60)]
        written, skipped = record_stale_fixtures(tmp_path, changed)
        assert [p.stem for p in written] == ["tiny"]
        assert skipped == []
        assert check_freshness(tmp_path, changed) == []

    def test_extra_regression_fixture_checked_not_clobbered(self, tmp_path):
        record_stale_fixtures(tmp_path, [tiny_spec()])
        extra = tiny_spec(scenario_id="tiny-min")
        save_golden_bundle(tmp_path / "tiny-min.json", record_bundle(extra))
        before = (tmp_path / "tiny-min.json").read_bytes()
        written, skipped = record_stale_fixtures(tmp_path, [tiny_spec()])
        assert written == []
        assert {p.stem for p in skipped} == {"tiny", "tiny-min"}
        assert (tmp_path / "tiny-min.json").read_bytes() == before

    def test_cli_record_on_green(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "goldens")
        assert main(["record-traces", "--out", out]) == 0
        capsys.readouterr()
        assert main(["record-traces", "--out", out, "--record-on-green"]) == 0
        text = capsys.readouterr().out
        assert "re-recorded 0 stale fixture(s)" in text
        assert "left 7 green fixture(s) untouched" in text
