"""Tests for the determinism/invariant lint pass (``repro.verify.lint``).

Each rule must fire on a minimal synthetic source, stay quiet on the
idiomatic alternative, and honor ``# noqa`` suppression; the shipped source
tree must lint clean.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.verify.lint import check_source, lint_paths, main

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def codes(source: str) -> list[str]:
    return [f.code for f in check_source(textwrap.dedent(source))]


class TestUnseededRandomness:
    def test_stdlib_random_import_flagged(self):
        assert "ABG101" in codes("import random\n")
        assert "ABG101" in codes("from random import shuffle\n")

    def test_stdlib_random_call_flagged(self):
        found = codes("import random\nx = random.random()\n")
        assert found.count("ABG101") >= 2  # the import and the call

    def test_numpy_global_state_flagged(self):
        assert "ABG101" in codes("import numpy as np\nnp.random.seed(3)\n")
        assert "ABG101" in codes("import numpy\nnumpy.random.rand(4)\n")
        assert "ABG101" in codes("from numpy.random import rand\n")

    def test_seeded_generator_allowed(self):
        assert codes("import numpy as np\nrng = np.random.default_rng(0)\n") == []
        assert codes("from numpy.random import Generator, default_rng\n") == []
        assert codes("import numpy as np\nx = rng.integers(0, 5)\n") == []


class TestFloatEquality:
    def test_float_literal_comparison_flagged(self):
        assert "ABG102" in codes("if x == 1.0:\n    pass\n")
        assert "ABG102" in codes("ok = y != 0.5\n")
        assert "ABG102" in codes("if x == -1.0:\n    pass\n")

    def test_integer_and_ordering_comparisons_allowed(self):
        assert codes("if x == 1:\n    pass\n") == []
        assert codes("if x <= 1.0:\n    pass\n") == []
        assert codes("if math.isclose(x, 1.0):\n    pass\n") == []


class TestMutableDefaults:
    def test_literal_defaults_flagged(self):
        assert "ABG103" in codes("def f(xs=[]):\n    pass\n")
        assert "ABG103" in codes("def f(m={}):\n    pass\n")
        assert "ABG103" in codes("def f(*, s=set()):\n    pass\n")
        assert "ABG103" in codes("g = lambda xs=list(): xs\n")

    def test_immutable_defaults_allowed(self):
        assert codes("def f(xs=None, n=3, t=()):\n    pass\n") == []


class TestSetOrderIteration:
    def test_direct_set_iteration_flagged(self):
        assert "ABG104" in codes("for x in {1, 2, 3}:\n    pass\n")
        assert "ABG104" in codes("for x in set(xs):\n    pass\n")
        assert "ABG104" in codes("ys = [x for x in {1, 2}]\n")
        assert "ABG104" in codes("for x in set(a) - set(b):\n    pass\n")

    def test_sorted_traversal_allowed(self):
        assert codes("for x in sorted({1, 2, 3}):\n    pass\n") == []
        assert codes("for x in [1, 2, 3]:\n    pass\n") == []


class TestDunderAllConsistency:
    def test_phantom_export_flagged(self):
        assert "ABG105" in codes('__all__ = ["missing"]\n')

    def test_unexported_public_def_flagged(self):
        src = '__all__ = ["f"]\n\ndef f():\n    pass\n\ndef g():\n    pass\n'
        assert "ABG105" in codes(src)

    def test_consistent_module_clean(self):
        src = (
            '__all__ = ["f", "CONST"]\n'
            "CONST = 3\n\n"
            "def f():\n    pass\n\n"
            "def _private():\n    pass\n"
        )
        assert codes(src) == []

    def test_no_dunder_all_is_fine(self):
        assert codes("def f():\n    pass\n") == []


class TestNoqaSuppression:
    def test_specific_code_suppressed(self):
        assert codes("if x == 1.0:  # noqa: ABG102\n    pass\n") == []

    def test_bare_noqa_suppresses_everything(self):
        assert codes("for x in {1, 2}:  # noqa\n    pass\n") == []

    def test_other_code_not_suppressed(self):
        assert "ABG102" in codes("if x == 1.0:  # noqa: ABG104\n    pass\n")


class TestTreeAndRunner:
    def test_shipped_source_tree_is_clean(self):
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_main_exit_codes(self, tmp_path: Path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f() -> int:\n    return 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert "ABG101" in capsys.readouterr().out
        assert main([]) == 2

    def test_main_rejects_missing_path(self, tmp_path: Path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_syntax_error_is_reported_not_raised(self, tmp_path: Path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([bad])
        assert findings and findings[0].path == str(bad)
