"""Deeper behavioral tests cutting across modules: boundary conditions,
cross-representation consistency, and scheduler dynamics under transitions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.availability import InverseParallelismAvailability
from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.allocators.roundrobin import RoundRobinAllocator
from repro.analysis.bounds import theorem3_time_bound
from repro.analysis.trim import classify_quanta, trimmed_availability
from repro.control.lti import FirstOrderLoop
from repro.core.abg import AControl
from repro.core.quantum_policy import AdaptiveQuantumLength
from repro.core.overhead import ReallocationOverhead
from repro.core.reference import FixedRequest
from repro.dag.builders import fork_join_from_phases
from repro.engine.explicit import ExplicitExecutor
from repro.engine.phased import PhasedExecutor, PhasedJob
from repro.experiments import run_fig5
from repro.report.ascii import line_chart
from repro.sim.jobs import JobSpec
from repro.sim.multi import simulate_job_set
from repro.sim.single import simulate_job
from repro.workloads.forkjoin import ForkJoinGenerator, ramped_job


class TestCrossRepresentation:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(1, 8), st.integers(1, 10)), min_size=1, max_size=4)
    )
    def test_profile_matches_explicit_level_sizes(self, phases):
        job = PhasedJob(phases)
        dag = fork_join_from_phases(phases)
        assert job.parallelism_profile() == list(dag.level_sizes)
        assert job.work == dag.work
        assert job.span == dag.span
        assert job.average_parallelism == pytest.approx(dag.average_parallelism)


class TestDegenerateQuanta:
    def test_quantum_length_one(self):
        job = PhasedJob([(1, 3), (4, 3)])
        trace = simulate_job(job, AControl(0.0), 8, quantum_length=1)
        assert trace.total_work == job.work
        assert all(r.steps == 1 for r in trace.records[:-1])

    def test_allotment_exceeding_total_work(self):
        ex = PhasedExecutor(PhasedJob([(2, 1)]))
        res = ex.execute_quantum(1000, 5)
        assert res.work == 2 and res.steps == 1 and res.finished

    def test_single_task_job(self):
        trace = simulate_job(PhasedJob([(1, 1)]), AControl(0.2), 4, quantum_length=10)
        assert len(trace) == 1
        assert trace.running_time == 1

    def test_explicit_single_task(self):
        ex = ExplicitExecutor(fork_join_from_phases([(1, 1)]))
        res = ex.execute_quantum(3, 10)
        assert (res.work, res.steps, res.finished) == (1, 1, True)


class TestRequestDynamicsAcrossTransitions:
    def test_acontrol_request_bounded_by_recent_parallelism(self):
        """Requests are convex combinations of history, so they can never
        exceed the max measured parallelism (nor drop below the min)."""
        job = PhasedJob([(1, 3000), (30, 3000), (1, 3000), (30, 3000)])
        trace = simulate_job(job, AControl(0.2), 128, quantum_length=1000)
        max_a = max(r.avg_parallelism for r in trace)
        for rec in trace:
            assert rec.request <= max_a + 1e-9
            assert rec.request >= 1.0

    def test_one_step_convergence_tracks_phases(self):
        """r=0: the request equals the previous quantum's parallelism."""
        job = PhasedJob([(1, 2000), (12, 2000)])
        trace = simulate_job(job, AControl(0.0), 64, quantum_length=1000)
        for prev, cur in zip(trace.records, trace.records[1:]):
            assert cur.request == pytest.approx(prev.avg_parallelism)

    def test_slower_rate_lags_more(self):
        job = PhasedJob([(1, 3000), (24, 6000)])
        fast = simulate_job(job, AControl(0.0), 64, quantum_length=1000)
        slow = simulate_job(job, AControl(0.8), 64, quantum_length=1000)
        assert slow.running_time >= fast.running_time


class TestAdversarialAvailabilityScenario:
    def _trace(self):
        job = ramped_job(64, levels_per_phase=2000, peak_levels=10_000)
        policy = AControl(0.2)
        avail = InverseParallelismAvailability(high=128, low=4, cutoff=2.0)
        return job, simulate_job(job, policy, avail, quantum_length=1000)

    def test_accounted_quanta_exist(self):
        _, trace = self._trace()
        classes = classify_quanta(trace)
        assert len(classes.accounted) > 0
        assert sum(classes.counts) == len(trace)

    def test_trimmed_below_raw_mean(self):
        _, trace = self._trace()
        raw = trimmed_availability(trace, 0)
        trimmed = trimmed_availability(trace, 5000)
        assert trimmed < raw

    def test_theorem3_under_adversary(self):
        job, trace = self._trace()
        cl = trace.measured_transition_factor()
        if 0.2 * cl < 1.0:
            report = theorem3_time_bound(trace, job.work, job.span, 0.2)
            assert report.holds


class TestRoundRobinIdling:
    def test_processors_idle_while_deprived(self):
        """Round-robin's defining flaw: a declined share is not redistributed
        even when another job wants it."""
        rr = RoundRobinAllocator()
        alloc = rr.allocate({1: 1, 2: 100}, 10)
        assert alloc[1] == 1
        assert alloc[2] < 100
        assert sum(alloc.values()) < 10  # processors idle under contention


class TestOverheadWithAdaptiveQuantum:
    def test_compose_without_error(self):
        job = PhasedJob([(1, 500), (8, 800)])
        trace = simulate_job(
            job,
            AControl(0.2),
            32,
            quantum_length=AdaptiveQuantumLength(100, min_length=50, max_length=400),
            overhead=ReallocationOverhead(per_processor=2.0),
        )
        assert trace.total_work == job.work


class TestNegativePoleOvershoot:
    def test_gain_above_parallelism_oscillates(self):
        """K in (A, 2A): pole in (-1, 0) — stable but alternating, i.e.
        overshoot.  This is why Theorem 1 restricts r to [0, 1), keeping the
        pole non-negative."""
        loop = FirstOrderLoop(parallelism=10.0, gain=15.0)  # pole -0.5
        assert loop.is_bibo_stable
        d = loop.request_response(12, d1=1.0)
        assert np.max(d) > 10.0  # overshoots the target
        err = d - 10.0
        signs = np.sign(err[np.abs(err) > 1e-6])
        assert np.any(signs[1:] != signs[:-1])  # alternates around A


class TestExperimentDeterminism:
    def test_fig5_same_seed_identical(self):
        a = run_fig5(factors=(5, 40), jobs_per_factor=3, seed=42)
        b = run_fig5(factors=(5, 40), jobs_per_factor=3, seed=42)
        assert a.points == b.points

    def test_fig5_different_seed_differs(self):
        a = run_fig5(factors=(5,), jobs_per_factor=3, seed=1)
        b = run_fig5(factors=(5,), jobs_per_factor=3, seed=2)
        assert a.points != b.points


class TestChartLimits:
    def test_too_many_series_rejected(self):
        series = {f"s{i}": [(0, 0.0), (1, 1.0)] for i in range(9)}
        with pytest.raises(ValueError):
            line_chart(series)


class TestMultiQuantumAccounting:
    def test_trace_start_steps_are_quantum_aligned(self):
        jobs = [PhasedJob([(2, 120)]), PhasedJob([(3, 90)])]
        specs = [JobSpec(job=j, feedback=FixedRequest(4)) for j in jobs]
        result = simulate_job_set(specs, DynamicEquiPartitioning(), 16, quantum_length=50)
        for trace in result.traces.values():
            for rec in trace:
                assert rec.start_step % 50 == 0

    def test_quanta_elapsed_counter(self):
        jobs = [PhasedJob([(1, 100)])]
        specs = [JobSpec(job=j, feedback=FixedRequest(1)) for j in jobs]
        result = simulate_job_set(specs, DynamicEquiPartitioning(), 4, quantum_length=25)
        assert result.quanta_elapsed == 4
        assert result.released == {0: 0}


class TestGeneratorEdgeCases:
    def test_factor_one_is_serial_like(self, rng):
        gen = ForkJoinGenerator(quantum_length=50)
        job = gen.generate(rng, transition_factor=1)
        assert job.max_width == 1
        assert job.average_parallelism == 1.0

    def test_trace_parallelism_series_full_flag(self):
        job = PhasedJob([(3, 70)])
        trace = simulate_job(job, AControl(0.2), 16, quantum_length=30)
        full = trace.avg_parallelism_series(full_only=True)
        every = trace.avg_parallelism_series(full_only=False)
        assert len(every) == len(trace)
        assert len(full) == len(trace.full_quanta)
