"""Tests for the interprocedural flow analysis (``repro.verify.flow``).

Golden fixtures per ABG2xx rule (a minimal positive and the idiomatic
negative), the interprocedural propagation and trace machinery, the shared
suppression syntax, the content-hash summary cache, the seeded mutation
checks from the acceptance criteria (injecting a violation into a real
worker-dispatched function must produce exactly the expected finding), and
the unified ``python -m repro lint`` entry point.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.verify.findings import exit_code
from repro.verify.flow import SummaryCache, analyze_paths
from repro.verify.lint import check_source

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def flow_codes(
    tmp_path: Path, source: str, *, roots: tuple[str, ...] = ("m::worker",)
) -> list[str]:
    """Analyze one synthetic module rooted at ``worker``; return codes."""
    target = tmp_path / "m.py"
    target.write_text(textwrap.dedent(source))
    report = analyze_paths([target], root_patterns=(), extra_roots=roots)
    return [f.code for f in report.findings]


class TestPurityRules:
    def test_module_dict_mutation_flagged(self, tmp_path):
        src = """\
            CACHE = {}

            def worker(x):
                CACHE[x] = 1
                return x
        """
        assert flow_codes(tmp_path, src) == ["ABG201"]

    def test_global_rebind_flagged(self, tmp_path):
        src = """\
            COUNT = 0

            def worker(x):
                global COUNT
                COUNT = COUNT + 1
                return x
        """
        assert flow_codes(tmp_path, src) == ["ABG201"]

    def test_mutating_method_on_global_flagged(self, tmp_path):
        src = """\
            SEEN = []

            def worker(x):
                SEEN.append(x)
                return x
        """
        assert flow_codes(tmp_path, src) == ["ABG201"]

    def test_local_state_is_fine(self, tmp_path):
        src = """\
            def worker(xs):
                acc = {}
                for x in xs:
                    acc[x] = 1
                return acc
        """
        assert flow_codes(tmp_path, src) == []

    def test_shadowing_local_is_fine(self, tmp_path):
        src = """\
            CACHE = {}

            def worker(xs):
                CACHE = {}
                CACHE[0] = 1
                return CACHE
        """
        assert flow_codes(tmp_path, src) == []

    def test_write_off_worker_path_not_flagged(self, tmp_path):
        src = """\
            CACHE = {}

            def setup(x):
                CACHE[x] = 1

            def worker(x):
                return x
        """
        assert flow_codes(tmp_path, src) == []

    def test_mutable_default_on_worker_flagged(self, tmp_path):
        src = """\
            def worker(x, acc=[]):
                return x
        """
        assert flow_codes(tmp_path, src) == ["ABG202"]

    def test_none_default_is_fine(self, tmp_path):
        src = """\
            def worker(x, acc=None):
                return x
        """
        assert flow_codes(tmp_path, src) == []


class TestRngRules:
    def test_seedless_default_rng_flagged(self, tmp_path):
        src = """\
            import numpy as np

            def worker(x):
                rng = np.random.default_rng()
                return rng.random()
        """
        assert flow_codes(tmp_path, src) == ["ABG211"]

    def test_ambient_numpy_global_state_flagged(self, tmp_path):
        src = """\
            import numpy as np

            def worker(x):
                return np.random.rand()
        """
        assert flow_codes(tmp_path, src) == ["ABG211"]

    def test_stdlib_random_flagged(self, tmp_path):
        src = """\
            import random

            def worker(x):
                return random.random()
        """
        assert flow_codes(tmp_path, src) == ["ABG211"]

    def test_underived_seed_flagged(self, tmp_path):
        src = """\
            import os
            import numpy as np

            def worker(x):
                rng = np.random.default_rng(os.getpid())
                return rng.random()
        """
        assert flow_codes(tmp_path, src) == ["ABG212"]

    def test_parameter_derived_stream_is_fine(self, tmp_path):
        src = """\
            import numpy as np

            def worker(seed, key):
                rng = np.random.default_rng([seed, key])
                return rng.random()
        """
        assert flow_codes(tmp_path, src) == []

    def test_constant_seed_is_fine(self, tmp_path):
        src = """\
            import numpy as np

            SEED = 1234

            def worker(x):
                rng = np.random.default_rng([SEED, x])
                return rng.random()
        """
        assert flow_codes(tmp_path, src) == []

    def test_rng_off_worker_path_not_flagged(self, tmp_path):
        src = """\
            import numpy as np

            def explore():
                return np.random.default_rng().random()

            def worker(x):
                return x
        """
        assert flow_codes(tmp_path, src) == []


class TestOrderingRule:
    def test_named_set_iteration_flagged(self, tmp_path):
        src = """\
            def worker(xs):
                s = set(xs)
                out = []
                for v in s:
                    out.append(v)
                return out
        """
        assert flow_codes(tmp_path, src) == ["ABG221"]

    def test_sorted_iteration_is_fine(self, tmp_path):
        src = """\
            def worker(xs):
                s = set(xs)
                return [v for v in sorted(s)]
        """
        assert flow_codes(tmp_path, src) == []

    def test_set_typed_parameter_flagged(self, tmp_path):
        src = """\
            def worker(xs: set):
                return [v for v in xs]
        """
        assert flow_codes(tmp_path, src) == ["ABG221"]


class TestPayloadRule:
    def test_lambda_payload_flagged(self, tmp_path):
        src = """\
            def run(items):
                return map_deterministic(lambda x: x, items)
        """
        assert flow_codes(tmp_path, src, roots=()) == ["ABG231"]

    def test_nested_function_payload_flagged(self, tmp_path):
        src = """\
            def run(items):
                def inner(x):
                    return x
                return map_deterministic(inner, items)
        """
        assert flow_codes(tmp_path, src, roots=()) == ["ABG231"]

    def test_open_handle_argument_flagged(self, tmp_path):
        src = """\
            def work(x, fh):
                return x

            def run(items):
                return map_deterministic(work, items, open("log.txt"))
        """
        assert flow_codes(tmp_path, src, roots=()) == ["ABG231"]

    def test_module_function_payload_is_fine(self, tmp_path):
        src = """\
            def work(x):
                return x

            def run(items):
                return map_deterministic(work, items)
        """
        assert flow_codes(tmp_path, src, roots=()) == []


class TestInterprocedural:
    def test_dispatch_discovers_root_and_trace_reaches_helper(self, tmp_path):
        src = """\
            STATE = {}

            def helper(x):
                STATE[x] = 1
                return x

            def worker(x):
                return helper(x)

            def run(items):
                return map_deterministic(worker, items)
        """
        target = tmp_path / "m.py"
        target.write_text(textwrap.dedent(src))
        report = analyze_paths([target], root_patterns=())
        assert report.roots == ("m::worker",)
        assert "m::helper" in report.reachable
        (finding,) = report.findings
        assert finding.code == "ABG201"
        assert finding.trace == ("m.worker", "m.helper")

    def test_declared_root_patterns_match(self, tmp_path):
        src = """\
            STATE = {}

            def run_entry(x):
                STATE[x] = 1
                return x
        """
        target = tmp_path / "m.py"
        target.write_text(textwrap.dedent(src))
        report = analyze_paths([target], root_patterns=("m::run_*",))
        assert report.roots == ("m::run_entry",)
        assert [f.code for f in report.findings] == ["ABG201"]

    def test_method_reachability_through_annotation(self, tmp_path):
        src = """\
            class Policy:
                def step(self, x):
                    return x

            class Noisy(Policy):
                def step(self, x):
                    import numpy as np
                    return np.random.default_rng().random()

            def worker(policy: Policy, x):
                return policy.step(x)
        """
        target = tmp_path / "m.py"
        target.write_text(textwrap.dedent(src))
        report = analyze_paths(
            [target], root_patterns=(), extra_roots=("m::worker",)
        )
        assert "m::Noisy.step" in report.reachable
        assert [f.code for f in report.findings] == ["ABG211"]


class TestSupervisedDispatch:
    """``run_supervised`` is a dispatch surface exactly like the bare map."""

    def test_run_supervised_discovers_root(self, tmp_path):
        src = """\
            STATE = {}

            def worker(x):
                STATE[x] = 1
                return x

            def run(items):
                return run_supervised(worker, items, workers=4)
        """
        target = tmp_path / "m.py"
        target.write_text(textwrap.dedent(src))
        report = analyze_paths([target], root_patterns=())
        assert report.roots == ("m::worker",)
        assert [f.code for f in report.findings] == ["ABG201"]

    def test_run_supervised_clean_worker_passes(self, tmp_path):
        src = """\
            def worker(x):
                return x + 1

            def run(items):
                return run_supervised(worker, items, workers=4)
        """
        assert flow_codes(tmp_path, src, roots=()) == []

    def test_run_supervised_lambda_payload_flagged(self, tmp_path):
        src = """\
            def run(items):
                return run_supervised(lambda x: x, items)
        """
        assert flow_codes(tmp_path, src, roots=()) == ["ABG231"]


class TestSuppression:
    def test_allow_with_reason_suppresses(self, tmp_path):
        src = """\
            CACHE = {}

            def worker(x):
                CACHE[x] = 1  # abg: allow[ABG201] reason=deterministic memoization
                return x
        """
        assert flow_codes(tmp_path, src) == []

    def test_allow_without_reason_is_inert(self, tmp_path):
        src = """\
            CACHE = {}

            def worker(x):
                CACHE[x] = 1  # abg: allow[ABG201]
                return x
        """
        assert flow_codes(tmp_path, src) == ["ABG201"]

    def test_reasonless_allow_reported_as_abg290(self):
        findings = check_source("x = 1  # abg: allow[ABG102]\n")
        assert [f.code for f in findings] == ["ABG290"]

    def test_allow_with_reason_works_for_file_local_rules(self):
        src = "if x == 1.0:  # abg: allow[ABG102] reason=sentinel is exact\n    pass\n"
        assert check_source(src) == []


class TestSummaryCache:
    def _fixture(self, tmp_path: Path) -> Path:
        target = tmp_path / "m.py"
        target.write_text(
            textwrap.dedent(
                """\
                def worker(x):
                    return x
                """
            )
        )
        return target

    def test_second_run_hits_and_findings_match(self, tmp_path):
        target = self._fixture(tmp_path)
        cache_path = tmp_path / "cache.json"
        first = analyze_paths(
            [target],
            root_patterns=(),
            extra_roots=("m::worker",),
            cache=SummaryCache(cache_path),
        )
        assert first.stats["cache_misses"] == 1
        assert cache_path.exists()
        second = analyze_paths(
            [target],
            root_patterns=(),
            extra_roots=("m::worker",),
            cache=SummaryCache(cache_path),
        )
        assert second.stats["cache_hits"] == 1
        assert second.stats["cache_misses"] == 0
        assert second.findings == first.findings
        assert second.reachable == first.reachable

    def test_edit_invalidates_and_surfaces_new_finding(self, tmp_path):
        target = self._fixture(tmp_path)
        cache_path = tmp_path / "cache.json"
        analyze_paths(
            [target],
            root_patterns=(),
            extra_roots=("m::worker",),
            cache=SummaryCache(cache_path),
        )
        target.write_text(
            textwrap.dedent(
                """\
                SEEN = []

                def worker(x):
                    SEEN.append(x)
                    return x
                """
            )
        )
        report = analyze_paths(
            [target],
            root_patterns=(),
            extra_roots=("m::worker",),
            cache=SummaryCache(cache_path),
        )
        assert report.stats["cache_misses"] == 1
        assert [f.code for f in report.findings] == ["ABG201"]

    def test_corrupt_cache_treated_as_empty(self, tmp_path):
        target = self._fixture(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        report = analyze_paths(
            [target],
            root_patterns=(),
            extra_roots=("m::worker",),
            cache=SummaryCache(cache_path),
        )
        assert report.stats["cache_misses"] == 1


class TestRepoTree:
    def test_shipped_tree_is_deep_clean(self):
        report = analyze_paths([REPO_SRC])
        assert report.findings == [], "\n".join(str(f) for f in report.findings)
        assert report.ok

    def test_root_set_covers_the_contract_surface(self):
        report = analyze_paths([REPO_SRC])
        roots = set(report.roots)
        fig5 = str(REPO_SRC / "experiments" / "fig5.py")
        assert any("fig5" in r and "_fig5_factor_point" in r for r in roots), fig5
        assert any("execute_quantum" in r for r in roots)
        assert len(report.reachable) > len(report.roots)

    def test_mutation_unseeded_rng_is_caught(self):
        """Acceptance check: an injected seedless default_rng() in a
        worker-dispatched function yields exactly one ABG211."""
        fig5 = REPO_SRC / "experiments" / "fig5.py"
        source = fig5.read_text(encoding="utf-8")
        seeded = "rng = np.random.default_rng([task.seed, task.factor])"
        assert seeded in source
        mutated = source.replace(seeded, "rng = np.random.default_rng()")
        report = analyze_paths([REPO_SRC], overrides={str(fig5): mutated})
        assert [f.code for f in report.findings] == ["ABG211"]
        (finding,) = report.findings
        assert finding.path == str(fig5)

    def test_mutation_global_write_is_caught(self):
        """Acceptance check: an injected module-global write in a
        worker-dispatched function yields exactly one ABG201."""
        fig5 = REPO_SRC / "experiments" / "fig5.py"
        source = fig5.read_text(encoding="utf-8")
        anchor = "from .parallel import map_deterministic"
        assert anchor in source
        mutated = source.replace(
            anchor, anchor + "\n\n_FIG5_STATS: list = []"
        ).replace(
            "    rng = np.random.default_rng([task.seed, task.factor])",
            "    _FIG5_STATS.append(task.factor)\n"
            "    rng = np.random.default_rng([task.seed, task.factor])",
        )
        report = analyze_paths([REPO_SRC], overrides={str(fig5): mutated})
        assert [f.code for f in report.findings] == ["ABG201"]
        (finding,) = report.findings
        assert "_FIG5_STATS" in finding.message


class TestUnifiedCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f() -> int:\n    return 1\n")
        assert cli_main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_findings_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        with pytest.raises(SystemExit) as exc:
            cli_main(["lint", str(dirty)])
        assert exc.value.code == 1
        assert "ABG101" in capsys.readouterr().out

    def test_deep_merges_both_layers(self, tmp_path, capsys):
        dirty = tmp_path / "m.py"
        dirty.write_text(
            textwrap.dedent(
                """\
                import random

                STATE = {}

                def worker(x):
                    STATE[x] = 1
                    return x

                def run(items):
                    return map_deterministic(worker, items)
                """
            )
        )
        with pytest.raises(SystemExit) as exc:
            cli_main(["lint", "--deep", "--no-cache", str(dirty)])
        assert exc.value.code == 1
        out = capsys.readouterr().out
        assert "ABG101" in out  # file-local layer
        assert "ABG201" in out  # interprocedural layer

    def test_json_format_schema(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f() -> int:\n    return 1\n")
        assert cli_main(
            ["lint", "--deep", "--no-cache", "--format", "json", str(clean)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["findings"] == []
        assert payload["summary"]["errors"] == 0
        assert payload["stats"]["modules"] == 1

    def test_json_format_reports_findings(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        with pytest.raises(SystemExit):
            cli_main(["lint", "--format", "json", str(dirty)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["findings"][0]["code"] == "ABG101"

    def test_exit_code_policy_ignores_warnings(self):
        from repro.verify.findings import LintFinding

        warning = LintFinding(
            path="p", line=1, col=0, code="X", message="m", severity="warning"
        )
        error = LintFinding(path="p", line=1, col=0, code="X", message="m")
        assert exit_code([]) == 0
        assert exit_code([warning]) == 0
        assert exit_code([warning, error]) == 1
