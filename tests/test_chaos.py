"""Chaos tests: faulted runs must produce bit-identical artifacts.

The determinism contract under fault injection: retries re-run the same
pure, independently-seeded work units, so a run that survives injected
crashes/hangs/transients writes byte-for-byte the same JSON artifacts as a
fault-free serial run — and a killed run finishes under ``--resume`` with
the same bytes too.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.runner import JOURNAL_DIRNAME, run_everything
from repro.runtime import FAULTS_ENV_VAR, FaultPlan

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

CHAOS_PLAN = FaultPlan(
    seed=11,
    rate=0.45,
    kinds=("crash", "transient"),
    max_failures=2,
)


def _artifacts(out: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes() for p in sorted(out.glob("*.json"))}


@pytest.mark.slow
class TestChaosByteIdentity:
    def test_faulted_parallel_matches_clean_serial(self, tmp_path):
        clean = run_everything(tmp_path / "clean", scale="smoke", jobs=1)
        chaotic = run_everything(
            tmp_path / "chaos",
            scale="smoke",
            jobs=3,
            retries=4,
            faults=CHAOS_PLAN,
        )
        assert len(clean.outcomes) == len(chaotic.outcomes)
        assert _artifacts(tmp_path / "clean") == _artifacts(tmp_path / "chaos")

    def test_killed_run_resumes_to_identical_artifacts(self, tmp_path):
        clean_dir, killed_dir = tmp_path / "clean", tmp_path / "killed"
        run_everything(clean_dir, scale="smoke", jobs=1)

        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env.pop(FAULTS_ENV_VAR, None)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "all",
                "--out", str(killed_dir), "--scale", "smoke", "--jobs", "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        # SIGTERM is only translated to a clean shutdown once run_everything
        # has installed its handler; the first journal entry can only appear
        # after that, so wait for it instead of sleeping a fixed interval
        # (under load, interpreter startup alone can exceed any fixed sleep).
        journal_dir = killed_dir / JOURNAL_DIRNAME
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and proc.poll() is None:
            if journal_dir.is_dir() and any(journal_dir.iterdir()):
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=120)
        # either we caught it mid-run (clean shutdown, exit 130, journal
        # partial) or the smoke run finished first (exit 0, journal full) —
        # both must resume to identical bytes
        assert proc.returncode in (0, 130), stderr
        if proc.returncode == 130:
            assert "rerun with --resume" in stderr
            assert (killed_dir / JOURNAL_DIRNAME).is_dir()

        resumed = subprocess.run(
            [
                sys.executable, "-m", "repro", "all",
                "--out", str(killed_dir), "--scale", "smoke", "--jobs", "2",
                "--resume",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert _artifacts(clean_dir) == _artifacts(killed_dir)


class TestAmbientFaultPlan:
    def test_env_var_plan_keeps_results_identical(self, monkeypatch):
        factors = (2, 9, 23)
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        clean = run_fig5(factors=factors, jobs_per_factor=2)
        monkeypatch.setenv(
            FAULTS_ENV_VAR, "seed=11:rate=1.0:kinds=transient:max-failures=2"
        )
        faulted = run_fig5(factors=factors, jobs_per_factor=2, retries=2)
        assert faulted.points == clean.points
