"""Superstep fast-forwarding, arena state, and columnar traces.

The superstep layer's claim mirrors the batched kernel's: whole-run results
— every trace, every :class:`QuantumRecord` field, artifact bytes — are
*bit-identical* whether quanta execute one at a time (``superstep="off"``)
or fast-forward in closed form whenever the system provably repeats
(``superstep="auto"``, the default).  These tests run three-way
cross-validation (serial / per-quantum batched / superstep) over randomized
job sets including mid-run releases, overhead, mixed policies, and strict
mode; unit-test the closed forms against brute-force per-quantum execution;
and pin the allocator/feedback fixed-point contracts the layer composes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.allocators.roundrobin import RoundRobinAllocator
from repro.core.abg import AControl
from repro.core.agreedy import AGreedy
from repro.core.overhead import ReallocationOverhead
from repro.core.reference import FixedRequest
from repro.core.types import JobTrace, QuantumRecord
from repro.engine.phased import PhasedJob
from repro.sim.jobs import JobSpec
from repro.sim.multi import simulate_job_set
from repro.sim.multi_batched import MultiBatchKernel, segment_profile
from repro.sim.superstep import (
    QuantumLog,
    SuperstepArena,
    SupersetArena,
    pure_quantum_counts,
)

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def assert_results_identical(a, b) -> None:
    """Byte-for-byte equality of two MultiJobResult objects."""
    assert list(a.traces) == list(b.traces)
    assert a.quanta_elapsed == b.quanta_elapsed
    assert a.released == b.released
    for jid in a.traces:
        ta, tb = a.traces[jid], b.traces[jid]
        assert (ta.release_time, ta.job_id, ta.quantum_length) == (
            tb.release_time,
            tb.job_id,
            tb.quantum_length,
        )
        assert ta.records == tb.records


def run_three_way(make_specs, processors, *, allocator=DynamicEquiPartitioning,
                  **kwargs):
    """Serial, per-quantum batched, and superstep runs of one job set must
    agree byte for byte (fresh specs/allocator per run — DEQ is stateful)."""
    serial = simulate_job_set(
        make_specs(), allocator(), processors, batch="off", **kwargs
    )
    per_quantum = simulate_job_set(
        make_specs(), allocator(), processors, superstep="off", **kwargs
    )
    fast = simulate_job_set(
        make_specs(), allocator(), processors, superstep="auto", **kwargs
    )
    assert_results_identical(serial, per_quantum)
    assert_results_identical(serial, fast)
    return fast


def random_phased_job(rng: np.random.Generator) -> PhasedJob:
    phases: list[tuple[int, int]] = []
    for _ in range(int(rng.integers(1, 4))):
        phases.append((1, int(rng.integers(1, 6))))
        phases.append((int(rng.integers(2, 10)), int(rng.integers(1, 8))))
    return PhasedJob(phases)


def single_slot_kernel(phases, request: float) -> MultiBatchKernel:
    kernel = MultiBatchKernel()
    spec = JobSpec(job=PhasedJob(phases), feedback=FixedRequest(request))
    profile = segment_profile(spec, strict=False)
    assert profile is not None
    kernel.admit(
        jid=0,
        seq=0,
        spec=spec,
        trace=JobTrace(quantum_length=100, job_id=0),
        profile=profile,
        request=request,
    )
    return kernel


class CountingDEQ(DynamicEquiPartitioning):
    """DEQ that counts allocate_batch calls — supersteps skip allocations,
    so the count observes whether fast-forwarding actually engaged."""

    def __init__(self) -> None:
        super().__init__()
        self.batch_calls = 0

    def allocate_batch(self, ids, requests, total):
        self.batch_calls += 1
        return super().allocate_batch(ids, requests, total)


# ---------------------------------------------------------------------------
# pure_quantum_counts: closed form vs per-quantum execution
# ---------------------------------------------------------------------------


class TestPureQuantumCounts:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_per_quantum_execution(self, seed):
        """For random single-segment states, the counted quanta execute as
        predicted (work=delta, steps=L) and the very next quantum differs
        or completes a segment — the definition of an event."""
        rng = np.random.default_rng(seed)
        L = int(rng.integers(2, 20))
        w = int(rng.integers(1, 12))
        levels = int(rng.integers(1, 4000))
        a = int(rng.integers(1, 16))
        kernel = single_slot_kernel([(w, levels)], float(a))
        alloc = np.asarray([a], dtype=np.int64)
        plan = kernel.superstep_plan(alloc, L)
        overhead = ReallocationOverhead()  # free
        if plan is None:
            # the first quantum already reaches an event; nothing to check
            # beyond it executing at all
            kernel.execute_quantum(alloc, L, overhead)
            return
        n = int(plan.quanta[0])
        for _ in range(n):
            out = kernel.execute_quantum(alloc, L, overhead)
            assert int(out.work[0]) == int(plan.delta[0])
            assert float(out.span[0]) == float(plan.span[0])
            assert int(out.steps[0]) == L
            assert not bool(out.finished[0])
        # quantum n+1 must be an event: different record or a completion
        out = kernel.execute_quantum(alloc, L, overhead)
        assert (
            int(out.work[0]) != int(plan.delta[0])
            or int(out.steps[0]) != L
            or bool(out.finished[0])
            or int(kernel._cur[0]) > 0  # segment transition inside it
        )

    def test_regime2_exact_boundary_excluded(self):
        """A quantum that drains the segment exactly at the boundary is an
        event and never counted."""
        # w=4, one level of 40 tasks in regime 2 reach: a=4, L=10 -> one
        # quantum finishes exactly; counts must be 0.
        quanta, delta = pure_quantum_counts(
            alloc=np.asarray([4], dtype=np.int64),
            width=np.asarray([4], dtype=np.int64),
            seg_remaining=np.asarray([40], dtype=np.int64),
            to_boundary=np.asarray([0], dtype=np.int64),
            regime1=np.asarray([False]),
            length=10,
        )
        assert int(quanta[0]) == 0

    def test_apply_matches_repeated_execute(self):
        """apply_superstep leaves exactly the state k execute_quantum calls
        would, across random states."""
        rng = np.random.default_rng(7)
        for _ in range(10):
            L = int(rng.integers(2, 16))
            phases = [
                (int(rng.integers(1, 9)), int(rng.integers(50, 4000)))
                for _ in range(int(rng.integers(1, 3)))
            ]
            a = int(rng.integers(1, 12))
            alloc = np.asarray([a], dtype=np.int64)
            overhead = ReallocationOverhead()
            k1 = single_slot_kernel(phases, float(a))
            k2 = single_slot_kernel(phases, float(a))
            # one real quantum first (sets prev_allot like the simulator)
            k1.execute_quantum(alloc, L, overhead)
            k2.execute_quantum(alloc, L, overhead)
            plan = k1.superstep_plan(alloc, L)
            if plan is None:
                continue
            k = min(int(plan.quanta[0]), 50)
            k1.bump_quantum()
            k1.apply_superstep(k, plan, alloc, L)
            k2.bump_quantum()
            for _ in range(k):
                k2.execute_quantum(alloc, L, overhead)
                k2.bump_quantum()
            for name in ("cur", "done", "rem", "prev_allot", "next_q"):
                assert np.array_equal(
                    getattr(k1._arena, name)[:1], getattr(k2._arena, name)[:1]
                ), name


# ---------------------------------------------------------------------------
# Allocator fixed points
# ---------------------------------------------------------------------------


class TestAllocationFixedPoint:
    def _grants(self, alloc, ids, req, total):
        out = alloc.allocate_batch(ids, req, total)
        assert out is not None
        return out

    def test_deq_all_satisfied_any_horizon(self):
        deq = DynamicEquiPartitioning()
        ids = np.arange(4, dtype=np.int64)
        req = np.asarray([3, 5, 2, 7], dtype=np.int64)  # all <= share
        g = self._grants(deq, ids, req, 64)
        rot = deq._rotation
        k = deq.allocation_fixed_point(ids, req, g, 64, 1000)
        assert k == 1000
        assert deq._rotation == rot  # satisfied waterfall never rotates
        # grants really repeat
        assert np.array_equal(deq.allocate_batch(ids, req, 64), g)

    def test_deq_rotating_exact_split_advances_rotation(self):
        deq = DynamicEquiPartitioning()
        ids = np.arange(4, dtype=np.int64)
        req = np.asarray([100, 100, 100, 100], dtype=np.int64)  # extra == 0
        g = self._grants(deq, ids, req, 64)
        rot = deq._rotation
        k = deq.allocation_fixed_point(ids, req, g, 64, 7)
        assert k == 7
        assert deq._rotation == rot + 7  # state advanced wholesale
        assert np.array_equal(deq.allocate_batch(ids, req, 64), g)

    def test_deq_rotating_remainder_never_fixed(self):
        deq = DynamicEquiPartitioning()
        ids = np.arange(3, dtype=np.int64)
        req = np.asarray([100, 100, 100], dtype=np.int64)  # 64 % 3 != 0
        g = self._grants(deq, ids, req, 64)
        assert deq.allocation_fixed_point(ids, req, g, 64, 7) == 0

    def test_deq_sneaky_share_plus_one(self):
        """Every unsatisfied job requesting share+1 grants requests exactly,
        yet the bonus rotates — grants alone cannot prove a fixed point."""
        deq = DynamicEquiPartitioning()
        ids = np.arange(3, dtype=np.int64)
        req = np.asarray([22, 22, 22], dtype=np.int64)  # share=21, extra=1
        g = self._grants(deq, ids, req, 64)
        assert deq.allocation_fixed_point(ids, req, g, 64, 7) == 0
        g2 = deq.allocate_batch(ids, req, 64)
        assert not np.array_equal(g, g2)  # the bonus really moved

    def test_roundrobin_divisible_total(self):
        rr = RoundRobinAllocator()
        ids = np.arange(4, dtype=np.int64)
        req = np.asarray([100, 100, 100, 100], dtype=np.int64)
        g = rr.allocate_batch(ids, req, 64)
        rot = rr._rotation
        assert rr.allocation_fixed_point(ids, req, g, 64, 5) == 5
        assert rr._rotation == rot + 5
        assert np.array_equal(rr.allocate_batch(ids, req, 64), g)

    def test_roundrobin_remainder_never_fixed(self):
        rr = RoundRobinAllocator()
        ids = np.arange(3, dtype=np.int64)
        req = np.asarray([100, 100, 100], dtype=np.int64)
        g = rr.allocate_batch(ids, req, 64)
        assert rr.allocation_fixed_point(ids, req, g, 64, 5) == 0

    def test_base_allocator_returns_zero(self):
        from repro.allocators.base import Allocator

        class Mapping(Allocator):
            def allocate(self, requests, total):
                return {j: 1 for j in requests}

        ids = np.arange(2, dtype=np.int64)
        req = np.ones(2, dtype=np.int64)
        assert Mapping().allocation_fixed_point(ids, req, req, 4, 9) == 0


# ---------------------------------------------------------------------------
# Feedback fixed points
# ---------------------------------------------------------------------------


class TestAdvanceRequestBatch:
    def _cols(self, request, allotment, work, span):
        request = np.asarray(request, dtype=np.float64)
        return dict(
            request=request,
            request_int=np.maximum(
                1, np.ceil(request - 1e-9).astype(np.int64)
            ),
            allotment=np.asarray(allotment, dtype=np.int64),
            work=np.asarray(work, dtype=np.int64),
            span=np.asarray(span, dtype=np.float64),
            steps=np.full(len(request), 100, dtype=np.int64),
        )

    def test_fixed_point_advances(self):
        policy = AControl(0.2)
        # d == A(q) == w: the geometric filter maps w to itself bitwise
        cols = self._cols([8.0], [8], [800], [100.0])
        nxt = policy.advance_request_batch(**cols, quanta=50)
        assert nxt is not None and float(nxt[0]) == 8.0

    def test_moving_recurrence_returns_none(self):
        policy = AControl(0.2)
        cols = self._cols([4.0], [4], [400], [50.0])  # A=8 != d=4: moving
        assert policy.advance_request_batch(**cols, quanta=2) is None

    def test_scalar_only_policy_returns_none(self):
        class ScalarOnly(AControl):
            def next_request_batch(self, **kwargs):
                return None

        cols = self._cols([8.0], [8], [800], [100.0])
        assert ScalarOnly().advance_request_batch(**cols, quanta=2) is None

    def test_quanta_below_one_rejected(self):
        cols = self._cols([8.0], [8], [800], [100.0])
        with pytest.raises(ValueError):
            AControl().advance_request_batch(**cols, quanta=0)


# ---------------------------------------------------------------------------
# Arena
# ---------------------------------------------------------------------------


class TestSuperstepArena:
    def test_issue_spelling_alias(self):
        assert SupersetArena is SuperstepArena

    @pytest.mark.parametrize("seed", range(6))
    def test_random_admit_remove_matches_reference(self, seed):
        """The packed arena mirrors a plain python list-of-rows reference
        through arbitrary admit/remove interleavings (growth included)."""
        rng = np.random.default_rng(seed)
        arena = SuperstepArena()
        ref: list[dict] = []
        uid = 0
        for _ in range(60):
            if ref and rng.random() < 0.4:
                keep = rng.random(len(ref)) < 0.6
                arena.remove(keep)
                ref = [r for r, k in zip(ref, keep) if k]
            else:
                k = int(rng.integers(1, 5))
                seg_w = rng.integers(1, 9, k).astype(np.int64)
                seg_total = seg_w * rng.integers(1, 50, k).astype(np.int64)
                arena.admit(
                    request=float(uid), seg_w=seg_w, seg_total=seg_total
                )
                ref.append(
                    {
                        "request": float(uid),
                        "rem": int(seg_total.sum()),
                        "seg_w": seg_w.tolist(),
                        "seg_total": seg_total.tolist(),
                    }
                )
                uid += 1
            # full-state comparison
            assert arena.n == len(ref)
            assert arena.request[: arena.n].tolist() == [
                r["request"] for r in ref
            ]
            assert arena.rem[: arena.n].tolist() == [r["rem"] for r in ref]
            offs = arena.seg_off[: arena.n].tolist()
            lens = arena.seg_len[: arena.n].tolist()
            for row, (off, ln) in zip(ref, zip(offs, lens)):
                assert arena.seg_w[off : off + ln].tolist() == row["seg_w"]
                assert (
                    arena.seg_total[off : off + ln].tolist()
                    == row["seg_total"]
                )
            assert arena.seg_used == sum(lens)


# ---------------------------------------------------------------------------
# QuantumLog expansion
# ---------------------------------------------------------------------------


class TestQuantumLog:
    def _group_cols(self, index0, request, work):
        n = len(index0)
        request = np.asarray(request, dtype=np.float64)
        work = np.asarray(work, dtype=np.int64)
        return dict(
            index0=np.asarray(index0, dtype=np.int64),
            request=request,
            request_int=np.maximum(1, np.ceil(request - 1e-9).astype(np.int64)),
            available=np.full(n, 64, dtype=np.int64),
            allotment=np.minimum(
                np.maximum(1, np.ceil(request - 1e-9).astype(np.int64)), 64
            ),
            work=work,
            span=work / 2.0,
            steps=np.full(n, 10, dtype=np.int64),
        )

    def test_repeat_groups_expand_to_per_quantum_records(self):
        log = QuantumLog(10)
        log.set_layout([5, 3])
        log.append_quantum(start_step=0, repeat=1, **self._group_cols(
            [1, 1], [2.0, 4.0], [20, 40]))
        log.append_quantum(start_step=10, repeat=3, **self._group_cols(
            [2, 2], [2.0, 4.0], [20, 40]))
        log.set_layout([3])  # job 5 left
        log.append_quantum(start_step=40, repeat=1, **self._group_cols(
            [5], [4.0], [12]))
        traces = {
            5: JobTrace(quantum_length=10, job_id=5),
            3: JobTrace(quantum_length=10, job_id=3),
        }
        log.build_traces(traces)
        assert traces[5].has_columns and traces[3].has_columns
        recs5 = traces[5].records
        assert [r.index for r in recs5] == [1, 2, 3, 4]
        assert [r.start_step for r in recs5] == [0, 10, 20, 30]
        assert all(r.work == 20 and r.request == 2.0 for r in recs5)
        recs3 = traces[3].records
        assert [r.index for r in recs3] == [1, 2, 3, 4, 5]
        assert [r.start_step for r in recs3] == [0, 10, 20, 30, 40]
        assert [r.work for r in recs3] == [40, 40, 40, 40, 12]
        # materialized records are plain QuantumRecord with python scalars
        assert all(isinstance(r, QuantumRecord) for r in recs3)
        assert all(type(r.work) is int and type(r.span) is float
                   for r in recs3)

    def test_invalid_row_raises_the_scalar_error(self):
        log = QuantumLog(10)
        log.set_layout([0])
        cols = self._group_cols([1], [2.0], [20])
        cols["work"] = np.asarray([999], dtype=np.int64)  # > a*steps
        with pytest.raises(ValueError, match=r"work outside"):
            log.append_quantum(start_step=0, repeat=1, **cols)


# ---------------------------------------------------------------------------
# Whole-run three-way identity
# ---------------------------------------------------------------------------


class TestSuperstepIdentity:
    def test_rejects_unknown_mode(self):
        spec = JobSpec(job=PhasedJob([(2, 4)]), feedback=AControl())
        with pytest.raises(ValueError, match="superstep"):
            simulate_job_set(
                [spec], DynamicEquiPartitioning(), 8, superstep="always"
            )

    def test_env_var_overrides_default_mode(self, monkeypatch):
        from repro.sim.multi import SUPERSTEP_ENV_VAR

        spec = JobSpec(job=PhasedJob([(2, 4)]), feedback=AControl())
        monkeypatch.setenv(SUPERSTEP_ENV_VAR, "always")
        with pytest.raises(ValueError, match="superstep"):
            simulate_job_set([spec], DynamicEquiPartitioning(), 8)
        monkeypatch.setenv(SUPERSTEP_ENV_VAR, "off")
        off = simulate_job_set([spec], DynamicEquiPartitioning(), 8)
        monkeypatch.delenv(SUPERSTEP_ENV_VAR)
        auto = simulate_job_set([spec], DynamicEquiPartitioning(), 8)
        assert_results_identical(off, auto)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_sets_three_way(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        jobs = [random_phased_job(rng) for _ in range(n)]
        rels = rng.integers(0, 60, n).tolist()

        def make():
            policy = AControl(0.2)
            return [
                JobSpec(job=j, feedback=policy, release_time=int(r), job_id=i)
                for i, (j, r) in enumerate(zip(jobs, rels))
            ]

        run_three_way(make, 32, quantum_length=int(rng.integers(3, 12)))

    @pytest.mark.parametrize("seed", range(4))
    def test_stable_workload_engages_and_matches(self, seed):
        """On a satisfied, long-phase workload supersteps must actually
        fire — far fewer allocator calls than quanta — and still match."""
        rng = np.random.default_rng(100 + seed)
        policy = AControl(0.2)
        jobs = [
            PhasedJob([(int(rng.integers(4, 10)), 40_000)])
            for _ in range(4)
        ]

        def make():
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        counting = CountingDEQ()
        fast = simulate_job_set(
            make(), counting, 128, quantum_length=50, superstep="auto"
        )
        assert counting.batch_calls * 4 < fast.quanta_elapsed
        slow = simulate_job_set(
            make(), DynamicEquiPartitioning(), 128, quantum_length=50,
            superstep="off",
        )
        assert_results_identical(slow, fast)

    def test_mixed_policies_and_fixed_request(self):
        jobs = [
            PhasedJob([(6, 5000)]),
            PhasedJob([(4, 5000)]),
            PhasedJob([(8, 5000)]),
        ]

        def make():
            return [
                JobSpec(job=jobs[0], feedback=AControl(0.2)),
                JobSpec(job=jobs[1], feedback=AGreedy(2.0, 0.8)),
                JobSpec(job=jobs[2], feedback=FixedRequest(8.0)),
            ]

        run_three_way(make, 64, quantum_length=20)

    def test_overhead_three_way(self):
        jobs = [PhasedJob([(5, 3000)]), PhasedJob([(3, 2000)])]

        def make():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        run_three_way(
            make,
            32,
            quantum_length=25,
            overhead=ReallocationOverhead(fixed=2.0, per_processor=0.5),
        )

    def test_strict_three_way(self):
        jobs = [PhasedJob([(4, 2000)]), PhasedJob([(7, 2500)])]

        def make():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        run_three_way(make, 32, quantum_length=20, strict=True)

    def test_roundrobin_three_way(self):
        jobs = [PhasedJob([(4, 4000)]) for _ in range(4)]

        def make():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        run_three_way(make, 64, allocator=RoundRobinAllocator,
                      quantum_length=25)

    def test_arrival_on_event_boundary_inside_would_be_superstep(self):
        """A release landing mid-way through what would otherwise be a long
        superstep must cap the fast-forward at the preceding boundary."""
        late = PhasedJob([(3, 500)])
        steady = [PhasedJob([(6, 50_000)]) for _ in range(3)]

        def make():
            policy = AControl(0.2)
            specs = [JobSpec(job=j, feedback=policy, job_id=i)
                     for i, j in enumerate(steady)]
            specs.append(
                JobSpec(job=late, feedback=policy, release_time=7_777,
                        job_id=99)
            )
            return specs

        fast = run_three_way(make, 128, quantum_length=50)
        # the late job really was admitted at the boundary after release
        assert fast.traces[99].records[0].start_step == 7_800

    def test_max_quanta_cap_respected(self):
        policy = AControl(0.2)
        jobs = [PhasedJob([(6, 100_000)])]

        def make():
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        with pytest.raises(RuntimeError, match="did not finish"):
            simulate_job_set(
                make(), DynamicEquiPartitioning(), 32, quantum_length=10,
                max_quanta=500, superstep="auto",
            )

    def test_columnar_traces_lazy_until_records_read(self):
        policy = AControl(0.2)
        specs = [
            JobSpec(job=PhasedJob([(4, 3000)]), feedback=policy, job_id=0)
        ]
        res = simulate_job_set(
            specs, DynamicEquiPartitioning(), 16, quantum_length=20
        )
        trace = res.traces[0]
        assert trace.has_columns
        # aggregates answer from columns without materializing
        work = trace.total_work
        span = trace.total_span
        assert trace.has_columns
        recs = trace.records  # materializes
        assert not trace.has_columns
        assert sum(r.work for r in recs) == work
        total = 0.0
        for r in recs:
            total += r.span
        assert total == span
