"""Whole-system fuzzing: random jobs, random availability, both policies —
the simulator's global invariants must hold for every combination."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.availability import TraceAvailability
from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.core.abg import AControl
from repro.core.agreedy import AGreedy
from repro.core.overhead import ReallocationOverhead
from repro.engine.phased import PhasedJob
from repro.sim.jobs import JobSpec
from repro.sim.multi import simulate_job_set
from repro.sim.single import simulate_job

phases_strategy = st.lists(
    st.tuples(st.integers(1, 10), st.integers(1, 40)),
    min_size=1,
    max_size=6,
)

availability_strategy = st.lists(st.integers(1, 24), min_size=1, max_size=12)

policy_strategy = st.sampled_from(
    [
        AControl(0.0),
        AControl(0.2),
        AControl(0.5),
        AGreedy(),
        AGreedy(responsiveness=3.0, utilization_threshold=0.5),
    ]
)


class TestSingleJobInvariants:
    @settings(max_examples=150, deadline=None)
    @given(phases_strategy, availability_strategy, policy_strategy, st.integers(5, 60))
    def test_trace_invariants(self, phases, avail, policy, L):
        job = PhasedJob(phases)
        trace = simulate_job(
            job, policy, TraceAvailability(avail), quantum_length=L
        )
        # conservation
        assert trace.total_work == job.work
        assert trace.total_span == pytest.approx(job.span)
        # structural invariants on every quantum
        for rec in trace:
            assert 1 <= rec.allotment <= rec.available
            assert rec.allotment <= rec.request_int
            assert rec.waste >= 0
            assert 0 <= rec.span <= rec.steps + 1e-9  # breadth-first execution
        # only the last quantum may be short
        for rec in trace.records[:-1]:
            assert rec.is_full
        # running time at least the greedy optimum
        assert trace.running_time >= job.span or trace.running_time >= job.work / max(avail)
        # transition factor well-defined
        assert trace.measured_transition_factor() >= 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        phases_strategy,
        policy_strategy,
        st.integers(5, 40),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_overhead_invariants(self, phases, policy, L, cost):
        job = PhasedJob(phases)
        trace = simulate_job(
            job,
            policy,
            16,
            quantum_length=L,
            overhead=ReallocationOverhead(per_processor=cost),
        )
        assert trace.total_work == job.work
        baseline = simulate_job(job, policy, 16, quantum_length=L)
        assert trace.running_time >= baseline.running_time


class TestJobSetInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(phases_strategy, min_size=1, max_size=5),
        policy_strategy,
        st.integers(8, 32),
        st.lists(st.integers(0, 300), min_size=5, max_size=5),
    )
    def test_multi_invariants(self, jobs_phases, policy, processors, releases):
        jobs = [PhasedJob(p) for p in jobs_phases]
        specs = [
            JobSpec(job=j, feedback=policy, release_time=releases[i])
            for i, j in enumerate(jobs)
        ]
        result = simulate_job_set(
            specs, DynamicEquiPartitioning(), processors, quantum_length=20
        )
        assert set(result.traces) == set(range(len(jobs)))
        for i, job in enumerate(jobs):
            trace = result.traces[i]
            assert trace.total_work == job.work
            # a job cannot finish before its release plus its span
            assert trace.completion_time >= releases[i] + job.span
        # makespan dominates every completion
        assert result.makespan == max(t.completion_time for t in result.traces.values())
        # machine-wide conservation: per-quantum allotments never exceed P
        by_start: dict[int, int] = {}
        for trace in result.traces.values():
            for rec in trace:
                by_start[rec.start_step] = by_start.get(rec.start_step, 0) + rec.allotment
        assert all(total <= processors for total in by_start.values())
