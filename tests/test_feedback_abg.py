"""Unit tests for A-Control (ABG's feedback law)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.abg import AControl

from conftest import make_record


class TestConstruction:
    def test_default_rate(self):
        assert AControl().convergence_rate == 0.2

    def test_rate_bounds(self):
        AControl(0.0)
        AControl(0.999)
        with pytest.raises(ValueError):
            AControl(1.0)
        with pytest.raises(ValueError):
            AControl(-0.1)

    def test_name_contains_rate(self):
        assert "0.3" in AControl(0.3).name


class TestGain:
    def test_theorem1_gain(self):
        assert AControl(0.2).gain(10.0) == pytest.approx(8.0)

    def test_zero_rate_full_gain(self):
        assert AControl(0.0).gain(7.0) == pytest.approx(7.0)


class TestRequestLaw:
    def test_first_request_is_one(self):
        assert AControl().first_request() == 1.0

    def test_equation3(self):
        """d(q) = r*d(q-1) + (1-r)*A(q-1)."""
        policy = AControl(0.2)
        prev = make_record(request=4.0, work=4000, span=400.0)  # A = 10
        assert policy.next_request(prev) == pytest.approx(0.2 * 4.0 + 0.8 * 10.0)

    def test_zero_rate_one_step_convergence(self):
        """r = 0: d(q) = A(q-1)."""
        policy = AControl(0.0)
        prev = make_record(request=3.0, work=3000, span=250.0)  # A = 12
        assert policy.next_request(prev) == pytest.approx(12.0)

    def test_empty_quantum_holds_request(self):
        policy = AControl(0.2)
        prev = make_record(request=6.0, request_int=6, allotment=6, work=0, span=0.0, steps=0)
        assert policy.next_request(prev) == 6.0

    def test_request_between_previous_and_parallelism(self):
        """The new request is a convex combination of d and A."""
        policy = AControl(0.5)
        prev = make_record(request=2.0, work=2000, span=100.0)  # A = 20
        nxt = policy.next_request(prev)
        assert 2.0 < nxt < 20.0
        assert nxt == pytest.approx(11.0)

    @given(
        st.floats(min_value=0.0, max_value=0.99),
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=1.0, max_value=500.0),
    )
    def test_convex_combination_property(self, r, d, a):
        policy = AControl(r)
        prev = make_record(
            request=d,
            request_int=1000,
            allotment=1000,
            available=1000,
            work=int(a * 100),
            span=100.0,
            steps=1000,
        )
        nxt = policy.next_request(prev)
        lo, hi = min(d, prev.avg_parallelism), max(d, prev.avg_parallelism)
        assert lo - 1e-9 <= nxt <= hi + 1e-9

    def test_fixed_point_at_parallelism(self):
        """Once d == A the request never moves (zero steady-state error)."""
        policy = AControl(0.3)
        prev = make_record(request=10.0, work=10000, span=1000.0, allotment=10)
        assert policy.next_request(prev) == pytest.approx(10.0)

    def test_geometric_convergence(self):
        """Error shrinks by exactly r each quantum for constant A."""
        import math

        policy = AControl(0.25)
        a_target = 16.0
        d = 1.0
        errors = []
        for q in range(1, 8):
            errors.append(abs(d - a_target))
            a_int = max(1, math.ceil(d - 1e-9))
            work = a_int * 1000  # fully-utilized quantum
            prev = make_record(
                request=d,
                request_int=a_int,
                allotment=a_int,
                work=work,
                span=work / a_target,  # measured parallelism exactly 16
            )
            d = policy.next_request(prev)
        for e1, e2 in zip(errors, errors[1:]):
            assert e2 == pytest.approx(0.25 * e1)

    def test_repr(self):
        assert "0.2" in repr(AControl(0.2))
