"""Cross-validation of the multi-job batched quantum kernel against the
serial per-job loop.

``simulate_job_set(..., batch="auto")`` packs every counts-determined active
job into the :class:`repro.sim.multi_batched.MultiBatchKernel` and executes
whole machine-wide quanta as array arithmetic; ``batch="off"`` is the
original per-job loop.  The kernel's claim is *bit-identical* results —
every trace, every :class:`QuantumRecord` field, the finished-trace dict
order, the feedback recurrences — on every workload, including mid-run
releases, mid-quantum completions, reallocation overhead, strict mode,
mixed batchable/fallback sets, and the permuted-chain dags PR 5 lifted into
eligibility.  These tests run both backends over randomized job sets and
compare everything, then check the figure-6 driver end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.allocators.roundrobin import RoundRobinAllocator
from repro.core.abg import AControl
from repro.core.agreedy import AGreedy
from repro.core.overhead import ReallocationOverhead
from repro.core.reference import FixedRequest
from repro.dag import builders
from repro.dag.graph import Dag
from repro.engine.phased import PhasedJob
from repro.sim.jobs import JobSpec
from repro.sim.multi import simulate_job_set
from repro.sim.multi_batched import segment_profile


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def permuted_chain_dag(width: int, levels: int, seed: int) -> Dag:
    """A constant-width dag whose inter-level parent maps are random
    *non-identity* bijections: level-major (counts-determined) but not
    rank-aligned — the structure PR 5 lifted into kernel eligibility."""
    assert width >= 2
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for lvl in range(1, levels):
        pi = rng.permutation(width)
        if np.array_equal(pi, np.arange(width)):
            pi = np.roll(pi, 1)
        prev, cur = (lvl - 1) * width, lvl * width
        edges.extend((int(prev + pi[j]), int(cur + j)) for j in range(width))
    return Dag(width * levels, edges)


def assert_results_identical(a, b) -> None:
    """Byte-for-byte equality of two MultiJobResult objects: same trace dict
    order, same records (every QuantumRecord field, floats included), same
    bookkeeping."""
    assert list(a.traces) == list(b.traces)  # insertion order, not just keys
    assert a.processors == b.processors
    assert a.quantum_length == b.quantum_length
    assert a.quanta_elapsed == b.quanta_elapsed
    assert a.released == b.released
    for jid in a.traces:
        ta, tb = a.traces[jid], b.traces[jid]
        assert (ta.release_time, ta.job_id, ta.quantum_length) == (
            tb.release_time,
            tb.job_id,
            tb.quantum_length,
        )
        assert ta.records == tb.records


def run_both(make_specs, processors, *, allocator=DynamicEquiPartitioning, **kwargs):
    """Run one job set through both backends (fresh specs/policies/allocator
    per run — DEQ's rotation counter is stateful) and assert identity."""
    off = simulate_job_set(
        make_specs(), allocator(), processors, batch="off", **kwargs
    )
    auto = simulate_job_set(
        make_specs(), allocator(), processors, batch="auto", **kwargs
    )
    assert_results_identical(off, auto)
    return auto


def random_phased_job(rng: np.random.Generator) -> PhasedJob:
    phases: list[tuple[int, int]] = []
    for _ in range(int(rng.integers(1, 4))):
        phases.append((1, int(rng.integers(1, 6))))
        phases.append((int(rng.integers(2, 10)), int(rng.integers(1, 6))))
    return PhasedJob(phases)


# ---------------------------------------------------------------------------
# segment_profile: which jobs the kernel may take
# ---------------------------------------------------------------------------


class TestSegmentProfile:
    def test_phased_job_always_profiled(self):
        job = PhasedJob([(1, 3), (5, 2)])
        spec = JobSpec(job=job, feedback=AControl())
        assert segment_profile(spec, strict=False) == ((1, 3), (5, 2))
        # strict mode keeps phased jobs on the (closed-form) phased engine
        assert segment_profile(spec, strict=True) == ((1, 3), (5, 2))

    def test_auto_level_major_dag_profiled(self):
        dag = builders.fork_join_from_phases([(1, 2), (4, 3)])
        spec = JobSpec(job=dag, feedback=AControl())
        assert segment_profile(spec, strict=False) == ((1, 2), (4, 3))

    def test_auto_strict_dag_not_profiled(self):
        """strict auto dags stay on the reference engine (per-decision
        checking), so the kernel must not take them."""
        dag = builders.fork_join_from_phases([(1, 2), (4, 3)])
        spec = JobSpec(job=dag, feedback=AControl())
        assert segment_profile(spec, strict=True) is None

    def test_reference_engine_not_profiled(self):
        dag = builders.fork_join_from_phases([(1, 2), (4, 3)])
        spec = JobSpec(job=dag, feedback=AControl(), engine="reference")
        assert segment_profile(spec, strict=False) is None

    def test_non_breadth_first_not_profiled(self):
        dag = builders.fork_join_from_phases([(1, 2), (4, 3)])
        spec = JobSpec(job=dag, feedback=AControl(), discipline="fifo")
        assert segment_profile(spec, strict=False) is None

    def test_non_level_major_not_profiled(self):
        rng = np.random.default_rng(11)
        layered = builders.random_layered(rng, num_levels=6, max_width=5)
        auto = JobSpec(job=layered, feedback=AControl())
        forced = JobSpec(job=layered, feedback=AControl(), engine="batched")
        assert segment_profile(auto, strict=False) is None
        # engine="batched" on an unsupported dag defers to the fallback
        # path, which raises the canonical error at admission
        assert segment_profile(forced, strict=False) is None

    def test_engine_batched_level_major_profiled(self):
        dag = builders.fork_join_from_phases([(3, 4)])
        spec = JobSpec(job=dag, feedback=AControl(), engine="batched")
        assert segment_profile(spec, strict=False) == ((3, 4),)

    def test_permuted_chain_dag_profiled(self):
        """The PR 5 lift: permuted-parent constant-width levels stay
        counts-determined, so the kernel takes them under engine='auto'."""
        dag = permuted_chain_dag(4, 5, seed=3)
        assert dag.structure.level_major and not dag.structure.rank_aligned
        spec = JobSpec(job=dag, feedback=AControl())
        assert segment_profile(spec, strict=False) == ((4, 5),)


class TestBatchArgument:
    def test_unknown_batch_mode_rejected(self):
        specs = [JobSpec(job=PhasedJob([(1, 1)]), feedback=AControl())]
        with pytest.raises(ValueError, match="unknown batch mode"):
            simulate_job_set(
                specs, DynamicEquiPartitioning(), 8, batch="always"
            )


# ---------------------------------------------------------------------------
# Bit-identity of batch="auto" vs batch="off"
# ---------------------------------------------------------------------------


class TestBitIdentity:
    def test_random_phased_sets(self):
        for seed in range(8):
            rng = np.random.default_rng(1000 + seed)
            n = int(rng.integers(2, 9))
            jobs = [random_phased_job(rng) for _ in range(n)]
            releases = [int(rng.integers(0, 60)) for _ in range(n)]
            ql = int(rng.integers(5, 40))

            def make_specs():
                policy = AControl(0.2)
                return [
                    JobSpec(job=j, feedback=policy, release_time=r)
                    for j, r in zip(jobs, releases)
                ]

            run_both(make_specs, 32, quantum_length=ql)

    def test_wide_set_exercises_vector_loop(self):
        """More than _VECTOR_MIN live slots so the masked vector iterations
        (not just the scalar tail) execute."""
        rng = np.random.default_rng(42)
        jobs = [random_phased_job(rng) for _ in range(20)]

        def make_specs():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        run_both(make_specs, 64, quantum_length=25)

    def test_agreedy_policy(self):
        rng = np.random.default_rng(5)
        jobs = [random_phased_job(rng) for _ in range(6)]

        def make_specs():
            policy = AGreedy()
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        run_both(make_specs, 32, quantum_length=20)

    def test_mid_quantum_completions(self):
        """Jobs far shorter than the quantum: every job finishes mid-quantum
        and its final record carries steps < L."""
        jobs = [PhasedJob([(1, 2), (3, 2)]), PhasedJob([(2, 3)]), PhasedJob([(1, 1)])]

        def make_specs():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        result = run_both(make_specs, 16, quantum_length=500)
        for trace in result.traces.values():
            assert trace.records[-1].steps < 500

    def test_release_gaps_and_boundary_joins(self):
        jobs = [PhasedJob([(1, 10)]), PhasedJob([(4, 30)]), PhasedJob([(2, 15)])]
        releases = [0, 120, 50]  # includes an idle gap before job 1 joins

        def make_specs():
            policy = AControl(0.2)
            return [
                JobSpec(job=j, feedback=policy, release_time=r)
                for j, r in zip(jobs, releases)
            ]

        run_both(make_specs, 8, quantum_length=50)

    def test_reallocation_overhead(self):
        rng = np.random.default_rng(9)
        jobs = [random_phased_job(rng) for _ in range(5)]
        overhead = ReallocationOverhead(per_processor=0.5, fixed=3)

        def make_specs():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        result = run_both(make_specs, 16, quantum_length=15, overhead=overhead)
        # overhead actually charged somewhere (allotments do change under DEQ)
        assert any(
            r.work < r.allotment * r.steps
            for t in result.traces.values()
            for r in t.records
        )

    def test_strict_mode(self):
        rng = np.random.default_rng(13)
        jobs = [random_phased_job(rng) for _ in range(5)]
        dags = [builders.fork_join_from_phases([(1, 2), (5, 3)])]

        def make_specs():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs + dags]

        run_both(make_specs, 24, quantum_length=20, strict=True)

    def test_mixed_eligible_and_fallback(self):
        """Kernel slots and per-job fallback executors interleaved in the
        same quanta: phased jobs + auto dags (batched) alongside reference
        dags and non-level-major dags (fallback)."""
        rng = np.random.default_rng(21)
        phased = [random_phased_job(rng) for _ in range(3)]
        fj = builders.fork_join_from_phases([(1, 2), (6, 3), (1, 1)])
        layered = builders.random_layered(rng, num_levels=5, max_width=4)
        perm = permuted_chain_dag(3, 4, seed=8)

        def make_specs():
            policy = AControl(0.2)
            specs = [JobSpec(job=j, feedback=policy) for j in phased]
            specs.append(JobSpec(job=fj, feedback=policy, engine="reference"))
            specs.append(JobSpec(job=layered, feedback=policy))  # auto -> reference
            specs.append(JobSpec(job=fj, feedback=policy))  # auto -> kernel
            specs.append(JobSpec(job=perm, feedback=policy))  # lifted -> kernel
            return specs

        run_both(make_specs, 32, quantum_length=25)

    def test_permuted_chain_only_set(self):
        def make_specs():
            policy = AControl(0.2)
            return [
                JobSpec(job=permuted_chain_dag(w, k, seed=w * 10 + k), feedback=policy)
                for w, k in [(2, 6), (4, 3), (5, 5), (3, 8)]
            ]

        run_both(make_specs, 16, quantum_length=7)

    def test_mixed_policy_instances(self):
        """Per-job policy objects (no shared instance) exercise the grouped
        feedback path; FixedRequest has no batch form, exercising the
        per-group scalar fallback."""
        rng = np.random.default_rng(33)
        jobs = [random_phased_job(rng) for _ in range(6)]

        def make_specs():
            policies = [
                AControl(0.2),
                AControl(0.5),
                AGreedy(),
                AGreedy(4.0, 0.6),
                FixedRequest(3),
                AControl(0.2),
            ]
            return [JobSpec(job=j, feedback=p) for j, p in zip(jobs, policies)]

        run_both(make_specs, 32, quantum_length=20)

    def test_uniform_policy_without_batch_form(self):
        """All slots share one FixedRequest instance: the uniform fast path
        gets None from next_request_batch and falls back to per-record
        scalar feedback."""
        jobs = [PhasedJob([(2, 10), (1, 5)]) for _ in range(4)]

        def make_specs():
            policy = FixedRequest(2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        run_both(make_specs, 16, quantum_length=8)

    def test_roundrobin_allocator_dict_path(self):
        """RoundRobinAllocator has no allocate_batch: the kernel run takes
        the mapping allocation path and must still be identical."""
        rng = np.random.default_rng(55)
        jobs = [random_phased_job(rng) for _ in range(5)]

        def make_specs():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        run_both(make_specs, 16, allocator=RoundRobinAllocator, quantum_length=15)

    def test_all_fallback_set(self):
        """batch='auto' with zero batchable jobs degenerates to the serial
        loop exactly."""
        rng = np.random.default_rng(77)
        layered = [
            builders.random_layered(rng, num_levels=4, max_width=4)
            for _ in range(3)
        ]

        def make_specs():
            policy = AControl(0.2)
            return [JobSpec(job=d, feedback=policy) for d in layered]

        run_both(make_specs, 16, quantum_length=12)

    def test_single_step_quanta(self):
        """quantum_length=1 hits every chunk/regime boundary one machine
        step at a time."""
        jobs = [PhasedJob([(1, 3), (4, 2)]), PhasedJob([(3, 4)])]

        def make_specs():
            policy = AControl(0.2)
            return [JobSpec(job=j, feedback=policy) for j in jobs]

        run_both(make_specs, 8, quantum_length=1)


# ---------------------------------------------------------------------------
# End-to-end: the figure-6 driver is invariant under the backend switch
# ---------------------------------------------------------------------------


class TestFig6Driver:
    def test_fig6_results_identical_with_batching_off(self, monkeypatch):
        from repro.experiments import fig6 as fig6_mod

        kwargs = dict(
            num_sets=3,
            load_range=(0.3, 2.0),
            processors=32,
            quantum_length=200,
            workers=1,
            seed=424242,
        )
        res_auto = fig6_mod.run_fig6(**kwargs)

        orig = fig6_mod.simulate_job_set

        def forced_off(*args, **kw):
            kw["batch"] = "off"
            return orig(*args, **kw)

        monkeypatch.setattr(fig6_mod, "simulate_job_set", forced_off)
        res_off = fig6_mod.run_fig6(**kwargs)
        # frozen dataclasses: field-for-field (float-exact) equality
        assert res_auto == res_off
