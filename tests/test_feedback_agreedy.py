"""Unit tests for the A-Greedy baseline feedback."""

from __future__ import annotations

import pytest

from repro.core.agreedy import AGreedy

from conftest import make_record


def record(d, a, work, *, steps=1000):
    return make_record(
        request=float(d),
        request_int=int(d),
        allotment=a,
        work=work,
        span=min(float(steps), float(work)) if work else 0.0,
        steps=steps,
    )


class TestConstruction:
    def test_defaults(self):
        p = AGreedy()
        assert p.responsiveness == 2.0
        assert p.utilization_threshold == 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            AGreedy(responsiveness=1.0)
        with pytest.raises(ValueError):
            AGreedy(utilization_threshold=0.0)
        with pytest.raises(ValueError):
            AGreedy(utilization_threshold=1.5)


class TestClassification:
    def test_inefficient(self):
        p = AGreedy()
        # used 50% of 8*1000 cycles -> inefficient
        rec = record(8, 8, 4000)
        assert p.classify(rec) == "inefficient"

    def test_efficient_satisfied(self):
        p = AGreedy()
        rec = record(8, 8, 8000)
        assert p.classify(rec) == "efficient-satisfied"

    def test_efficient_deprived(self):
        p = AGreedy()
        rec = record(8, 4, 4000)  # full use of the 4 granted
        assert p.classify(rec) == "efficient-deprived"

    def test_threshold_boundary_is_efficient(self):
        p = AGreedy(utilization_threshold=0.8)
        rec = record(10, 10, 8000)  # exactly 80%
        assert p.classify(rec) == "efficient-satisfied"


class TestRequestRules:
    def test_first_request(self):
        assert AGreedy().first_request() == 1.0

    def test_inefficient_halves(self):
        p = AGreedy()
        assert p.next_request(record(8, 8, 4000)) == pytest.approx(4.0)

    def test_efficient_satisfied_doubles(self):
        p = AGreedy()
        assert p.next_request(record(8, 8, 8000)) == pytest.approx(16.0)

    def test_efficient_deprived_holds(self):
        p = AGreedy()
        assert p.next_request(record(8, 4, 4000)) == pytest.approx(8.0)

    def test_floor_at_one(self):
        p = AGreedy()
        assert p.next_request(record(1, 1, 100)) == 1.0

    def test_custom_responsiveness(self):
        p = AGreedy(responsiveness=3.0)
        assert p.next_request(record(9, 9, 9000)) == pytest.approx(27.0)
        assert p.next_request(record(9, 9, 1000)) == pytest.approx(3.0)


class TestOscillation:
    def test_never_settles_on_constant_parallelism(self):
        """The instability of Figures 1/4(b): with constant parallelism A=10
        the request cycles 8 <-> 16 forever once it reaches the band."""
        p = AGreedy()
        d = 1.0
        seen = []
        for _ in range(20):
            a = int(d)
            work = min(a, 10) * 1000  # job exposes at most 10-way parallelism
            rec = record(a, a, work)
            d = p.next_request(rec)
            seen.append(d)
        tail = seen[-8:]
        assert set(tail) == {8.0, 16.0}

    def test_geometric_rampup(self):
        p = AGreedy()
        d = 1.0
        ramp = [d]
        for _ in range(4):
            rec = record(int(d), int(d), int(d) * 1000)
            d = p.next_request(rec)
            ramp.append(d)
        assert ramp == [1.0, 2.0, 4.0, 8.0, 16.0]
