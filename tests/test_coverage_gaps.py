"""Final coverage pass: remaining public behaviors not exercised elsewhere."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.analysis.characteristics import (
    job_structure_characteristics,
    trace_characteristics,
)
from repro.core.abg import AControl
from repro.engine.phased import PhasedJob
from repro.experiments.common import ExperimentTable, format_table
from repro.sim.single import simulate_job


class TestExperimentTable:
    def test_to_records(self):
        t = ExperimentTable(title="t", columns=("a",), rows=({"a": 1}, {"a": 2}))
        assert t.to_records() == [{"a": 1}, {"a": 2}]

    def test_cell_with_dataclass(self):
        from dataclasses import dataclass

        @dataclass
        class Row:
            a: int

        t = ExperimentTable(title="t", columns=("a",), rows=(Row(5),))
        assert t.cell(t.rows[0], "a") == 5

    def test_empty_table_renders_header(self):
        t = ExperimentTable(title="empty", columns=("x", "y"), rows=())
        text = format_table(t)
        assert "x" in text and "y" in text


class TestDEQOrderIndependence:
    @settings(max_examples=100, deadline=None)
    @given(
        st.dictionaries(st.integers(0, 30), st.integers(1, 50), min_size=2, max_size=8),
        st.integers(10, 100),
    )
    def test_allocation_independent_of_insertion_order(self, requests, total):
        """DEQ must depend only on (job id, request), not on dict ordering."""
        a1 = DynamicEquiPartitioning().allocate(requests, total)
        reversed_requests = dict(reversed(list(requests.items())))
        a2 = DynamicEquiPartitioning().allocate(reversed_requests, total)
        assert a1 == a2


class TestCharacteristicsEdgeCases:
    def test_single_quantum_trace(self):
        job = PhasedJob([(4, 10)])
        trace = simulate_job(job, AControl(0.2), 16, quantum_length=100)
        c = trace_characteristics(trace)
        assert c.change_frequency == 0.0
        assert c.mean > 0

    def test_nonpositive_profile_rejected(self):
        from repro.analysis.characteristics import _characterize

        with pytest.raises(ValueError):
            _characterize(np.array([]))
        with pytest.raises(ValueError):
            _characterize(np.array([1.0, 0.0]))

    def test_structure_vs_trace_consistency(self):
        """On an unconstrained run the measured transition factor cannot
        exceed the structural one by more than quantum-blending allows."""
        job = PhasedJob([(1, 2500), (10, 2500)])
        structural = job_structure_characteristics(job)
        trace = simulate_job(job, AControl(0.2), 64, quantum_length=1000)
        measured = trace_characteristics(trace)
        assert measured.transition_factor <= structural.transition_factor + 1e-9


class TestCliRemainingCommands:
    @pytest.mark.parametrize(
        "command",
        ["ablation-rate", "ablation-quantum", "ablation-allocator", "overhead",
         "controllers", "trim", "characteristics"],
    )
    def test_command_produces_table(self, command, capsys):
        from repro.cli import main

        assert main([command]) == 0
        out = capsys.readouterr().out
        assert "—" in out or "-" in out
        assert len(out.splitlines()) > 3


class TestTraceJsonStability:
    def test_serialized_trace_is_stable_across_runs(self, tmp_path):
        """Same seed + same job => byte-identical JSON artifacts (the
        determinism guarantee users rely on for archived results)."""
        from repro.io.traces import save_trace

        job = PhasedJob([(1, 60), (7, 80)])
        p1 = save_trace(
            simulate_job(job, AControl(0.2), 16, quantum_length=25), tmp_path / "a.json"
        )
        p2 = save_trace(
            simulate_job(job, AControl(0.2), 16, quantum_length=25), tmp_path / "b.json"
        )
        assert p1.read_text() == p2.read_text()


class TestStealStatsAccessors:
    def test_zero_attempt_rate(self):
        from repro.stealing.executor import StealStats

        assert StealStats().steal_success_rate == 0.0

    def test_rate_math(self):
        from repro.stealing.executor import StealStats

        s = StealStats(steal_attempts=10, successful_steals=3)
        assert s.steal_success_rate == pytest.approx(0.3)
