"""Tests for the extension modules: arrivals, characteristics, bootstrap
statistics, timelines, and their experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.characteristics import (
    job_structure_characteristics,
    trace_characteristics,
)
from repro.core.abg import AControl
from repro.engine.phased import PhasedJob
from repro.experiments import run_arrivals, run_characteristics_study
from repro.report.timeline import allotment_strip, timeline
from repro.sim.single import simulate_job
from repro.sim.stats import bootstrap_ci, ratio_ci
from repro.workloads.arrivals import (
    poisson_releases,
    staggered_releases,
    trace_releases,
    uniform_releases,
)


class TestArrivalGenerators:
    def test_poisson_first_at_zero_sorted(self, rng):
        times = poisson_releases(rng, 20, 100.0)
        assert times[0] == 0
        assert times == sorted(times)
        assert len(times) == 20

    def test_poisson_mean_roughly_matches(self):
        rng = np.random.default_rng(0)
        times = poisson_releases(rng, 2000, 50.0)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(50.0, rel=0.15)

    def test_uniform_within_horizon(self, rng):
        times = uniform_releases(rng, 10, 500)
        assert times[0] == 0
        assert all(0 <= t <= 500 for t in times)
        assert times == sorted(times)

    def test_staggered(self):
        assert staggered_releases(4, 10) == [0, 10, 20, 30]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_releases(rng, 0, 10.0)
        with pytest.raises(ValueError):
            poisson_releases(rng, 2, 0.0)
        with pytest.raises(ValueError):
            uniform_releases(rng, 0, 10)
        with pytest.raises(ValueError):
            staggered_releases(2, -1)

    def test_poisson_deterministic_under_fixed_seed(self):
        a = poisson_releases(np.random.default_rng(1234), 50, 75.0)
        b = poisson_releases(np.random.default_rng(1234), 50, 75.0)
        assert a == b
        assert a != poisson_releases(np.random.default_rng(4321), 50, 75.0)

    def test_uniform_deterministic_under_fixed_seed(self):
        a = uniform_releases(np.random.default_rng(7), 30, 1000)
        b = uniform_releases(np.random.default_rng(7), 30, 1000)
        assert a == b

    def test_trace_shifts_to_zero_and_rounds(self):
        assert trace_releases([5.0, 7.4, 9.6]) == [0, 2, 5]

    def test_trace_zero_based_passthrough(self):
        assert trace_releases([0, 3, 3, 8]) == [0, 3, 3, 8]

    def test_trace_accepts_numpy_array(self):
        assert trace_releases(np.array([2.0, 4.0, 10.0])) == [0, 2, 8]

    def test_trace_replay_is_deterministic(self):
        trace = [1.5, 2.5, 40.0, 40.0, 99.9]
        assert trace_releases(trace) == trace_releases(trace)

    def test_trace_empty_rejected(self):
        with pytest.raises(ValueError):
            trace_releases([])
        with pytest.raises(ValueError):
            trace_releases(np.zeros(0))

    def test_trace_negative_rejected(self):
        with pytest.raises(ValueError):
            trace_releases([-1.0, 2.0])

    def test_trace_decreasing_rejected(self):
        with pytest.raises(ValueError):
            trace_releases([5.0, 3.0])

    def test_poisson_nonfinite_rate_rejected(self, rng):
        with pytest.raises(ValueError, match="positive finite"):
            poisson_releases(rng, 3, float("nan"))
        with pytest.raises(ValueError, match="positive finite"):
            poisson_releases(rng, 3, float("inf"))
        with pytest.raises(ValueError, match="positive finite"):
            poisson_releases(rng, 3, -1.0)

    def test_trace_nonfinite_entries_named_by_index(self):
        with pytest.raises(ValueError, match=r"trace\[1\] must be finite"):
            trace_releases([0.0, float("nan"), 2.0])
        with pytest.raises(ValueError, match=r"trace\[2\] must be finite"):
            trace_releases([0.0, 1.0, float("inf")])

    def test_trace_negative_named_by_index(self):
        with pytest.raises(ValueError, match=r"trace\[0\] must be non-negative"):
            trace_releases([-1.0, 2.0])

    def test_trace_non_numeric_named_by_index(self):
        with pytest.raises(ValueError, match=r"trace\[1\] must be a number"):
            trace_releases([0.0, "later", 2.0])  # type: ignore[list-item]

    def test_trace_decreasing_names_both_indices(self):
        with pytest.raises(ValueError, match=r"trace\[1\] \(3\) < trace\[0\] \(5\)"):
            trace_releases([5.0, 3.0])

    def test_trace_subzero_rounding_rejected_not_masked(self):
        # -0.4 used to round to 0 and slip through; negatives now fail loudly
        with pytest.raises(ValueError, match=r"trace\[0\] must be non-negative"):
            trace_releases([-0.4, 2.0])

    def test_trace_edge_determinism_at_rounding_boundaries(self):
        trace = [0.5, 1.5, 2.5, 3.5]  # banker's rounding territory
        first = trace_releases(trace)
        assert first == trace_releases(tuple(trace))
        assert first == trace_releases(np.asarray(trace))

    def test_staggered_zero_gap_all_at_release_zero(self):
        assert staggered_releases(3, 0) == [0, 0, 0]


class TestArrivalsExperiment:
    def test_rows_and_theorem5(self):
        rows = run_arrivals(interarrivals=(1000.0, 4000.0), jobs_per_set=4, seed=3)
        assert len(rows) == 2
        for row in rows:
            assert row.abg_makespan_norm >= 1.0 - 1e-9
            assert row.theorem5_holds
            assert row.makespan_ratio > 0.9  # ABG not worse


class TestCharacteristics:
    def test_constant_profile(self):
        job = PhasedJob([(5, 10)])
        c = job_structure_characteristics(job)
        assert c.transition_factor == 5.0  # vs A(0)=1
        assert c.change_frequency == 0.0
        assert c.variance == 0.0
        assert c.mean == 5.0

    def test_alternating_profile(self):
        job = PhasedJob([(1, 2), (9, 2)])
        c = job_structure_characteristics(job)
        assert c.transition_factor == 9.0
        assert c.change_frequency == pytest.approx(1 / 3)
        assert c.coefficient_of_variation > 0.5

    def test_trace_characteristics(self):
        job = PhasedJob([(1, 60), (8, 60)])
        trace = simulate_job(job, AControl(0.2), 32, quantum_length=30)
        c = trace_characteristics(trace)
        assert c.transition_factor > 1.0
        assert c.mean > 1.0

    def test_study_driver_trends(self):
        rows = run_characteristics_study(quantum_length=500)
        by_name = {r.workload: r for r in rows}
        # higher transition factor -> A-Greedy degrades more than ABG
        assert (
            by_name["factor-64"].agreedy_time_norm
            > by_name["factor-4"].agreedy_time_norm
        )
        # more frequent changes hurt both schedulers
        assert by_name["freq-12"].abg_time_norm > by_name["freq-2"].abg_time_norm
        # change frequency is actually varied by the workload
        assert (
            by_name["freq-12"].change_frequency
            > by_name["freq-2"].change_frequency
        )
        # spread matters at fixed change count
        assert (
            by_name["spread-high"].abg_waste_norm
            > by_name["spread-low"].abg_waste_norm
        )


class TestBootstrap:
    def test_point_is_mean(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0], resamples=200)
        assert ci.point == pytest.approx(2.0)
        assert ci.low <= ci.point <= ci.high

    def test_interval_contains_truth_for_large_sample(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(5.0, 1.0, size=400)
        ci = bootstrap_ci(sample, rng=np.random.default_rng(2))
        assert 5.0 in ci
        assert ci.width < 0.5

    def test_singleton_sample(self):
        ci = bootstrap_ci([4.0])
        assert ci.low == ci.high == ci.point == 4.0

    def test_custom_statistic(self):
        ci = bootstrap_ci([1.0, 100.0], statistic=lambda a: float(np.median(a)))
        assert ci.low <= ci.point <= ci.high

    def test_ratio_ci(self):
        ci = ratio_ci([2.0, 4.0, 6.0], [1.0, 2.0, 3.0])
        assert ci.point == pytest.approx(2.0)
        assert ci.width == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)
        with pytest.raises(ValueError):
            ratio_ci([1.0], [0.0])
        with pytest.raises(ValueError):
            ratio_ci([1.0, 2.0], [1.0])

    def test_str(self):
        assert "95%" in str(bootstrap_ci([1.0, 2.0]))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=40))
    def test_interval_brackets_point(self, sample):
        ci = bootstrap_ci(sample, resamples=100)
        assert ci.low <= ci.point + 1e-9
        assert ci.high >= ci.point - 1e-9


class TestTimeline:
    def _trace(self):
        return simulate_job(
            PhasedJob([(1, 60), (8, 60)]), AControl(0.2), 32, quantum_length=30
        )

    def test_allotment_strip_rows(self):
        strip = allotment_strip(self._trace())
        assert "request d(q)" in strip
        assert "allotment a(q)" in strip
        assert "parallelism A(q)" in strip

    def test_timeline_has_bars(self):
        text = timeline(self._trace())
        assert "█" in text
        assert "d(q)" in text

    def test_truncation_notice(self):
        trace = self._trace()
        text = timeline(trace, max_quanta=1)
        assert "more quanta" in text

    def test_empty_trace_rejected(self):
        from repro.core.types import JobTrace

        with pytest.raises(ValueError):
            timeline(JobTrace(quantum_length=10))
        with pytest.raises(ValueError):
            allotment_strip(JobTrace(quantum_length=10))


class TestCliNewCommands:
    def test_arrivals(self, capsys):
        from repro.cli import main

        assert main(["arrivals"]) == 0
        assert "theorem5_holds" in capsys.readouterr().out

    def test_characteristics(self, capsys):
        from repro.cli import main

        assert main(["characteristics"]) == 0
        assert "change_frequency" in capsys.readouterr().out
