"""Tests for the buffer-provenance pass (flow v3): rules ABG341–ABG344.

Golden fixtures per rule (a minimal positive plus the idiomatic negative),
the property-chain root resolution (``self.rem`` → the getter's
``self._arena.rem``), the ABG344-over-ABG343 precedence on buffers that
are both mutated and reallocated, the rule catalogue / ``--explain``
surface, the summary-cache schema bump (stale v2 caches are discarded),
and the seeded-mutation acceptance checks from the issue: reverting the
``set_layout`` snapshot to ``np.asarray`` and dropping the
``append_quantum`` request copy must each surface the expected ABG34x
finding at the *caller* in ``sim/multi.py`` via
``python -m repro lint --deep --format=json``.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.verify.catalogue import CATALOGUE, explain
from repro.verify.findings import RULES
from repro.verify.flow import SummaryCache, analyze_paths

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
DOC_PATH = REPO_SRC.parent.parent / "docs" / "STATIC_ANALYSIS.md"


def provenance_findings_for(tmp_path: Path, source: str):
    """Analyze one synthetic module with only the provenance rules live."""
    target = tmp_path / "m.py"
    target.write_text(textwrap.dedent(source))
    report = analyze_paths(
        [target], root_patterns=(), kernel_patterns=(), parity_contracts=()
    )
    return report.findings


def codes_of(findings) -> list[str]:
    return [f.code for f in findings]


class TestABG341:
    CALLEE = """\
        import numpy as np

        class Log:
            def __init__(self):
                self._layouts = []

            def set_layout(self, jids):
                self._layouts.append(np.{ctor}(jids, dtype=np.int64))

        class Kern:
            def __init__(self, n):
                self.jids = np.zeros(n, dtype=np.int64)

            def admit(self, i, j):
                self.jids[i] = j

        def run(n):
            kern = Kern(n)
            log = Log()
            for i in range(n):
                kern.admit(i, i + 1)
                log.set_layout(kern.jids)
            return log
    """

    def test_alias_into_storing_callee(self, tmp_path):
        findings = provenance_findings_for(
            tmp_path, self.CALLEE.format(ctor="asarray")
        )
        assert codes_of(findings) == ["ABG341"]
        (finding,) = findings
        assert "Kern.jids" in finding.message
        assert "set_layout" in finding.message
        # fires at the caller's call site, not inside the callee
        assert "log.set_layout(kern.jids)" in Path(finding.path).read_text().splitlines()[
            finding.line - 1
        ]

    def test_callee_copy_is_clean(self, tmp_path):
        findings = provenance_findings_for(
            tmp_path, self.CALLEE.format(ctor="array")
        )
        assert codes_of(findings) == []


class TestABG342:
    def test_local_out_aliases_input_root(self, tmp_path):
        findings = provenance_findings_for(
            tmp_path,
            """\
            import numpy as np

            class K:
                def __init__(self, n):
                    self.work = np.zeros(n, dtype=np.float64)
                    self.out = np.zeros(n, dtype=np.float64)

                def bad(self):
                    w = self.work
                    np.add(w, 1.0, out=self.work)

                def good(self):
                    w = self.work
                    np.add(w, 1.0, out=self.out)
            """,
        )
        assert codes_of(findings) == ["ABG342"]
        assert "self.work" in findings[0].message

    def test_call_boundary_same_buffer_both_sides(self, tmp_path):
        findings = provenance_findings_for(
            tmp_path,
            """\
            import numpy as np

            def scale(src, dst):
                np.multiply(src, 2.0, out=dst)

            class K:
                def __init__(self, n):
                    self.work = np.zeros(n, dtype=np.float64)
                    self.frame = np.zeros(n, dtype=np.float64)

                def bad(self):
                    scale(self.work, self.work)

                def good(self):
                    scale(self.work, self.frame)
            """,
        )
        assert codes_of(findings) == ["ABG342"]
        finding = findings[0]
        assert "scale" in finding.message
        assert "'dst'" in finding.message and "'src'" in finding.message


class TestABG343:
    BORROW = """\
        import numpy as np

        class Ring:
            def __init__(self, n):
                self.buf = np.zeros(n, dtype=np.float64)

            def write(self, i, x):
                self.buf[i] = x

            def borrow(self, n):
                self.snap = self.buf[:n]{suffix}
    """

    def test_stored_view_of_mutated_buffer(self, tmp_path):
        findings = provenance_findings_for(tmp_path, self.BORROW.format(suffix=""))
        assert codes_of(findings) == ["ABG343"]
        assert "Ring.buf" in findings[0].message
        assert "self.snap" in findings[0].message

    def test_stored_copy_is_clean(self, tmp_path):
        findings = provenance_findings_for(
            tmp_path, self.BORROW.format(suffix=".copy()")
        )
        assert codes_of(findings) == []

    def test_suppression_with_reason_silences(self, tmp_path):
        findings = provenance_findings_for(
            tmp_path,
            self.BORROW.format(
                suffix="  # abg: allow[ABG343] reason=live window by design"
            ),
        )
        assert "ABG343" not in codes_of(findings)

    def test_property_chain_resolves_to_owning_class(self, tmp_path):
        # self.rem is a property view of self._arena.rem: both the write
        # (through the alias) and the borrow must resolve onto Arena.rem
        findings = provenance_findings_for(
            tmp_path,
            """\
            import numpy as np

            class Arena:
                def __init__(self, n):
                    self.rem = np.zeros(n, dtype=np.int64)

            class Kernel:
                def __init__(self, n):
                    self._arena = Arena(n)
                    self.n = n

                @property
                def rem(self):
                    return self._arena.rem[: self.n]

                def consume(self, x):
                    self.rem[0] = x

                def borrow(self):
                    self.keep = self.rem
            """,
        )
        assert codes_of(findings) == ["ABG343"]
        assert "Arena.rem" in findings[0].message


class TestABG344:
    def test_realloc_takes_precedence_over_mutation(self, tmp_path):
        # slots is both written in place and rebound to a fresh array:
        # the dangling-view hazard (ABG344) subsumes write-after-borrow
        findings = provenance_findings_for(
            tmp_path,
            """\
            import numpy as np

            class Arena:
                def __init__(self):
                    self.slots = np.zeros(8, dtype=np.float64)

                def fill(self, i, x):
                    self.slots[i] = x

                def grow(self):
                    self.slots = np.zeros(self.slots.size * 2, dtype=np.float64)

                def borrow(self, n):
                    self.window = self.slots[:n]
            """,
        )
        assert codes_of(findings) == ["ABG344"]
        assert "Arena.slots" in findings[0].message
        assert "doubling" in findings[0].message

    def test_copy_across_realloc_is_clean(self, tmp_path):
        findings = provenance_findings_for(
            tmp_path,
            """\
            import numpy as np

            class Arena:
                def __init__(self):
                    self.slots = np.zeros(8, dtype=np.float64)

                def grow(self):
                    self.slots = np.zeros(self.slots.size * 2, dtype=np.float64)

                def borrow(self, n):
                    self.window = self.slots[:n].copy()
            """,
        )
        assert codes_of(findings) == []


class TestCacheSchemaBump:
    def test_schema_is_v3(self):
        from repro.verify.flow.cache import _SCHEMA

        assert _SCHEMA == 5

    def test_stale_v2_schema_cache_is_discarded(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f() -> int:\n    return 1\n")
        cache_path = tmp_path / "cache.json"
        analyze_paths([target], root_patterns=(), cache=SummaryCache(cache_path))
        data = json.loads(cache_path.read_text())
        assert data["schema"] == 5

        # a v2 (schema 4) cache file — as left behind by the previous
        # analyzer — must be treated as empty, not served
        data["schema"] = 4
        cache_path.write_text(json.dumps(data))
        report = analyze_paths(
            [target], root_patterns=(), cache=SummaryCache(cache_path)
        )
        assert report.stats["cache_hits"] == 0
        assert report.stats["cache_misses"] == 1

    def test_fresh_cache_round_trips_provenance_facts(self, tmp_path):
        # second run from cache must reproduce the same findings: the
        # points-to facts survive serialization
        target = tmp_path / "m.py"
        target.write_text(
            textwrap.dedent(TestABG343.BORROW.format(suffix=""))
        )
        cache_path = tmp_path / "cache.json"
        first = analyze_paths(
            [target], root_patterns=(), cache=SummaryCache(cache_path)
        )
        second = analyze_paths(
            [target], root_patterns=(), cache=SummaryCache(cache_path)
        )
        assert second.stats["cache_hits"] == 1
        assert codes_of(first.findings) == codes_of(second.findings) == ["ABG343"]


class TestCatalogue:
    def test_registry_covers_every_rule(self):
        assert set(CATALOGUE) == set(RULES)

    def test_descriptions_track_the_rule_registry(self):
        for code, entry in CATALOGUE.items():
            assert entry.description == RULES[code][1]
            assert entry.hazard and entry.example and entry.suppression

    def test_doc_mentions_every_code(self):
        text = DOC_PATH.read_text()
        for code in RULES:
            assert code in text, f"{code} missing from docs/STATIC_ANALYSIS.md"

    def test_explain_formats_an_entry(self):
        text = explain("ABG344")
        assert text is not None
        assert "ABG344" in text and "doubling" in text
        assert "abg: allow[ABG344]" in text

    def test_explain_unknown_code_is_none(self):
        assert explain("ABG999") is None

    def test_explain_cli(self, capsys):
        assert cli_main(["lint", "--explain", "abg341"]) == 0
        out = capsys.readouterr().out
        assert "ABG341" in out and "Suppression guidance" in out

    def test_explain_cli_unknown_code_fails(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["lint", "--explain", "ABG999"])


def _copy_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "repro"
    shutil.copytree(REPO_SRC, tree)
    return tree


def _mutate(tree: Path, rel: str, old: str, new: str) -> Path:
    target = tree / rel
    source = target.read_text()
    assert source.count(old) == 1, f"mutation anchor not unique in {rel}"
    target.write_text(source.replace(old, new))
    return target


def _lint_json(tree: Path, capsys, *extra: str) -> dict:
    argv = ["lint", "--deep", "--no-cache", "--format", "json", *extra, str(tree)]
    try:
        rc = cli_main(argv)
    except SystemExit as exc:
        rc = exc.code
    payload = json.loads(capsys.readouterr().out)
    payload["_rc"] = rc
    return payload


class TestSeededMutations:
    """Acceptance checks: reintroducing either arena-aliasing bug in the
    real tree must surface the expected ABG34x finding at the caller."""

    def test_layout_alias_detected(self, tmp_path, capsys):
        tree = _copy_tree(tmp_path)
        _mutate(
            tree,
            "sim/superstep.py",
            "self._layouts.append(np.array(jids, dtype=np.int64))",
            "self._layouts.append(np.asarray(jids, dtype=np.int64))",
        )
        payload = _lint_json(tree, capsys)
        assert payload["_rc"] == 1
        hits = [
            f
            for f in payload["findings"]
            if f["code"] == "ABG341" and f["path"].endswith("multi.py")
        ]
        assert len(hits) == 1
        assert "jids" in hits[0]["message"]

    def test_quantum_snapshot_alias_detected(self, tmp_path, capsys):
        tree = _copy_tree(tmp_path)
        _mutate(
            tree,
            "sim/superstep.py",
            "request=request.copy(),",
            "request=request,",
        )
        payload = _lint_json(tree, capsys)
        assert payload["_rc"] == 1
        hits = [
            f
            for f in payload["findings"]
            if f["code"] in ("ABG341", "ABG344") and f["path"].endswith("multi.py")
        ]
        assert hits, payload["findings"]
        assert any("append_quantum" in f["message"] for f in hits)
