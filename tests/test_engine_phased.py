"""Unit tests for the closed-form phased (fork-join) engine."""

from __future__ import annotations

import pytest

from repro.engine.phased import Phase, PhasedExecutor, PhasedJob


class TestPhase:
    def test_work(self):
        assert Phase(4, 3).work == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(0, 1)
        with pytest.raises(ValueError):
            Phase(1, 0)


class TestPhasedJob:
    def test_totals(self):
        job = PhasedJob([(1, 5), (4, 3)])
        assert job.work == 5 + 12
        assert job.span == 8
        assert job.average_parallelism == pytest.approx(17 / 8)
        assert job.max_width == 4

    def test_tuple_phases_normalized(self):
        job = PhasedJob([(2, 2)])
        assert isinstance(job.phases[0], Phase)

    def test_profile(self):
        job = PhasedJob([(1, 2), (3, 2)])
        assert job.parallelism_profile() == [1, 1, 3, 3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhasedJob([])

    def test_iteration_and_len(self):
        job = PhasedJob([(1, 1), (2, 2)])
        assert len(job) == 2
        assert [p.width for p in job] == [1, 2]

    def test_equality_and_hash(self):
        a = PhasedJob([(1, 2), (3, 4)])
        b = PhasedJob([(1, 2), (3, 4)])
        assert a == b and hash(a) == hash(b)
        assert a != PhasedJob([(1, 2)])

    def test_executor_factory(self):
        job = PhasedJob([(2, 2)])
        ex = job.executor()
        assert isinstance(ex, PhasedExecutor)
        assert not ex.finished


class TestPhasedExecutorSerial:
    def test_serial_phase_one_per_step(self):
        ex = PhasedExecutor(PhasedJob([(1, 10)]))
        res = ex.execute_quantum(allotment=5, max_steps=4)
        assert res.work == 4
        assert res.span == pytest.approx(4.0)
        assert res.steps == 4
        assert not res.finished

    def test_serial_completion(self):
        ex = PhasedExecutor(PhasedJob([(1, 3)]))
        res = ex.execute_quantum(8, 100)
        assert res.finished
        assert res.steps == 3
        assert res.work == 3


class TestPhasedExecutorParallel:
    def test_full_allotment_one_level_per_step(self):
        ex = PhasedExecutor(PhasedJob([(6, 5)]))
        res = ex.execute_quantum(6, 3)
        assert res.work == 18
        assert res.span == pytest.approx(3.0)

    def test_overallotment_does_not_speed_up(self):
        ex = PhasedExecutor(PhasedJob([(6, 5)]))
        res = ex.execute_quantum(50, 100)
        assert res.steps == 5  # one level per step, extra processors idle
        assert res.work == 30

    def test_deprived_throughput(self):
        # width 10, allotment 4: min(a, w) = 4 tasks/step away from the tail
        ex = PhasedExecutor(PhasedJob([(10, 8)]))
        res = ex.execute_quantum(4, 5)
        assert res.work == 20
        assert res.span == pytest.approx(2.0)

    def test_last_level_tail(self):
        # single-level phase: remaining shrinks, ceil(10/4) = 3 steps
        ex = PhasedExecutor(PhasedJob([(10, 1)]))
        res = ex.execute_quantum(4, 100)
        assert res.steps == 3
        assert res.work == 10
        assert res.finished

    def test_wavefront_spans_levels_in_one_step(self):
        # width 5, allotment 7: a step drains the partial level and overflows
        ex = PhasedExecutor(PhasedJob([(5, 4)]))
        r1 = ex.execute_quantum(3, 1)
        assert r1.work == 3
        r2 = ex.execute_quantum(7, 1)
        # 2 left on level 1 + 3 enabled on level 2 = 5 ready; min(7, 5) = 5
        assert r2.work == 5
        assert r2.span == pytest.approx(1.0)


class TestPhasedExecutorBarriers:
    def test_phase_boundary_not_crossed_in_one_step(self):
        # serial tail then parallel: the fork's children start next step
        ex = PhasedExecutor(PhasedJob([(1, 1), (8, 1)]))
        r1 = ex.execute_quantum(9, 1)
        assert r1.work == 1  # only the serial task runs
        r2 = ex.execute_quantum(9, 1)
        assert r2.work == 8
        assert r2.finished

    def test_multiple_phases_in_one_quantum(self):
        ex = PhasedExecutor(PhasedJob([(1, 2), (3, 2), (1, 1)]))
        res = ex.execute_quantum(3, 100)
        assert res.finished
        assert res.work == 2 + 6 + 1
        assert res.steps == 2 + 2 + 1
        assert res.span == pytest.approx(5.0)

    def test_quantum_ends_mid_phase(self):
        ex = PhasedExecutor(PhasedJob([(1, 2), (3, 4)]))
        res = ex.execute_quantum(3, 3)
        assert res.work == 2 + 3
        assert res.span == pytest.approx(3.0)
        res2 = ex.execute_quantum(3, 100)
        assert res2.finished
        assert res2.work == 9


class TestPhasedExecutorAccounting:
    def test_work_and_span_conservation(self):
        job = PhasedJob([(1, 7), (5, 6), (1, 3), (9, 2)])
        ex = PhasedExecutor(job)
        work, span = 0, 0.0
        while not ex.finished:
            r = ex.execute_quantum(4, 5)
            work += r.work
            span += r.span
        assert work == job.work
        assert span == pytest.approx(job.span)

    def test_remaining_work(self):
        job = PhasedJob([(2, 5)])
        ex = PhasedExecutor(job)
        ex.execute_quantum(2, 2)
        assert ex.remaining_work == 10 - 4

    def test_current_parallelism_tracks_phase(self):
        ex = PhasedExecutor(PhasedJob([(1, 2), (6, 2)]))
        assert ex.current_parallelism == 1.0
        ex.execute_quantum(1, 2)
        assert ex.current_parallelism == 6.0
        ex.execute_quantum(6, 10)
        assert ex.current_parallelism == 0.0

    def test_finished_job_rejects_execution(self):
        ex = PhasedExecutor(PhasedJob([(1, 1)]))
        ex.execute_quantum(1, 1)
        with pytest.raises(RuntimeError):
            ex.execute_quantum(1, 1)

    def test_invalid_args(self):
        ex = PhasedExecutor(PhasedJob([(1, 2)]))
        with pytest.raises(ValueError):
            ex.execute_quantum(0, 1)
        with pytest.raises(ValueError):
            ex.execute_quantum(1, 0)

    def test_breadth_first_span_within_steps(self):
        job = PhasedJob([(1, 3), (7, 5), (1, 2)])
        ex = PhasedExecutor(job)
        while not ex.finished:
            r = ex.execute_quantum(3, 4)
            assert r.span <= r.steps + 1e-9
