"""The parallel experiment layer: deterministic fan-out must be invisible in
the numbers — only wall-clock changes with the worker count."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import run_fig5, run_fig6
from repro.experiments.parallel import map_deterministic, resolve_workers
from repro.experiments.runner import run_everything


class TestMapDeterministic:
    def test_serial_matches_plain_map(self):
        assert map_deterministic(lambda x: x * x, range(7)) == [
            x * x for x in range(7)
        ]

    def test_parallel_preserves_order(self):
        assert map_deterministic(_square, range(20), workers=4) == [
            x * x for x in range(20)
        ]

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)
        assert resolve_workers(1) == 1
        assert resolve_workers(0) >= 1  # all cores

    def test_empty_and_single_item(self):
        assert map_deterministic(_square, [], workers=4) == []
        assert map_deterministic(_square, [3], workers=4) == [9]


def _square(x: int) -> int:
    return x * x


class TestSweepBitIdentity:
    def test_fig5_serial_equals_parallel(self):
        kwargs = dict(factors=(2, 11, 29), jobs_per_factor=2)
        assert run_fig5(workers=1, **kwargs) == run_fig5(workers=3, **kwargs)

    def test_fig5_factor_streams_independent(self):
        """A factor's jobs depend only on (seed, factor), not on which other
        factors the sweep includes — subsetting a sweep reproduces points."""
        full = run_fig5(factors=(2, 11, 29), jobs_per_factor=2)
        alone = run_fig5(factors=(11,), jobs_per_factor=2)
        assert alone.points[0] == full.points[1]

    def test_fig6_serial_equals_parallel(self):
        assert run_fig6(num_sets=3, workers=1) == run_fig6(num_sets=3, workers=2)

    @pytest.mark.slow
    def test_runner_artifacts_bit_identical(self, tmp_path: Path):
        run_everything(tmp_path / "ser", scale="smoke", jobs=1)
        run_everything(tmp_path / "par", scale="smoke", jobs=4)
        serial = sorted((tmp_path / "ser").glob("*.json"))
        assert serial  # the runner wrote artifacts
        for artifact in serial:
            parallel = tmp_path / "par" / artifact.name
            assert json.loads(artifact.read_text()) == json.loads(
                parallel.read_text()
            ), f"{artifact.name} differs between serial and --jobs 4"
