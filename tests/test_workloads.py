"""Unit tests for workload generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.phased import PhasedJob
from repro.workloads.forkjoin import (
    ForkJoinGenerator,
    constant_parallelism_job,
    fork_join_job,
    ramped_job,
    structural_transition_factor,
)
from repro.workloads.jobsets import JobSetGenerator
from repro.workloads.profiles import job_from_profile, profile_of_job, random_profile


class TestConstantParallelism:
    def test_structure(self):
        job = constant_parallelism_job(8, 100)
        assert job.work == 800
        assert job.span == 100
        assert job.average_parallelism == 8.0


class TestForkJoinJob:
    def test_alternation(self):
        job = fork_join_job([4, 6], [10, 20], [5, 8])
        widths = [p.width for p in job.phases]
        assert widths == [1, 4, 1, 6]
        assert job.span == 10 + 5 + 20 + 8

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fork_join_job([4], [10, 20], [5])


class TestRampedJob:
    def test_small_transition_factor(self):
        job = ramped_job(64, ramp_factor=2.0, levels_per_phase=10)
        assert structural_transition_factor(job) == pytest.approx(2.0)

    def test_symmetric_ramp(self):
        job = ramped_job(16, ramp_factor=2.0, levels_per_phase=5)
        widths = [p.width for p in job.phases]
        assert widths == [1, 2, 4, 8, 16, 8, 4, 2, 1]

    def test_peak_levels(self):
        job = ramped_job(8, levels_per_phase=5, peak_levels=50)
        peak = max(job.phases, key=lambda p: p.width)
        assert peak.levels == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            ramped_job(0)
        with pytest.raises(ValueError):
            ramped_job(8, ramp_factor=1.0)
        with pytest.raises(ValueError):
            ramped_job(8, levels_per_phase=0)


class TestStructuralTransitionFactor:
    def test_serial_only(self):
        assert structural_transition_factor(PhasedJob([(1, 10)])) == 1.0

    def test_initial_transition_counts(self):
        # job starting at width 6: A(0)=1 -> first transition is 6
        assert structural_transition_factor(PhasedJob([(6, 10)])) == 6.0

    def test_adjacent_phase_ratio(self):
        job = PhasedJob([(1, 10), (8, 10), (2, 10)])
        assert structural_transition_factor(job) == 8.0


class TestForkJoinGenerator:
    def test_phase_structure(self, rng):
        gen = ForkJoinGenerator(quantum_length=100)
        job = gen.generate(rng, transition_factor=12)
        widths = [p.width for p in job.phases]
        assert widths[0::2] == [1] * (len(widths) // 2)
        assert widths[1::2] == [12] * (len(widths) // 2)

    def test_structural_factor_matches_request(self, rng):
        gen = ForkJoinGenerator(quantum_length=100)
        job = gen.generate(rng, transition_factor=30)
        assert structural_transition_factor(job) == 30.0

    def test_phase_lengths_span_quanta(self, rng):
        gen = ForkJoinGenerator(
            quantum_length=100, serial_levels=(1.5, 3.0), parallel_levels=(1.5, 3.0)
        )
        job = gen.generate(rng, 5)
        for p in job.phases:
            assert 150 <= p.levels <= 300

    def test_iterations_range(self, rng):
        gen = ForkJoinGenerator(quantum_length=10, iterations=(2, 2))
        job = gen.generate(rng, 4)
        assert len(job.phases) == 4  # 2 iterations x (serial + parallel)

    def test_batch(self, rng):
        gen = ForkJoinGenerator(quantum_length=10)
        jobs = gen.generate_batch(rng, 4, 5)
        assert len(jobs) == 5

    def test_determinism(self):
        gen = ForkJoinGenerator(quantum_length=100)
        a = gen.generate(np.random.default_rng(3), 7)
        b = gen.generate(np.random.default_rng(3), 7)
        assert a == b

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ForkJoinGenerator(quantum_length=0)
        with pytest.raises(ValueError):
            ForkJoinGenerator(iterations=(3, 2))
        with pytest.raises(ValueError):
            ForkJoinGenerator(serial_levels=(2.0, 1.0))
        gen = ForkJoinGenerator(quantum_length=10)
        with pytest.raises(ValueError):
            gen.generate(rng, 0)


class TestJobSetGenerator:
    def test_load_reached(self, rng):
        gen = JobSetGenerator(128, quantum_length=100)
        sample = gen.generate(rng, 2.0)
        assert sample.load >= 2.0 or len(sample.jobs) == 128

    def test_load_matches_jobs(self, rng):
        gen = JobSetGenerator(128, quantum_length=100)
        sample = gen.generate(rng, 1.0)
        recomputed = sum(j.average_parallelism for j in sample.jobs) / 128
        assert sample.load == pytest.approx(recomputed)

    def test_factors_within_range(self, rng):
        gen = JobSetGenerator(128, quantum_length=100, factor_range=(5, 9))
        sample = gen.generate(rng, 1.0)
        assert all(5 <= c <= 9 for c in sample.transition_factors)

    def test_at_most_p_jobs(self, rng):
        gen = JobSetGenerator(4, quantum_length=50, factor_range=(2, 3))
        sample = gen.generate(rng, 50.0)  # unreachable load
        assert len(sample.jobs) == 4

    def test_works_spans_accessors(self, rng):
        gen = JobSetGenerator(64, quantum_length=50)
        sample = gen.generate(rng, 0.5)
        assert sample.works == tuple(j.work for j in sample.jobs)
        assert sample.spans == tuple(j.span for j in sample.jobs)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            JobSetGenerator(0)
        with pytest.raises(ValueError):
            JobSetGenerator(8, factor_range=(0, 5))
        gen = JobSetGenerator(8, quantum_length=10)
        with pytest.raises(ValueError):
            gen.generate(rng, 0.0)


class TestProfiles:
    def test_round_trip(self):
        widths = [1, 1, 4, 4, 4, 2]
        job = job_from_profile(widths)
        assert profile_of_job(job) == widths

    def test_runs_collapse_to_phases(self):
        job = job_from_profile([3, 3, 3])
        assert len(job.phases) == 1
        assert job.phases[0].width == 3 and job.phases[0].levels == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            job_from_profile([])
        with pytest.raises(ValueError):
            job_from_profile([1, 0, 2])

    @given(st.lists(st.integers(1, 20), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, widths):
        assert profile_of_job(job_from_profile(widths)) == widths

    def test_random_profile(self, rng):
        prof = random_profile(rng, 4, segment_levels=(10, 20), widths=(2, 6))
        assert 40 <= len(prof) <= 80
        assert all(2 <= w <= 6 for w in prof)

    def test_random_profile_validation(self, rng):
        with pytest.raises(ValueError):
            random_profile(rng, 0)
        with pytest.raises(ValueError):
            random_profile(rng, 2, widths=(5, 2))
        with pytest.raises(ValueError):
            random_profile(rng, 2, segment_levels=(5, 2))
