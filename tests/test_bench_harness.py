"""The perf-baseline harness: scenario registry, BENCH_<rev>.json round-trip,
and the regression gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import (
    BenchReport,
    ScenarioTiming,
    SCENARIOS,
    compare_memory,
    compare_reports,
    load_report,
    report_payload,
    run_bench,
    scenario_names,
    write_report,
)


def _timing(
    name: str,
    *,
    seconds: float = 0.05,
    normalized: float = 1.0,
    peak_bytes: int = 0,
) -> ScenarioTiming:
    return ScenarioTiming(
        name=name,
        description="",
        seconds=seconds,
        units=100,
        units_per_second=100 / seconds,
        normalized=normalized,
        repeats=1,
        peak_bytes=peak_bytes,
    )


def _report(rev: str, normalized: dict[str, float], scale: str = "smoke") -> BenchReport:
    r = BenchReport(rev=rev, scale=scale, calibration_seconds=0.05)
    for name, norm in normalized.items():
        r.timings.append(_timing(name, normalized=norm))
    return r


class TestScenarios:
    def test_registry_names_unique(self):
        names = scenario_names()
        assert len(names) == len(set(names))
        assert "explicit-reference" in names
        assert "batched-kernel" in names
        assert "multi-serial" in names
        assert "multi-batched" in names
        assert "multi-superstep" in names
        assert "multi-superstep-off" in names
        assert "fig6-full" in names

    @pytest.mark.slow
    def test_smoke_run_covers_every_scenario(self):
        report = run_bench(scale="smoke", repeats=1, rev="test")
        assert {t.name for t in report.timings} == set(scenario_names())
        for t in report.timings:
            assert t.seconds > 0
            assert t.units > 0
            assert t.normalized > 0

    @pytest.mark.slow
    def test_batched_kernel_at_least_5x_reference(self):
        """The acceptance claim, measured through the harness itself."""
        report = run_bench(scale="smoke", repeats=3, rev="test")
        ref = report.timing("explicit-reference")
        bat = report.timing("batched-kernel")
        assert ref is not None and bat is not None
        assert ref.seconds / bat.seconds > 5

    @pytest.mark.slow
    def test_superstep_at_least_2x_per_quantum(self):
        """The superstep acceptance claim: ≥2x over the per-quantum batched
        path on the stable-allocation workload, through the harness."""
        report = run_bench(scale="smoke", repeats=3, rev="test")
        off = report.timing("multi-superstep-off")
        on = report.timing("multi-superstep")
        assert off is not None and on is not None
        assert off.units == on.units  # identical work by construction
        assert off.seconds / on.seconds > 2

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_bench(scale="galactic")


class TestReportRoundTrip:
    def test_write_then_load(self, tmp_path: Path):
        report = _report("abc123", {"x": 1.5, "y": 0.2})
        path = write_report(report, tmp_path)
        assert path.name == "BENCH_abc123.json"
        loaded = load_report(path)
        assert loaded.rev == report.rev
        assert loaded.scale == report.scale
        assert loaded.timings == report.timings

    def test_payload_includes_speedups_vs_baseline(self):
        base = _report("old", {"x": 2.0})
        cur = _report("new", {"x": 1.0})
        payload = report_payload(cur, base)
        assert payload["baseline_rev"] == "old"
        assert payload["speedup_vs_baseline"]["x"] == pytest.approx(2.0)

    def test_schema_mismatch_rejected(self, tmp_path: Path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError):
            load_report(bad)

    def test_peak_bytes_roundtrip(self, tmp_path: Path):
        report = _report("mem", {"x": 1.0})
        report.timings[0] = ScenarioTiming(
            name="x",
            description="",
            seconds=0.05,
            units=100,
            units_per_second=2000.0,
            normalized=1.0,
            repeats=1,
            peak_bytes=123456,
        )
        loaded = load_report(write_report(report, tmp_path))
        assert loaded.timings[0].peak_bytes == 123456

    def test_schema1_report_loads_with_zero_peak(self, tmp_path: Path):
        """Reports written before peak-memory tracking (schema 1, no
        peak_bytes key) still load; peak reads as 0."""
        legacy = {
            "schema": 1,
            "rev": "old",
            "scale": "smoke",
            "calibration_seconds": 0.05,
            "scenarios": [
                {
                    "name": "x",
                    "description": "",
                    "seconds": 0.05,
                    "units": 100,
                    "units_per_second": 2000.0,
                    "normalized": 1.0,
                    "repeats": 1,
                }
            ],
        }
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps(legacy))
        loaded = load_report(path)
        assert loaded.timings[0].peak_bytes == 0
        assert loaded.timings[0].normalized == 1.0

    def test_committed_baselines_record_peak_memory(self):
        """The refreshed baselines carry schema-2 peak_bytes measurements."""
        path = Path(__file__).resolve().parents[1] / "benchmarks" / "BENCH_baseline_smoke.json"
        report = load_report(path)
        assert all(t.peak_bytes > 0 for t in report.timings)

    def test_committed_baselines_load(self):
        """The baselines committed in benchmarks/ stay loadable and cover
        the current scenario registry."""
        for name in ("BENCH_baseline.json", "BENCH_baseline_smoke.json"):
            path = Path(__file__).resolve().parents[1] / "benchmarks" / name
            report = load_report(path)
            assert {t.name for t in report.timings} == set(scenario_names())


class TestRegressionGate:
    def test_no_regression_within_tolerance(self):
        base = _report("old", {"x": 1.0})
        cur = _report("new", {"x": 1.1})
        assert compare_reports(cur, base, max_regression=0.2) == []

    def test_regression_beyond_gate_flagged(self):
        base = _report("old", {"x": 1.0})
        cur = _report("new", {"x": 1.5})
        regs = compare_reports(cur, base, max_regression=0.2)
        assert [r.scenario for r in regs] == ["x"]
        assert regs[0].slowdown == pytest.approx(1.5)

    def test_noise_floor_skips_tiny_timings(self):
        base = _report("old", {"x": 1.0})
        cur = _report("new", {"x": 9.0})
        cur.timings[0] = _timing("x", seconds=0.0001, normalized=9.0)
        assert compare_reports(cur, base, max_regression=0.2) == []

    def test_new_scenarios_skipped(self):
        base = _report("old", {"x": 1.0})
        cur = _report("new", {"x": 1.0, "brand-new": 5.0})
        assert compare_reports(cur, base) == []

    def test_scale_mismatch_rejected(self):
        base = _report("old", {"x": 1.0}, scale="default")
        cur = _report("new", {"x": 1.0}, scale="smoke")
        with pytest.raises(ValueError):
            compare_reports(cur, base)

    def test_improvements_never_flagged(self):
        base = _report("old", {"x": 5.0})
        cur = _report("new", {"x": 0.5})
        assert compare_reports(cur, base) == []


def _mem_report(rev: str, peaks: dict[str, int], scale: str = "smoke") -> BenchReport:
    r = BenchReport(rev=rev, scale=scale, calibration_seconds=0.05)
    for name, peak in peaks.items():
        r.timings.append(_timing(name, peak_bytes=peak))
    return r


class TestMemoryGate:
    MB = 1_000_000

    def test_growth_within_gate_passes(self):
        base = _mem_report("old", {"x": 10 * self.MB})
        cur = _mem_report("new", {"x": 12 * self.MB})
        assert compare_memory(cur, base, max_regression=0.25) == []

    def test_growth_beyond_gate_flagged(self):
        base = _mem_report("old", {"x": 10 * self.MB})
        cur = _mem_report("new", {"x": 13 * self.MB})
        regs = compare_memory(cur, base, max_regression=0.25)
        assert [r.scenario for r in regs] == ["x"]
        assert regs[0].growth == pytest.approx(1.3)
        assert regs[0].baseline_peak_bytes == 10 * self.MB
        assert regs[0].current_peak_bytes == 13 * self.MB

    def test_small_footprints_below_floor_skipped(self):
        base = _mem_report("old", {"x": 100_000})
        cur = _mem_report("new", {"x": 300_000})  # 3x, but under min_bytes
        assert compare_memory(cur, base) == []

    def test_schema1_zero_peak_baseline_skipped(self):
        base = _mem_report("old", {"x": 0})
        cur = _mem_report("new", {"x": 50 * self.MB})
        assert compare_memory(cur, base) == []

    def test_new_scenarios_skipped(self):
        base = _mem_report("old", {"x": 10 * self.MB})
        cur = _mem_report("new", {"x": 10 * self.MB, "brand-new": 90 * self.MB})
        assert compare_memory(cur, base) == []

    def test_improvements_never_flagged(self):
        base = _mem_report("old", {"x": 50 * self.MB})
        cur = _mem_report("new", {"x": 10 * self.MB})
        assert compare_memory(cur, base) == []

    def test_scale_mismatch_rejected(self):
        base = _mem_report("old", {"x": 10 * self.MB}, scale="default")
        cur = _mem_report("new", {"x": 10 * self.MB}, scale="smoke")
        with pytest.raises(ValueError):
            compare_memory(cur, base)

    def test_negative_gate_rejected(self):
        base = _mem_report("old", {"x": 10 * self.MB})
        cur = _mem_report("new", {"x": 10 * self.MB})
        with pytest.raises(ValueError):
            compare_memory(cur, base, max_regression=-0.1)
