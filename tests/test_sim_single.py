"""Unit/integration tests for the single-job simulator."""

from __future__ import annotations

import pytest

from repro.allocators.availability import ConstantAvailability, TraceAvailability
from repro.core.abg import AControl
from repro.core.agreedy import AGreedy
from repro.core.quantum_policy import AdaptiveQuantumLength
from repro.core.reference import FixedRequest, OracleFeedback
from repro.dag.builders import fork_join_from_phases
from repro.engine.phased import PhasedExecutor, PhasedJob
from repro.sim.single import simulate_job
from repro.workloads.forkjoin import constant_parallelism_job


class TestTraceStructure:
    def test_quantum_indices_sequential(self):
        trace = simulate_job(PhasedJob([(4, 50)]), AControl(0.2), 16, quantum_length=10)
        assert [r.index for r in trace] == list(range(1, len(trace) + 1))

    def test_first_request_is_one(self):
        trace = simulate_job(PhasedJob([(4, 50)]), AControl(0.2), 16, quantum_length=10)
        assert trace[1].request == 1.0
        assert trace[1].allotment == 1

    def test_work_conservation(self):
        job = PhasedJob([(1, 20), (6, 30), (1, 10)])
        trace = simulate_job(job, AControl(0.2), 16, quantum_length=25)
        assert trace.total_work == job.work
        assert trace.total_span == pytest.approx(job.span)

    def test_only_last_quantum_short(self):
        job = PhasedJob([(3, 100)])
        trace = simulate_job(job, AControl(0.0), 16, quantum_length=30)
        for rec in trace.records[:-1]:
            assert rec.is_full
        assert trace.records[-1].steps <= 30

    def test_conservative_allotment(self):
        trace = simulate_job(PhasedJob([(8, 60)]), AControl(0.2), 4, quantum_length=10)
        for rec in trace:
            assert rec.allotment <= rec.request_int
            assert rec.allotment <= rec.available

    def test_start_steps_accumulate(self):
        trace = simulate_job(PhasedJob([(2, 100)]), AControl(0.2), 8, quantum_length=25)
        t = 0
        for rec in trace:
            assert rec.start_step == t
            t += rec.steps

    def test_int_availability_shorthand(self):
        t1 = simulate_job(PhasedJob([(4, 40)]), AControl(0.2), 16, quantum_length=10)
        t2 = simulate_job(
            PhasedJob([(4, 40)]),
            AControl(0.2),
            ConstantAvailability(16),
            quantum_length=10,
        )
        assert t1.request_series() == t2.request_series()

    def test_job_id_carried(self):
        trace = simulate_job(
            PhasedJob([(1, 5)]), FixedRequest(1), 4, quantum_length=10, job_id=42
        )
        assert trace.job_id == 42


class TestPolicyBehaviour:
    def test_abg_converges_on_constant_parallelism(self):
        job = constant_parallelism_job(10, 2000)
        trace = simulate_job(job, AControl(0.2), 128, quantum_length=100)
        reqs = trace.request_series()
        assert reqs[0] == 1.0
        # monotone approach, no overshoot
        assert all(b >= a - 1e-9 for a, b in zip(reqs, reqs[1:]))
        assert all(r <= 10.0 + 1e-9 for r in reqs)
        assert reqs[-1] == pytest.approx(10.0, rel=0.01)

    def test_agreedy_oscillates_on_constant_parallelism(self):
        job = constant_parallelism_job(10, 5000)
        trace = simulate_job(job, AGreedy(), 128, quantum_length=100)
        tail = trace.request_series()[4:12]
        assert set(tail) == {8.0, 16.0}

    def test_oracle_runs_at_span(self):
        job = PhasedJob([(1, 100), (8, 100), (1, 100)])
        ex = PhasedExecutor(job)
        oracle = OracleFeedback(lambda: ex.current_parallelism)
        trace = simulate_job(ex, oracle, 128, quantum_length=100)
        assert trace.running_time == job.span  # perfect requests, zero delay
        assert trace.total_waste == 0

    def test_fixed_request_runs_like_static_allocation(self):
        job = PhasedJob([(4, 100)])
        trace = simulate_job(job, FixedRequest(4), 128, quantum_length=50)
        assert trace.running_time == 100
        assert all(rec.allotment == 4 for rec in trace)

    def test_deprivation_respected(self):
        job = PhasedJob([(8, 100)])
        trace = simulate_job(job, FixedRequest(8), 2, quantum_length=50)
        assert all(rec.allotment == 2 for rec in trace)
        assert all(rec.deprived for rec in trace)
        assert trace.running_time == 8 * 100 // 2

    def test_trace_availability_drives_allotment(self):
        job = PhasedJob([(8, 120)])
        trace = simulate_job(
            job,
            FixedRequest(8),
            TraceAvailability([2, 4, 8]),
            quantum_length=40,
        )
        assert trace[1].allotment == 2
        assert trace[2].allotment == 4
        assert trace[3].allotment == 8


class TestQuantumLengthPolicies:
    def test_adaptive_lengths_recorded(self):
        job = constant_parallelism_job(4, 4000)
        trace = simulate_job(
            job,
            AControl(0.0),
            16,
            quantum_length=AdaptiveQuantumLength(100, min_length=50, max_length=400),
        )
        lengths = {rec.quantum_length for rec in trace}
        assert 100 in lengths  # initial
        assert any(l > 100 for l in lengths)  # grew while stable


class TestErrors:
    def test_max_quanta_guard(self):
        job = PhasedJob([(1, 10_000)])
        with pytest.raises(RuntimeError):
            simulate_job(job, FixedRequest(1), 4, quantum_length=10, max_quanta=3)

    def test_finished_executor_rejected(self):
        ex = PhasedExecutor(PhasedJob([(1, 1)]))
        ex.execute_quantum(1, 5)
        with pytest.raises(ValueError):
            simulate_job(ex, FixedRequest(1), 4)

    def test_bad_availability(self):
        class Zero(ConstantAvailability):
            def __init__(self):
                pass

            def available(self, q, prev):
                return 0

        with pytest.raises(ValueError):
            simulate_job(PhasedJob([(1, 5)]), FixedRequest(1), Zero(), quantum_length=5)


class TestExplicitDagPath:
    def test_dag_description_accepted(self):
        dag = fork_join_from_phases([(1, 10), (4, 10)])
        trace = simulate_job(dag, AControl(0.2), 8, quantum_length=10)
        assert trace.total_work == dag.work

    def test_discipline_forwarded(self):
        dag = fork_join_from_phases([(1, 10), (4, 10)])
        t1 = simulate_job(dag, AControl(0.2), 8, quantum_length=10, discipline="fifo")
        assert t1.total_work == dag.work
