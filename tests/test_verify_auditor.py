"""Adversarial tests for the invariant auditor.

Hand-built violating traces and tampered schedules must each surface their
specific violation code; clean engine runs — including hypothesis-randomized
fork-join workloads — must audit clean.  Forged records bypass
``QuantumRecord.__post_init__`` on purpose: the whole point is to hand the
auditor records the engines could never emit.
"""

from __future__ import annotations

import dataclasses
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.core.abg import AControl
from repro.core.types import JobTrace, QuantumRecord
from repro.dag.builders import fork_join_from_phases
from repro.engine.explicit import ExplicitExecutor
from repro.engine.phased import PhasedJob
from repro.sim.jobs import JobSpec
from repro.sim.multi import simulate_job_set
from repro.sim.single import simulate_job
from repro.verify import violations as V
from repro.verify.auditor import (
    TraceExpectations,
    audit_dag_schedule,
    audit_multi_result,
    audit_trace,
)

P = 16
L = 50
RATE = 0.2


def forge(rec: QuantumRecord, **overrides: object) -> QuantumRecord:
    """Clone a record with fields overridden, skipping validation."""
    clone = object.__new__(QuantumRecord)
    for f in dataclasses.fields(QuantumRecord):
        object.__setattr__(clone, f.name, overrides.get(f.name, getattr(rec, f.name)))
    return clone


def tamper(trace: JobTrace, q: int, **overrides: object) -> JobTrace:
    """Copy of ``trace`` with quantum ``q`` forged."""
    out = JobTrace(quantum_length=trace.quantum_length, job_id=trace.job_id)
    out.records = [forge(r, **overrides) if r.index == q else r for r in trace.records]
    return out


@pytest.fixture(scope="module")
def clean_run() -> tuple[PhasedJob, JobTrace]:
    job = PhasedJob([(1, 30), (8, 30), (1, 30), (8, 30)])
    trace = simulate_job(job, AControl(RATE), P, quantum_length=L)
    assert len(trace) >= 4, "workload too small to tamper with"
    return job, trace


def full_expectations(job: PhasedJob) -> TraceExpectations:
    return TraceExpectations(
        total_work=job.work,
        total_span=job.span,
        convergence_rate=RATE,
        processors=P,
    )


class TestCleanTraces:
    def test_seed_engine_audits_clean(self, clean_run):
        job, trace = clean_run
        report = audit_trace(trace, full_expectations(job))
        assert report.ok, report.summary()
        # conservation and recurrence actually ran, they weren't skipped
        assert report.checked(V.V_WORK_CONSERVATION)
        assert report.checked(V.V_SPAN_CONSERVATION)
        assert report.checked(V.V_ACONTROL_RECURRENCE)

    def test_empty_trace_is_ok(self):
        report = audit_trace(JobTrace(quantum_length=L))
        assert report.ok


class TestForgedTraces:
    """Each structural invariant, broken in isolation."""

    def _mid_quantum(self, trace: JobTrace, min_allotment: int = 2) -> QuantumRecord:
        for rec in trace.records[1:-1]:
            if rec.allotment >= min_allotment:
                return rec
        pytest.fail("no mid-trace quantum with enough allotment")

    def test_over_allocation_beyond_available(self, clean_run):
        _, trace = clean_run
        rec = self._mid_quantum(trace)
        a = rec.available + 3
        bad = tamper(trace, rec.index, allotment=a, request=float(a), request_int=a)
        report = audit_trace(bad)
        assert report.codes() == {V.V_ALLOTMENT_EXCEEDS_AVAILABLE}
        (v,) = report.by_code(V.V_ALLOTMENT_EXCEEDS_AVAILABLE)
        assert v.quantum == rec.index
        assert v.measured == a and v.bound == rec.available

    def test_over_allocation_beyond_request(self, clean_run):
        _, trace = clean_run
        rec = self._mid_quantum(trace)
        bad = tamper(trace, rec.index, request=1.0, request_int=1)
        report = audit_trace(bad)
        assert V.V_ALLOTMENT_EXCEEDS_REQUEST in report.codes()

    def test_request_not_ceiling(self, clean_run):
        _, trace = clean_run
        rec = self._mid_quantum(trace)
        bad = tamper(trace, rec.index, request_int=rec.request_int + 1)
        report = audit_trace(bad)
        assert report.codes() == {V.V_REQUEST_NOT_CEIL}

    def test_idle_with_ready_tasks(self, clean_run):
        _, trace = clean_run
        rec = self._mid_quantum(trace)
        w = rec.steps - 1
        bad = tamper(trace, rec.index, work=w, span=min(rec.span, float(w)))
        report = audit_trace(bad)
        assert report.codes() == {V.V_IDLE_WITH_READY_TASKS}

    def test_work_exceeds_capacity(self, clean_run):
        _, trace = clean_run
        rec = self._mid_quantum(trace)
        bad = tamper(trace, rec.index, work=rec.allotment * rec.steps + 5)
        report = audit_trace(bad)
        assert report.codes() == {V.V_WORK_EXCEEDS_CAPACITY}

    def test_span_exceeds_steps(self, clean_run):
        _, trace = clean_run
        for rec in trace.records[1:-1]:
            if rec.work > rec.steps + 2:
                break
        else:
            pytest.fail("no quantum with work > steps + 2")
        bad = tamper(trace, rec.index, span=float(rec.steps + 2))
        report = audit_trace(bad)
        assert report.codes() == {V.V_SPAN_EXCEEDS_STEPS}
        # a non-breadth-first trace is allowed to smear span across quanta
        relaxed = audit_trace(bad, TraceExpectations(breadth_first=False))
        assert relaxed.ok

    def test_span_exceeds_work(self, clean_run):
        _, trace = clean_run
        rec = self._mid_quantum(trace)
        bad = tamper(trace, rec.index, span=float(rec.work + 1))
        report = audit_trace(bad)
        assert V.V_SPAN_EXCEEDS_WORK in report.codes()

    def test_early_stop_not_last(self, clean_run):
        _, trace = clean_run
        rec = self._mid_quantum(trace)
        s = rec.steps - 1
        bad = tamper(
            trace,
            rec.index,
            steps=s,
            work=min(rec.work, rec.allotment * s),
            span=min(rec.span, float(s)),
        )
        report = audit_trace(bad)
        assert report.codes() == {V.V_EARLY_STOP_NOT_LAST}

    def test_first_request_not_one(self, clean_run):
        _, trace = clean_run
        bad = tamper(trace, 1, request=2.0, request_int=2)
        report = audit_trace(bad)
        assert report.codes() == {V.V_FIRST_REQUEST}

    def test_quantum_index_disorder(self, clean_run):
        _, trace = clean_run
        rec = trace.records[2]
        bad = tamper(trace, rec.index, index=rec.index + 7)
        report = audit_trace(bad)
        assert V.V_QUANTUM_INDEX in report.codes()


class TestConservationAndRecurrence:
    def test_work_conservation_violated(self, clean_run):
        job, trace = clean_run
        expect = TraceExpectations(total_work=job.work + 3)
        report = audit_trace(trace, expect)
        assert report.codes() == {V.V_WORK_CONSERVATION}

    def test_span_conservation_violated(self, clean_run):
        job, trace = clean_run
        expect = TraceExpectations(total_span=job.span + 1.0)
        report = audit_trace(trace, expect)
        assert report.codes() == {V.V_SPAN_CONSERVATION}

    def test_wrong_acontrol_gain_detected(self, clean_run):
        """A request that deviates from d(q) = r d(q-1) + (1-r) A(q-1)."""
        job, trace = clean_run
        rec = trace.records[2]
        d = rec.request + 0.7
        bad = tamper(trace, rec.index, request=d, request_int=math.ceil(d))
        report = audit_trace(bad, full_expectations(job))
        assert V.V_ACONTROL_RECURRENCE in report.codes()
        assert any(v.quantum == rec.index for v in report.by_code(V.V_ACONTROL_RECURRENCE))

    def test_trace_from_wrong_rate_fails_recurrence(self, clean_run):
        """Auditing an r=0.2 trace against r=0.5 must not pass: the recurrence
        pins the trace to its true gain."""
        job, trace = clean_run
        expect = TraceExpectations(convergence_rate=0.5)
        report = audit_trace(trace, expect)
        assert V.V_ACONTROL_RECURRENCE in report.codes()
        # sanity: the same trace against its true gain is clean
        assert audit_trace(trace, full_expectations(job)).ok


class TestDagScheduleReplay:
    @pytest.fixture(scope="class")
    def recorded(self):
        dag = fork_join_from_phases([(1, 3), (4, 3), (1, 2)])
        executor = ExplicitExecutor(dag, record_schedule=True)
        simulate_job(executor, AControl(RATE), 8, quantum_length=7)
        assert executor.schedule is not None
        return dag, executor.schedule

    def test_clean_replay(self, recorded):
        dag, schedule = recorded
        report = audit_dag_schedule(dag, schedule, breadth_first=True)
        assert report.ok, report.summary()

    def test_precedence_break(self, recorded):
        dag, schedule = recorded
        bad = list(schedule)
        bad[0], bad[-1] = bad[-1], bad[0]
        report = audit_dag_schedule(dag, bad)
        assert V.V_PRECEDENCE in report.codes()

    def test_double_execution(self, recorded):
        dag, schedule = recorded
        bad = list(schedule)
        a0, tasks0 = bad[0]
        a1, tasks1 = bad[1]
        bad[1] = (a1, [*tasks1, *tasks0])
        report = audit_dag_schedule(dag, bad)
        assert V.V_DOUBLE_EXECUTION in report.codes()

    def test_idle_step_with_ready_tasks(self, recorded):
        dag, schedule = recorded
        bad = list(schedule)
        for i, (a, tasks) in enumerate(bad):
            if len(tasks) > 1:
                bad[i] = (a, list(tasks)[:-1])
                break
        else:
            pytest.fail("no multi-task step to thin out")
        report = audit_dag_schedule(dag, bad)
        assert V.V_IDLE_WITH_READY_TASKS in report.codes()
        assert V.V_INCOMPLETE_DAG in report.codes()

    def test_overscheduled_step(self, recorded):
        dag, schedule = recorded
        bad = list(schedule)
        for i, (a, tasks) in enumerate(bad):
            if len(tasks) > 1:
                bad[i] = (1, tasks)
                break
        report = audit_dag_schedule(dag, bad)
        assert V.V_OVERSCHEDULED_STEP in report.codes()

    def test_truncated_schedule(self, recorded):
        dag, schedule = recorded
        report = audit_dag_schedule(dag, schedule[:-2])
        assert V.V_INCOMPLETE_DAG in report.codes()
        assert audit_dag_schedule(dag, schedule[:-2], require_completion=False).ok

    def test_depth_first_breaks_lowest_level_first(self):
        """A LIFO (depth-first) run of a wide dag on few processors must be
        flagged under the B-Greedy priority rule — and pass without it."""
        dag = fork_join_from_phases([(1, 2), (4, 6), (1, 2)])
        executor = ExplicitExecutor(dag, "lifo", record_schedule=True)
        simulate_job(executor, AControl(RATE), 2, quantum_length=5)
        assert executor.schedule is not None
        strict = audit_dag_schedule(dag, executor.schedule, breadth_first=True)
        assert V.V_NOT_LOWEST_LEVEL_FIRST in strict.codes()
        lax = audit_dag_schedule(dag, executor.schedule, breadth_first=False)
        assert lax.ok, lax.summary()


class TestMultiprogrammedAudit:
    @pytest.fixture()
    def deq_result(self):
        specs = [
            JobSpec(
                job=PhasedJob([(1, 20), (6, 20)]),
                feedback=AControl(RATE),
                job_id=i,
            )
            for i in range(3)
        ]
        return simulate_job_set(
            specs, DynamicEquiPartitioning(), processors=8, quantum_length=40
        )

    def test_clean_deq_run(self, deq_result):
        report = audit_multi_result(deq_result)
        assert report.ok, report.summary()
        assert report.checked(V.V_DEQ_UNFAIR)
        assert report.checked(V.V_RESERVATION)

    def test_capacity_exceeded(self, deq_result):
        trace = deq_result.traces[0]
        rec = trace.records[1]
        big = deq_result.processors
        deq_result.traces[0] = tamper(
            trace, rec.index, allotment=big, available=big, request=float(big), request_int=big
        )
        report = audit_multi_result(deq_result, fair=False, non_reserving=False)
        assert V.V_CAPACITY_EXCEEDED in report.codes()

    def test_reservation_detected(self, deq_result):
        # Forge one job as deprived at a boundary where processors were idle:
        # a non-reserving allocator must never leave it short.
        for jid, trace in sorted(deq_result.traces.items()):
            for rec in trace.records[1:]:
                peers = [
                    r
                    for t in deq_result.traces.values()
                    for r in t.records
                    if r.start_step == rec.start_step
                ]
                if sum(r.allotment for r in peers) < deq_result.processors:
                    want = rec.request_int + 5
                    deq_result.traces[jid] = tamper(
                        trace, rec.index, request=float(want), request_int=want
                    )
                    report = audit_multi_result(deq_result)
                    assert V.V_RESERVATION in report.codes()
                    return
        pytest.fail("no boundary with idle processors to forge against")


class TestStrictMode:
    """The engines' opt-in fail-fast counterpart of the post-hoc audit."""

    def test_phased_strict_runs_clean(self):
        job = PhasedJob([(1, 20), (6, 20)])
        trace = simulate_job(job, AControl(RATE), P, quantum_length=L, strict=True)
        assert trace.total_work == job.work

    def test_explicit_strict_runs_clean(self):
        dag = fork_join_from_phases([(1, 3), (4, 3)])
        trace = simulate_job(dag, AControl(RATE), 8, quantum_length=7, strict=True)
        assert trace.total_work == dag.work

    def test_strict_catches_corrupted_precedence_state(self):
        """Corrupting the executor's bookkeeping so a 'ready' task still has
        an incomplete predecessor must fail fast under strict mode."""
        from repro.verify.violations import InvariantError

        dag = fork_join_from_phases([(1, 2), (3, 2)])
        executor = ExplicitExecutor(dag, strict=True)
        executor.execute_quantum(1, 1)  # past the root, heap is populated
        corrupted = executor._heap[0][1]
        executor._indegree[corrupted] = 1
        with pytest.raises(InvariantError) as exc:
            executor.execute_quantum(1, 1)
        assert exc.value.violation.code == V.V_PRECEDENCE


class TestRandomizedCleanRuns:
    """Property test: whatever the workload shape, the seed engines satisfy
    every audited invariant end-to-end."""

    @settings(max_examples=40, deadline=None)
    @given(
        phases=st.lists(
            st.tuples(st.integers(1, 10), st.integers(1, 40)),
            min_size=1,
            max_size=5,
        ),
        rate=st.sampled_from([0.0, 0.2, 0.5]),
        quantum_length=st.integers(8, 60),
        processors=st.integers(2, 24),
    )
    def test_fork_join_runs_audit_clean(self, phases, rate, quantum_length, processors):
        job = PhasedJob(phases)
        trace = simulate_job(job, AControl(rate), processors, quantum_length=quantum_length)
        expect = TraceExpectations(
            total_work=job.work,
            total_span=job.span,
            convergence_rate=rate,
            processors=processors,
        )
        report = audit_trace(trace, expect)
        assert report.ok, report.summary()
