"""Unit/integration tests for the reallocation-overhead extension."""

from __future__ import annotations

import pytest

from repro.core.abg import AControl
from repro.core.overhead import NO_OVERHEAD, ReallocationOverhead
from repro.core.reference import FixedRequest
from repro.engine.phased import PhasedExecutor, PhasedJob
from repro.experiments import run_overhead_study
from repro.sim.jobs import JobSpec
from repro.sim.multi import simulate_job_set
from repro.sim.single import run_quantum_with_overhead, simulate_job
from repro.allocators.equipartition import DynamicEquiPartitioning


class TestReallocationOverhead:
    def test_no_cost_when_allotment_stable(self):
        oh = ReallocationOverhead(per_processor=5.0, fixed=10)
        assert oh.cost(4, 4, 1000) == 0

    def test_first_quantum_free(self):
        oh = ReallocationOverhead(per_processor=5.0, fixed=10)
        assert oh.cost(None, 8, 1000) == 0

    def test_linear_in_delta(self):
        oh = ReallocationOverhead(per_processor=3.0)
        assert oh.cost(4, 10, 1000) == 18
        assert oh.cost(10, 4, 1000) == 18  # shrinking also migrates

    def test_fixed_component(self):
        oh = ReallocationOverhead(fixed=7)
        assert oh.cost(4, 5, 1000) == 7

    def test_capped_at_quantum_length(self):
        oh = ReallocationOverhead(per_processor=1000.0)
        assert oh.cost(1, 100, 50) == 50

    def test_is_free(self):
        assert NO_OVERHEAD.is_free
        assert not ReallocationOverhead(fixed=1).is_free

    def test_validation(self):
        with pytest.raises(ValueError):
            ReallocationOverhead(per_processor=-1.0)
        with pytest.raises(ValueError):
            ReallocationOverhead(fixed=-1)


class TestRunQuantumWithOverhead:
    def test_overhead_consumes_steps(self):
        ex = PhasedExecutor(PhasedJob([(4, 100)]))
        oh = ReallocationOverhead(fixed=10)
        res = run_quantum_with_overhead(ex, 4, 50, prev_allotment=2, overhead=oh)
        assert res.steps == 50
        assert res.work == 4 * 40  # only 40 execution steps

    def test_full_quantum_lost(self):
        ex = PhasedExecutor(PhasedJob([(4, 100)]))
        oh = ReallocationOverhead(fixed=999)
        res = run_quantum_with_overhead(ex, 4, 50, prev_allotment=2, overhead=oh)
        assert res.work == 0 and res.span == 0.0
        assert res.steps == 50
        assert not res.finished

    def test_free_model_is_transparent(self):
        job = PhasedJob([(4, 100)])
        ex1, ex2 = PhasedExecutor(job), PhasedExecutor(job)
        r1 = run_quantum_with_overhead(ex1, 4, 50, 2, NO_OVERHEAD)
        r2 = ex2.execute_quantum(4, 50)
        assert (r1.work, r1.span, r1.steps) == (r2.work, r2.span, r2.steps)


class TestSimulationWithOverhead:
    def test_zero_overhead_matches_default(self):
        job = PhasedJob([(1, 60), (6, 80)])
        t1 = simulate_job(job, AControl(0.2), 32, quantum_length=25)
        t2 = simulate_job(
            job, AControl(0.2), 32, quantum_length=25, overhead=NO_OVERHEAD
        )
        assert t1.request_series() == t2.request_series()
        assert t1.running_time == t2.running_time

    def test_overhead_slows_down_and_terminates(self):
        job = PhasedJob([(1, 60), (6, 80), (1, 40)])
        base = simulate_job(job, AControl(0.2), 32, quantum_length=25)
        slow = simulate_job(
            job, AControl(0.2), 32, quantum_length=25,
            overhead=ReallocationOverhead(per_processor=4.0),
        )
        assert slow.running_time > base.running_time
        assert slow.total_work == job.work

    def test_stable_policy_pays_nothing(self):
        job = PhasedJob([(4, 200)])
        oh = ReallocationOverhead(per_processor=10.0, fixed=10)
        base = simulate_job(job, FixedRequest(4), 32, quantum_length=25)
        priced = simulate_job(
            job, FixedRequest(4), 32, quantum_length=25, overhead=oh
        )
        # the allotment never changes after the (free) first quantum
        assert priced.running_time == base.running_time

    def test_multi_sim_with_overhead(self):
        jobs = [PhasedJob([(1, 40), (5, 60)]), PhasedJob([(3, 80)])]
        specs = [JobSpec(job=j, feedback=AControl(0.2)) for j in jobs]
        base = simulate_job_set(
            specs, DynamicEquiPartitioning(), 16, quantum_length=25
        )
        priced = simulate_job_set(
            specs, DynamicEquiPartitioning(), 16, quantum_length=25,
            overhead=ReallocationOverhead(per_processor=5.0),
        )
        assert priced.makespan >= base.makespan
        assert priced.total_work == base.total_work

    def test_extreme_overhead_still_terminates(self):
        job = PhasedJob([(1, 50), (8, 50)])
        trace = simulate_job(
            job, AControl(0.0), 32, quantum_length=20,
            overhead=ReallocationOverhead(per_processor=100.0),
        )
        assert trace.total_work == job.work


class TestOverheadStudy:
    def test_ratio_widens_with_cost(self):
        rows = run_overhead_study(
            costs=(0.0, 20.0), factors=(20,), jobs_per_factor=3, seed=9
        )
        assert rows[1].time_ratio > rows[0].time_ratio
        assert rows[1].agreedy_reallocations >= rows[0].agreedy_reallocations
