"""Tests for the golden-trace job-set shrinker (``repro.goldens.shrink``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.goldens import (
    ExplicitJob,
    ScenarioSpec,
    TraceDivergence,
    default_scenarios,
    regression_bundle,
    shrink_scenario,
    verify_traces,
)
from repro.goldens.shrink import ShrinkResult, cross_path_divergence
from repro.io.traces import load_golden_bundle, save_golden_bundle


def wide_spec(num_jobs: int = 8) -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="wide",
        policy="abg",
        policy_params=(("convergence_rate", 0.2),),
        allocator="deq",
        processors=8,
        quantum_length=50,
        max_quanta=10_000,
        jobs=tuple(
            ExplicitJob(
                job_id=i,
                release_time=0,
                phases=((1, 60), (3, 90), (1, 40)),
            )
            for i in range(num_jobs)
        ),
    )


def synthetic_predicate(spec: ScenarioSpec) -> TraceDivergence | None:
    """Fails iff jobs 2 and 5 are both present — the classic ddmin pair."""
    ids = {job.job_id for job in spec.jobs}
    if {2, 5} <= ids:
        return TraceDivergence(
            kind="field",
            job_id=5,
            quantum=3,
            position=2,
            start_step=200,
            detail="synthetic interaction of jobs 2 and 5",
        )
    return None


def _perturb_deq(monkeypatch):
    orig = DynamicEquiPartitioning.allocate_batch

    def perturbed(self, ids, requests, total):
        grants = orig(self, ids, requests, total)
        deprived = np.flatnonzero(grants < requests)
        rich = np.flatnonzero(grants >= 2)
        if deprived.size and rich.size and rich[-1] != deprived[0]:
            grants = grants.copy()
            grants[rich[-1]] -= 1
            grants[deprived[0]] += 1
        return grants

    monkeypatch.setattr(DynamicEquiPartitioning, "allocate_batch", perturbed)


class TestDdmin:
    def test_reduces_to_exact_interacting_pair(self):
        result = shrink_scenario(wide_spec(), predicate=synthetic_predicate)
        assert result is not None
        assert sorted(job.job_id for job in result.spec.jobs) == [2, 5]

    def test_original_job_ids_are_preserved(self):
        result = shrink_scenario(wide_spec(), predicate=synthetic_predicate)
        assert result is not None
        # jobs keep their original identities — the reproduction names the
        # same jobs the full scenario did, not a renumbered 0..n
        for job in result.spec.jobs:
            assert job.job_id in (2, 5)
            assert job.release_time == 0

    def test_phases_reduced_to_minimum(self):
        result = shrink_scenario(wide_spec(), predicate=synthetic_predicate)
        assert result is not None
        # the synthetic predicate ignores phases, so ddmin strips each job
        # to a single phase (never zero: that would be an invalid job)
        assert all(len(job.phases) == 1 for job in result.spec.jobs)
        assert result.phase_count == len(result.spec.jobs)

    def test_horizon_trimmed_to_divergence(self):
        result = shrink_scenario(wide_spec(), predicate=synthetic_predicate)
        assert result is not None
        assert result.divergence.position == 2
        assert result.spec.horizon == 3

    def test_bookkeeping(self):
        result = shrink_scenario(wide_spec(), predicate=synthetic_predicate)
        assert result is not None
        assert result.original_jobs == 8
        assert result.original_phases == 24
        assert result.evaluations > 0
        assert "8 job(s)" in result.describe()
        assert "2 job(s)" in result.describe()

    def test_deterministic(self):
        a = shrink_scenario(wide_spec(), predicate=synthetic_predicate)
        b = shrink_scenario(wide_spec(), predicate=synthetic_predicate)
        assert a is not None and b is not None
        assert a.spec == b.spec
        assert a.evaluations == b.evaluations

    def test_non_failing_scenario_is_not_shrinkable(self):
        result = shrink_scenario(
            wide_spec(), predicate=lambda spec: None
        )
        assert result is None

    def test_single_job_failure_keeps_that_job(self):
        def single(spec: ScenarioSpec) -> TraceDivergence | None:
            ids = {job.job_id for job in spec.jobs}
            if 3 in ids:
                return TraceDivergence(
                    kind="field", job_id=3, quantum=1, position=0, start_step=0
                )
            return None

        result = shrink_scenario(wide_spec(), predicate=single)
        assert result is not None
        assert [job.job_id for job in result.spec.jobs] == [3]
        assert result.spec.horizon == 1


class TestCrossPathShrink:
    def test_unmutated_tree_has_no_divergence(self):
        spec = wide_spec(num_jobs=4)
        assert cross_path_divergence(spec) is None
        assert shrink_scenario(spec) is None

    def test_deq_perturbation_shrinks_fig6_set(self, monkeypatch):
        heavy = next(
            s for s in default_scenarios() if s.scenario_id == "fig6-heavy-abg"
        )
        _perturb_deq(monkeypatch)
        result = shrink_scenario(heavy)
        assert result is not None
        # acceptance bar: the fig6-scale failing job set reduces to <= 3 jobs
        assert len(result.spec.jobs) <= 3
        assert len(result.spec.jobs) < result.original_jobs
        assert result.divergence.kind == "field"
        assert result.spec.horizon is not None
        # the shrunk scenario still reproduces the divergence on its own
        again = cross_path_divergence(result.spec)
        assert again is not None
        assert again.to_payload() == result.divergence.to_payload()

    def test_regression_bundle_round_trip(self, tmp_path, monkeypatch):
        heavy = next(
            s for s in default_scenarios() if s.scenario_id == "fig6-heavy-abg"
        )
        with monkeypatch.context() as patched:
            _perturb_deq(patched)
            result = shrink_scenario(heavy)
            assert result is not None
            bundle = regression_bundle(result, shrunk_from="fig6-heavy-abg")
            path = save_golden_bundle(
                tmp_path / f"{bundle.scenario['scenario_id']}.json", bundle
            )
            loaded = load_golden_bundle(path)
            assert loaded.scenario["scenario_id"] == "fig6-heavy-abg-min"
            assert loaded.provenance["shrunk_from"] == "fig6-heavy-abg"
            assert loaded.provenance["shrink_evaluations"] == result.evaluations
            # while the kernel is still mutated the new fixture fails replay
            mutated = verify_traces([path])
            assert not mutated.passed
        # with the mutation reverted it documents the fixed behaviour: the
        # recorded reference was the (unmutated) serial path, so all three
        # execution paths replay it clean
        clean = verify_traces([path])
        assert clean.passed, clean.render()

    def test_shrink_result_describe_mentions_evaluations(self, monkeypatch):
        heavy = next(
            s for s in default_scenarios() if s.scenario_id == "fig6-heavy-abg"
        )
        _perturb_deq(monkeypatch)
        result = shrink_scenario(heavy)
        assert result is not None
        assert isinstance(result, ShrinkResult)
        assert "evaluation(s)" in result.describe()


class TestShrinkCli:
    def test_shrink_out_writes_minimal_fixture(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.goldens import fixture_paths, record_fixtures

        out = tmp_path / "goldens"
        shrunk = tmp_path / "shrunk"
        record_fixtures(
            out,
            [s for s in default_scenarios() if s.scenario_id == "fig6-heavy-abg"],
        )
        _perturb_deq(monkeypatch)
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "verify-traces",
                    "--fixtures",
                    str(out),
                    "--shrink-out",
                    str(shrunk),
                ]
            )
        assert exc.value.code == 1
        text = capsys.readouterr().out
        assert "shrunk" in text
        written = fixture_paths(shrunk)
        assert [p.stem for p in written] == ["fig6-heavy-abg-min"]
        loaded = load_golden_bundle(written[0])
        assert len(loaded.scenario["jobs"]) <= 3
