"""Unit tests for reporting (ASCII charts, CSV/JSON export) and trace
serialization."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.core.abg import AControl
from repro.engine.phased import PhasedJob
from repro.io.traces import (
    SCHEMA_VERSION,
    load_trace,
    load_traces,
    save_trace,
    save_traces,
    trace_from_dict,
    trace_to_dict,
)
from repro.report.ascii import bar_chart, line_chart, sparkline
from repro.report.export import rows_to_csv, rows_to_json, write_csv, write_json
from repro.sim.single import simulate_job


@dataclass(frozen=True)
class Row:
    name: str
    value: float


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 5, 3, 8])) == 4

    def test_constant_series(self):
        assert sparkline([2, 2, 2]) == "▁▁▁"

    def test_extremes(self):
        s = sparkline([0, 10])
        assert s[0] == "▁" and s[1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart(
            {"a": [(0, 0.0), (1, 1.0)], "b": [(0, 1.0), (1, 0.0)]},
            width=20,
            height=5,
            title="T",
            x_label="x",
            y_label="y",
        )
        assert "T" in chart
        assert "* a" in chart and "o b" in chart
        assert "*" in chart and "o" in chart

    def test_axis_labels(self):
        chart = line_chart({"s": [(2, 5.0), (10, 7.0)]}, width=30, height=4)
        assert "2" in chart and "10" in chart
        assert "5" in chart and "7" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_flat_series(self):
        chart = line_chart({"s": [(0, 3.0), (5, 3.0)]}, width=10, height=3)
        assert "3" in chart


class TestBarChart:
    def test_bars_scale(self):
        chart = bar_chart(["x", "yy"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])


class TestExport:
    def test_csv_of_dataclasses(self):
        text = rows_to_csv([Row("a", 1.5), Row("b", 2.0)])
        lines = text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.5"

    def test_csv_of_dicts(self):
        text = rows_to_csv([{"x": 1}, {"x": 2}])
        assert text.strip().splitlines() == ["x", "1", "2"]

    def test_json(self):
        data = json.loads(rows_to_json([Row("a", 1.0)]))
        assert data == [{"name": "a", "value": 1.0}]

    def test_write_files(self, tmp_path):
        p1 = write_csv([Row("a", 1.0)], tmp_path / "r.csv")
        p2 = write_json([Row("a", 1.0)], tmp_path / "r.json")
        assert p1.read_text().startswith("name,value")
        assert json.loads(p2.read_text())[0]["name"] == "a"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rows_to_csv([])
        with pytest.raises(ValueError):
            rows_to_json([])

    def test_bad_row_type(self):
        with pytest.raises(TypeError):
            rows_to_csv(["nope"])


def _sample_trace():
    job = PhasedJob([(1, 30), (5, 40), (1, 10)])
    return simulate_job(job, AControl(0.2), 16, quantum_length=25, job_id=9)


class TestTraceSerialization:
    def test_round_trip_dict(self):
        trace = _sample_trace()
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.job_id == trace.job_id
        assert restored.quantum_length == trace.quantum_length
        assert len(restored) == len(trace)
        for a, b in zip(restored, trace):
            assert a == b

    def test_round_trip_file(self, tmp_path):
        trace = _sample_trace()
        path = save_trace(trace, tmp_path / "trace.json")
        restored = load_trace(path)
        assert restored.total_work == trace.total_work
        assert restored.running_time == trace.running_time
        assert restored.measured_transition_factor() == pytest.approx(
            trace.measured_transition_factor()
        )

    def test_schema_checked(self):
        trace = _sample_trace()
        data = trace_to_dict(trace)
        data["schema"] = 999
        with pytest.raises(ValueError):
            trace_from_dict(data)

    def test_multi_trace_round_trip(self, tmp_path):
        traces = {1: _sample_trace(), 5: _sample_trace()}
        path = save_traces(traces, tmp_path / "set.json")
        restored = load_traces(path)
        assert set(restored) == {1, 5}
        assert restored[5].total_waste == traces[5].total_waste

    def test_multi_schema_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 0, "traces": {}}))
        with pytest.raises(ValueError):
            load_traces(path)

    def test_schema_version_constant(self):
        assert trace_to_dict(_sample_trace())["schema"] == SCHEMA_VERSION


class TestCliIntegration:
    def test_fig5_csv_and_plot(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "fig5.csv"
        assert (
            main(
                [
                    "fig5",
                    "--factors",
                    "2:30:13",
                    "--jobs",
                    "2",
                    "--plot",
                    "--csv",
                    str(csv_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert csv_path.read_text().startswith("transition_factor,")

    def test_fig4_plot(self, capsys):
        from repro.cli import main

        assert main(["fig4", "--plot"]) == 0
        assert "d(q) per quantum" in capsys.readouterr().out

    def test_stealing_command(self, capsys):
        from repro.cli import main

        assert main(["stealing"]) == 0
        out = capsys.readouterr().out
        assert "A-Steal" in out and "ABP" in out
