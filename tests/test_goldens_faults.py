"""Replay-under-faults: the verify-traces verdict must be byte-identical
with fault injection on and off (satellite of the golden-trace harness)."""

from __future__ import annotations

import pytest

from repro.core.abg import AControl
from repro.goldens import (
    ExplicitJob,
    ScenarioSpec,
    fixture_paths,
    record_fixtures,
    verify_traces,
)
from repro.runtime.faults import FaultPlan


def small_specs() -> list[ScenarioSpec]:
    def spec(scenario_id: str, widths: tuple[int, ...]) -> ScenarioSpec:
        return ScenarioSpec(
            scenario_id=scenario_id,
            policy="abg",
            policy_params=(("convergence_rate", 0.2),),
            allocator="deq",
            processors=4,
            quantum_length=50,
            max_quanta=10_000,
            jobs=tuple(
                ExplicitJob(
                    job_id=i, release_time=0, phases=((w, 120), (1, 60))
                )
                for i, w in enumerate(widths)
            ),
        )

    return [spec("faults-a", (1, 3)), spec("faults-b", (2, 2, 4))]


@pytest.fixture()
def fixtures(tmp_path):
    record_fixtures(tmp_path, small_specs())
    return fixture_paths(tmp_path)


class TestVerdictUnderFaults:
    def test_pass_report_identical_with_crash_and_transient_faults(self, fixtures):
        clean = verify_traces(fixtures, workers=2, retries=4)
        faulted = verify_traces(
            fixtures,
            workers=2,
            retries=4,
            faults=FaultPlan(
                seed=11,
                rate=0.45,
                kinds=("crash", "transient"),
                max_failures=2,
            ),
        )
        assert clean.passed and faulted.passed
        assert faulted.render() == clean.render()
        assert faulted.payload() == clean.payload()

    def test_pass_report_identical_when_hung_workers_are_reaped(self, fixtures):
        subset = fixtures[:1]
        clean = verify_traces(subset, workers=2, retries=3)
        faulted = verify_traces(
            subset,
            workers=2,
            retries=3,
            task_timeout=0.5,
            faults=FaultPlan(
                seed=3,
                rate=0.6,
                kinds=("hang",),
                max_failures=1,
                hang_seconds=2.0,
            ),
        )
        assert faulted.render() == clean.render()
        assert faulted.payload() == clean.payload()

    def test_fail_report_identical_under_faults(self, fixtures, monkeypatch):
        # workers=1 keeps replay in-process so the seeded kernel mutation is
        # visible; in-process crash/hang faults demote to transients and the
        # retry loop still converges on the same FAIL verdict
        orig = AControl.next_request_batch

        def drifted(self, **kwargs):
            out = orig(self, **kwargs)
            return None if out is None else out + 0.5

        monkeypatch.setattr(AControl, "next_request_batch", drifted)
        clean = verify_traces(fixtures, workers=1, retries=4)
        faulted = verify_traces(
            fixtures,
            workers=1,
            retries=4,
            faults=FaultPlan(
                seed=11,
                rate=0.45,
                kinds=("crash", "transient"),
                max_failures=2,
            ),
        )
        assert not clean.passed and not faulted.passed
        assert {o["status"] for o in clean.outcomes} == {"pass", "fail"}
        assert faulted.render() == clean.render()
        assert faulted.payload() == clean.payload()

    def test_cli_fault_flags_round_trip(self, fixtures, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "verify-traces",
            "--fixtures",
            str(tmp_path),
            "--workers",
            "2",
            "--retries",
            "4",
        ]
        assert main(argv) == 0
        clean_text = capsys.readouterr().out
        assert (
            main(
                argv
                + ["--faults", "seed=11:rate=0.45:kinds=crash,transient:max-failures=2"]
            )
            == 0
        )
        assert capsys.readouterr().out == clean_text
