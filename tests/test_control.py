"""Unit tests for the control-theoretic model (Section 4 / Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.signal
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.analysis import analyze_response
from repro.control.lti import FirstOrderLoop, step_response_of_requests
from repro.control.theory import theorem1_gain, theorem1_loop, verify_theorem1


class TestFirstOrderLoop:
    def test_pole_formula(self):
        loop = FirstOrderLoop(parallelism=10.0, gain=8.0)
        assert loop.pole == pytest.approx(0.2)

    def test_bibo_stability_window(self):
        assert FirstOrderLoop(10.0, 8.0).is_bibo_stable  # pole 0.2
        assert FirstOrderLoop(10.0, 19.0).is_bibo_stable  # pole -0.9
        assert not FirstOrderLoop(10.0, 21.0).is_bibo_stable  # pole -1.1
        assert not FirstOrderLoop(10.0, 0.0).is_bibo_stable  # pole 1 (integrator)

    def test_dc_gain_is_one_for_stable_loop(self):
        loop = FirstOrderLoop(7.0, theorem1_gain(7.0, 0.3))
        assert loop.dc_gain == pytest.approx(1.0)

    def test_dc_gain_infinite_at_pole_one(self):
        assert FirstOrderLoop(5.0, 0.0).dc_gain == float("inf")

    def test_transfer_function_value(self):
        loop = FirstOrderLoop(10.0, 8.0)
        # T(z) = 0.8 / (z - 0.2); at z = 1: 1.0
        assert loop.transfer(1.0) == pytest.approx(1.0)

    def test_request_response_closed_form_matches_recurrence(self):
        loop = FirstOrderLoop(12.0, theorem1_gain(12.0, 0.4))
        closed = loop.request_response(20, d1=1.0)
        iterated = loop.simulate_requests(20, d1=1.0)
        assert np.allclose(closed, iterated)

    def test_request_response_geometric(self):
        loop = theorem1_loop(10.0, 0.5)
        d = loop.request_response(5)
        err = np.abs(d - 10.0)
        assert np.allclose(err[1:] / err[:-1], 0.5)

    def test_matches_scipy_step_response(self):
        """Cross-check the closed loop against scipy's dlti step response."""
        a_par, r = 10.0, 0.2
        loop = theorem1_loop(a_par, r)
        k = loop.gain
        # T(z) = (K/A) / (z - (1 - K/A))
        system = scipy.signal.dlti([k / a_par], [1.0, -(1.0 - k / a_par)], dt=1)
        _, y = scipy.signal.dstep(system, n=16)
        ours = loop.output_step_response(16, d1=0.0)
        # scipy's step starts from zero initial condition, ours from d1=0
        assert np.allclose(np.squeeze(y), ours, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            FirstOrderLoop(0.0, 1.0)
        with pytest.raises(ValueError):
            FirstOrderLoop(5.0, 1.0).request_response(0)

    def test_step_response_of_requests(self):
        y = step_response_of_requests(np.array([1.0, 5.0, 10.0]), 10.0)
        assert np.allclose(y, [0.1, 0.5, 1.0])
        with pytest.raises(ValueError):
            step_response_of_requests(np.array([1.0]), 0.0)


class TestTheorem1Gain:
    def test_formula(self):
        assert theorem1_gain(10.0, 0.2) == pytest.approx(8.0)

    def test_places_pole_at_rate(self):
        for r in (0.0, 0.3, 0.9):
            loop = theorem1_loop(25.0, r)
            assert loop.pole == pytest.approx(r)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_gain(0.0, 0.2)
        with pytest.raises(ValueError):
            theorem1_gain(5.0, 1.0)


class TestVerifyTheorem1:
    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=120, deadline=None)
    def test_theorem_holds_everywhere(self, parallelism, rate):
        verdict = verify_theorem1(parallelism, rate)
        assert verdict.holds
        assert verdict.measured_rate == pytest.approx(rate, abs=1e-6)

    def test_verdict_fields(self):
        v = verify_theorem1(10.0, 0.2)
        assert v.bibo_stable
        assert v.zero_steady_state_error
        assert v.zero_overshoot
        assert v.convergence_rate_matches


class TestAnalyzeResponse:
    def test_perfect_convergence(self):
        loop = theorem1_loop(10.0, 0.2)
        m = analyze_response(loop.request_response(30), 10.0)
        assert m.bounded
        assert m.steady_state_error < 1e-6
        assert m.overshoot < 1e-6
        assert m.convergence_rate == pytest.approx(0.2, abs=0.05)
        assert m.oscillation_amplitude < 1e-6
        assert m.settling_quanta < 30

    def test_oscillating_series(self):
        d = np.array([1.0, 2, 4, 8, 16, 8, 16, 8, 16, 8, 16, 8])
        m = analyze_response(d, 10.0)
        assert m.bounded
        assert m.oscillation_amplitude == pytest.approx(8.0)
        assert m.steady_state_error > 1.0
        assert m.overshoot > 0.0
        assert m.settling_quanta == len(d)

    def test_unbounded_series(self):
        d = np.array([1.0, 10, 100, 1e4, 1e6])
        m = analyze_response(d, 2.0, bound_factor=100.0)
        assert not m.bounded

    def test_starts_at_target(self):
        d = np.full(10, 5.0)
        m = analyze_response(d, 5.0)
        assert m.steady_state_error == 0.0
        assert m.settling_quanta == 0
        assert np.isnan(m.convergence_rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_response([1.0], 5.0)
        with pytest.raises(ValueError):
            analyze_response([1.0, 2.0], 0.0)
        with pytest.raises(ValueError):
            analyze_response([1.0, 2.0], 5.0, tail_fraction=0.0)

    def test_overshoot_detected(self):
        d = np.array([1.0, 15.0, 10.0, 10.0, 10.0, 10.0])
        m = analyze_response(d, 10.0)
        assert m.overshoot == pytest.approx(5.0)
