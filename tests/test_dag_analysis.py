"""Unit tests for repro.dag.analysis."""

from __future__ import annotations

import pytest

from repro.dag import builders
from repro.dag.analysis import characteristics, greedy_time_lower_bound


class TestCharacteristics:
    def test_fork_join_summary(self):
        d = builders.fork_join_from_phases([(1, 3), (6, 2)])
        c = characteristics(d)
        assert c.work == 15
        assert c.span == 5
        assert c.average_parallelism == pytest.approx(3.0)
        assert c.max_level_width == 6
        assert c.min_level_width == 1

    def test_str_contains_notation(self):
        c = characteristics(builders.chain(3))
        assert "T1=3" in str(c)
        assert "Tinf=3" in str(c)


class TestGreedyTimeLowerBound:
    def test_span_dominates_with_many_processors(self):
        d = builders.fork_join_from_phases([(1, 3), (6, 2)])
        assert greedy_time_lower_bound(d, 100) == 5.0

    def test_work_dominates_with_one_processor(self):
        d = builders.wide_level(10)
        assert greedy_time_lower_bound(d, 1) == 10.0

    def test_crossover(self):
        d = builders.wide_level(10)  # T1=10, Tinf=1
        assert greedy_time_lower_bound(d, 5) == pytest.approx(2.0)

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            greedy_time_lower_bound(builders.chain(2), 0)
