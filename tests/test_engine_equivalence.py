"""Property-based cross-validation: the closed-form phased engine must match
the step-accurate explicit engine quantum-for-quantum on every fork-join job.

This is the load-bearing correctness argument for the fast engine used by all
large benchmarks (see repro/engine/phased.py's module docstring for why the
closed form holds)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.builders import fork_join_from_phases
from repro.engine.explicit import ExplicitExecutor
from repro.engine.phased import PhasedExecutor, PhasedJob

phases_strategy = st.lists(
    st.tuples(st.integers(1, 9), st.integers(1, 12)),
    min_size=1,
    max_size=5,
)

quanta_strategy = st.lists(
    st.tuples(st.integers(1, 12), st.integers(1, 15)),  # (allotment, max_steps)
    min_size=1,
    max_size=30,
)


def run_both(phases, quanta):
    """Run both engines over the same quantum schedule; pad the schedule by
    cycling so both always finish."""
    pe = PhasedExecutor(PhasedJob(phases))
    ee = ExplicitExecutor(fork_join_from_phases(phases), "breadth-first")
    results = []
    i = 0
    while not pe.finished:
        a, s = quanta[i % len(quanta)]
        i += 1
        r1 = pe.execute_quantum(a, s)
        r2 = ee.execute_quantum(a, s)
        results.append((r1, r2))
        assert i < 100_000, "runaway schedule"
    return pe, ee, results


class TestEngineEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(phases_strategy, quanta_strategy)
    def test_quantum_for_quantum_agreement(self, phases, quanta):
        pe, ee, results = run_both(phases, quanta)
        for r1, r2 in results:
            assert r1.work == r2.work
            assert r1.steps == r2.steps
            assert r1.finished == r2.finished
            assert r1.span == pytest.approx(r2.span, abs=1e-9)
        assert ee.finished

    @settings(max_examples=60, deadline=None)
    @given(phases_strategy, st.integers(1, 12))
    def test_constant_allotment_agreement(self, phases, allotment):
        pe = PhasedExecutor(PhasedJob(phases))
        ee = ExplicitExecutor(fork_join_from_phases(phases), "breadth-first")
        while not pe.finished:
            r1 = pe.execute_quantum(allotment, 7)
            r2 = ee.execute_quantum(allotment, 7)
            assert (r1.work, r1.steps, r1.finished) == (r2.work, r2.steps, r2.finished)
            assert r1.span == pytest.approx(r2.span, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(phases_strategy)
    def test_single_processor_takes_work_steps(self, phases):
        pe = PhasedExecutor(PhasedJob(phases))
        r = pe.execute_quantum(1, 10_000)
        assert r.finished
        assert r.steps == PhasedJob(phases).work

    @settings(max_examples=60, deadline=None)
    @given(phases_strategy, st.integers(1, 12))
    def test_graham_bound(self, phases, allotment):
        """Greedy two-optimality: T <= T1/a + Tinf for constant allotment."""
        job = PhasedJob(phases)
        pe = PhasedExecutor(job)
        r = pe.execute_quantum(allotment, 10_000)
        assert r.finished
        assert r.steps <= job.work / allotment + job.span

    @settings(max_examples=60, deadline=None)
    @given(phases_strategy, quanta_strategy)
    def test_conservation_laws(self, phases, quanta):
        job = PhasedJob(phases)
        pe = PhasedExecutor(job)
        total_work, total_span, i = 0, 0.0, 0
        while not pe.finished:
            a, s = quanta[i % len(quanta)]
            i += 1
            r = pe.execute_quantum(a, s)
            total_work += r.work
            total_span += r.span
            # per-quantum sanity (Section 5.1)
            assert 0 <= r.work <= a * r.steps
            assert 0 <= r.span <= r.steps + 1e-9
            if not r.finished:
                assert r.steps == s  # only the last quantum may stop early
        assert total_work == job.work
        assert total_span == pytest.approx(job.span)

    @settings(max_examples=40, deadline=None)
    @given(phases_strategy, st.integers(1, 12))
    def test_work_efficiency_plus_span_efficiency(self, phases, allotment):
        """Inequality (5): alpha(q) + beta(q) >= 1 on full quanta."""
        job = PhasedJob(phases)
        pe = PhasedExecutor(job)
        while not pe.finished:
            r = pe.execute_quantum(allotment, 6)
            if r.steps == 6:  # full quantum
                alpha = r.work / (allotment * r.steps)
                beta = r.span / r.steps
                assert alpha + beta >= 1.0 - 1e-9
