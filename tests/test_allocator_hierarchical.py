"""Unit and determinism tests for the hierarchical sharded allocator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocators import HierarchicalAllocator
from repro.allocators.equipartition import DynamicEquiPartitioning


def arrays(requests: dict[int, int]) -> tuple[np.ndarray, np.ndarray]:
    ids = np.array(sorted(requests), dtype=np.int64)
    reqs = np.array([requests[int(j)] for j in ids], dtype=np.int64)
    return ids, reqs


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HierarchicalAllocator(0)
        with pytest.raises(ValueError):
            HierarchicalAllocator(8, rebalance_interval=0)
        with pytest.raises(ValueError):
            HierarchicalAllocator(8, imbalance_threshold=-0.1)

    def test_group_partition_budgets(self):
        alloc = HierarchicalAllocator(group_size=16)
        alloc.allocate({0: 4}, 50)
        # ceil(50/16) = 4 groups; 50 = 13+13+12+12
        assert alloc.group_count == 4
        assert alloc.group_budgets() == [13, 13, 12, 12]
        assert sum(alloc.group_budgets()) == 50

    def test_machine_size_pinned(self):
        alloc = HierarchicalAllocator(group_size=8)
        alloc.allocate({0: 1}, 32)
        with pytest.raises(ValueError, match="bound to P=32"):
            alloc.allocate({0: 1}, 64)

    def test_repr_round_trips_parameters(self):
        alloc = HierarchicalAllocator(4, rebalance_interval=7, imbalance_threshold=0.5)
        assert "group_size=4" in repr(alloc)
        assert "rebalance_interval=7" in repr(alloc)


class TestValidation:
    def test_zero_request_rejected(self):
        alloc = HierarchicalAllocator(group_size=8)
        with pytest.raises(ValueError, match="at least one processor"):
            alloc.allocate({0: 4, 1: 0}, 16)

    def test_too_many_jobs_rejected(self):
        alloc = HierarchicalAllocator(group_size=2)
        with pytest.raises(ValueError, match=r"\|J\| <= P"):
            alloc.allocate({j: 1 for j in range(5)}, 4)

    def test_invalid_total(self):
        alloc = HierarchicalAllocator(group_size=8)
        with pytest.raises(ValueError):
            alloc.allocate({0: 1}, 0)


class TestMembership:
    def test_admission_spreads_by_load_ratio(self):
        alloc = HierarchicalAllocator(group_size=4)
        alloc.allocate({j: 2 for j in range(4)}, 8)  # 2 groups of 4
        members = alloc.membership()
        # round-robin by count/budget with ties to the lowest index
        assert members == {0: 0, 1: 1, 2: 0, 3: 1}

    def test_membership_sticky_between_boundaries(self):
        alloc = HierarchicalAllocator(group_size=4, rebalance_interval=100)
        alloc.allocate({j: 8 for j in range(4)}, 8)
        before = alloc.membership()
        for _ in range(5):
            alloc.allocate({j: 8 for j in range(4)}, 8)
        assert alloc.membership() == before

    def test_departed_jobs_are_purged(self):
        alloc = HierarchicalAllocator(group_size=4)
        alloc.allocate({j: 2 for j in range(4)}, 8)
        alloc.allocate({0: 2, 3: 2}, 8)
        assert set(alloc.membership()) == {0, 3}

    def test_group_capacity_respected(self):
        # 2 groups x 2 processors: each group holds at most 2 jobs.
        alloc = HierarchicalAllocator(group_size=2)
        alloc.allocate({j: 1 for j in range(4)}, 4)
        counts = [0, 0]
        for g in alloc.membership().values():
            counts[g] += 1
        assert counts == [2, 2]


class TestAllocation:
    def test_every_job_gets_at_least_one(self):
        rng = np.random.default_rng(0)
        alloc = HierarchicalAllocator(group_size=8)
        for _ in range(20):
            n = int(rng.integers(1, 24))
            requests = {j: int(rng.integers(1, 40)) for j in range(n)}
            grants = alloc.allocate(requests, 24)
            assert all(g >= 1 for g in grants.values())
            assert sum(grants.values()) <= 24
            for j, g in grants.items():
                assert g <= max(requests[j], 1) or g <= requests[j]

    def test_scalar_and_array_paths_lockstep(self):
        """allocate() delegates to allocate_batch(): same instance, the two
        entry points interleave freely and agree exactly."""
        a = HierarchicalAllocator(group_size=8, rebalance_interval=3)
        b = HierarchicalAllocator(group_size=8, rebalance_interval=3)
        rng = np.random.default_rng(42)
        requests = {j: int(rng.integers(1, 30)) for j in range(10)}
        for q in range(12):
            if rng.random() < 0.3:  # churn the job set
                requests = {
                    j: int(rng.integers(1, 30))
                    for j in sorted(rng.choice(16, size=8, replace=False).tolist())
                }
            mapping = a.allocate(requests, 32)
            ids, reqs = arrays(requests)
            grants = b.allocate_batch(ids, reqs, 32)
            assert mapping == {int(j): int(g) for j, g in zip(ids, grants)}

    def test_single_group_matches_flat_deq(self):
        """With one group covering the whole machine the hierarchy is
        exactly its inner DEQ."""
        hier = HierarchicalAllocator(group_size=64)
        deq = DynamicEquiPartitioning()
        rng = np.random.default_rng(9)
        for _ in range(10):
            requests = {j: int(rng.integers(1, 50)) for j in range(6)}
            assert hier.allocate(requests, 64) == deq.allocate(requests, 64)

    def test_deterministic_across_instances(self):
        runs = []
        for _ in range(2):
            alloc = HierarchicalAllocator(group_size=8, rebalance_interval=2)
            history = []
            rng = np.random.default_rng(5)
            for _ in range(10):
                requests = {j: int(rng.integers(1, 20)) for j in range(8)}
                history.append(alloc.allocate(requests, 24))
            runs.append(history)
        assert runs[0] == runs[1]


class TestRebalancing:
    def test_imbalance_triggers_migration(self):
        # Two groups of 8.  Jobs land alternately; make group 0's desire
        # huge and group 1's tiny, then cross the boundary.
        alloc = HierarchicalAllocator(
            group_size=8, rebalance_interval=2, imbalance_threshold=0.1
        )
        requests = {0: 16, 1: 1, 2: 16, 3: 1}
        alloc.allocate(requests, 16)  # quantum 0: admit 0,2 -> g0; 1,3 -> g1
        assert alloc.membership() == {0: 0, 1: 1, 2: 0, 3: 1}
        alloc.allocate(requests, 16)  # quantum 1
        alloc.allocate(requests, 16)  # quantum 2: boundary, rebalance runs
        members = alloc.membership()
        assert members != {0: 0, 1: 1, 2: 0, 3: 1}
        # ties on request break to the lowest id: job 0 leaves group 0,
        # then job 1 flows back to level the pair
        assert members == {0: 1, 1: 0, 2: 0, 3: 1}

    def test_rebalance_is_self_quenching(self):
        alloc = HierarchicalAllocator(
            group_size=8, rebalance_interval=1, imbalance_threshold=0.1
        )
        requests = {0: 12, 1: 2, 2: 12, 3: 2}
        for _ in range(6):
            alloc.allocate(requests, 16)
        settled = alloc.membership()
        for _ in range(6):
            alloc.allocate(requests, 16)
        assert alloc.membership() == settled

    def test_balanced_load_never_migrates(self):
        alloc = HierarchicalAllocator(group_size=8, rebalance_interval=1)
        requests = {j: 8 for j in range(4)}
        alloc.allocate(requests, 16)
        before = alloc.membership()
        for _ in range(5):
            alloc.allocate(requests, 16)
        assert alloc.membership() == before

    def test_quanta_to_rebalance_counts_down(self):
        alloc = HierarchicalAllocator(group_size=8, rebalance_interval=5)
        assert alloc.quanta_to_rebalance() == 5
        alloc.allocate({0: 4}, 16)
        assert alloc.quanta_to_rebalance() == 4
        for _ in range(4):
            alloc.allocate({0: 4}, 16)
        # quantum counter at 5: the boundary allocation has run
        assert alloc.quanta_to_rebalance() == 5


class TestFixedPoint:
    def _probe_args(self, alloc, requests, total):
        ids, reqs = arrays(requests)
        grants_map = alloc.allocate(requests, total)
        grants = np.array([grants_map[int(j)] for j in ids], dtype=np.int64)
        return ids, reqs, grants, total

    def test_probe_certifies_stable_allocation(self):
        alloc = HierarchicalAllocator(group_size=8, rebalance_interval=100)
        requests = {0: 4, 1: 4, 2: 4, 3: 4}
        ids, reqs, grants, total = self._probe_args(alloc, requests, 16)
        span = alloc.fixed_point_probe(ids, reqs, grants, total, 10)
        assert span == 10

    def test_probe_truncates_at_rebalance_boundary(self):
        alloc = HierarchicalAllocator(group_size=8, rebalance_interval=5)
        requests = {0: 4, 1: 4, 2: 4, 3: 4}
        ids, reqs, grants, total = self._probe_args(alloc, requests, 16)
        # one allocation served: 4 quanta remain before the boundary
        assert alloc.fixed_point_probe(ids, reqs, grants, total, 100) == 4
        # land exactly on the boundary: nothing may be skipped
        for _ in range(4):
            alloc.allocate(requests, 16)
        assert alloc.quanta_to_rebalance() == 5
        assert alloc._quantum % alloc.rebalance_interval == 0
        assert alloc.fixed_point_probe(ids, reqs, grants, total, 100) == 0

    def test_probe_is_side_effect_free(self):
        alloc = HierarchicalAllocator(group_size=8, rebalance_interval=50)
        requests = {0: 9, 1: 9}
        ids, reqs, grants, total = self._probe_args(alloc, requests, 16)
        before = alloc.allocate(requests, 16)
        alloc2 = HierarchicalAllocator(group_size=8, rebalance_interval=50)
        ids2, reqs2, grants2, _ = self._probe_args(alloc2, requests, 16)
        for _ in range(3):
            alloc2.fixed_point_probe(ids2, reqs2, grants2, 16, 7)
        assert alloc2.allocate(requests, 16) == before

    def test_advance_matches_repeated_calls(self):
        """Probe+advance over a span leaves the same state as serving the
        span one allocation at a time."""
        requests = {0: 9, 1: 9, 2: 3, 3: 3}
        stepped = HierarchicalAllocator(group_size=8, rebalance_interval=50)
        jumped = HierarchicalAllocator(group_size=8, rebalance_interval=50)
        ids, reqs = arrays(requests)
        g0 = stepped.allocate_batch(ids, reqs, 16)
        g1 = jumped.allocate_batch(ids, reqs, 16)
        assert (g0 == g1).all()
        span = jumped.allocation_fixed_point(ids, reqs, g1, 16, 6)
        assert span == 6
        for _ in range(span):
            stepped.allocate_batch(ids, reqs, 16)
        assert (
            stepped.allocate_batch(ids, reqs, 16)
            == jumped.allocate_batch(ids, reqs, 16)
        ).all()
        assert stepped._quantum == jumped._quantum

    def test_probe_unbound_returns_zero(self):
        alloc = HierarchicalAllocator(group_size=8)
        ids = np.array([0], dtype=np.int64)
        one = np.array([1], dtype=np.int64)
        assert alloc.fixed_point_probe(ids, one, one, 16, 5) == 0


class TestShardedProtocol:
    def test_begin_window_returns_membership(self):
        alloc = HierarchicalAllocator(group_size=4)
        ids = np.array([3, 7, 9], dtype=np.int64)
        reqs = np.array([2, 2, 2], dtype=np.int64)
        membership = alloc.begin_window(ids, reqs, 8)
        assert set(membership) == {3, 7, 9}
        assert membership == alloc.membership()

    def test_advance_window_moves_boundary(self):
        alloc = HierarchicalAllocator(group_size=4, rebalance_interval=10)
        ids = np.array([0], dtype=np.int64)
        reqs = np.array([2], dtype=np.int64)
        alloc.begin_window(ids, reqs, 8)
        alloc.advance_window(7)
        assert alloc.quanta_to_rebalance() == 3

    def test_group_allocator_round_trip(self):
        alloc = HierarchicalAllocator(group_size=4)
        alloc.allocate({0: 2, 1: 2}, 8)
        inner = alloc.group_allocator(0)
        assert isinstance(inner, DynamicEquiPartitioning)
        replacement = DynamicEquiPartitioning()
        alloc.set_group_allocator(0, replacement)
        assert alloc.group_allocator(0) is replacement
