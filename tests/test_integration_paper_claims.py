"""Integration tests: the paper's headline claims at reduced scale.

These runs use the same drivers as the full benchmarks but with fewer
jobs/sets; the *direction* and rough magnitude of every claim must hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.trim import classify_quanta
from repro.core.abg import AControl
from repro.core.agreedy import AGreedy
from repro.experiments import run_fig5, run_fig6
from repro.sim.single import simulate_job
from repro.workloads.forkjoin import ForkJoinGenerator

pytestmark = pytest.mark.slow


class TestFigure5Claims:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(
            factors=tuple(range(2, 101, 7)), jobs_per_factor=8, seed=1234
        )

    def test_abg_roughly_20pct_faster(self, result):
        """Paper: 'an average 20% improvement in running time'."""
        assert 0.08 <= result.mean_time_improvement <= 0.35

    def test_abg_roughly_half_the_waste(self, result):
        """Paper: 'an average 50% reduction in wasted processor cycles'."""
        assert 0.30 <= result.mean_waste_reduction <= 0.70

    def test_abg_flat_in_transition_factor(self, result):
        """Paper: 'increasing the value of transition factor does not seem to
        have much effect on ABG'."""
        norms = [p.abg_time_norm for p in result.points if p.transition_factor >= 10]
        assert max(norms) - min(norms) < 0.35

    def test_agreedy_worse_at_high_factors(self, result):
        """A-Greedy's time degrades relative to ABG as the factor grows."""
        low = [p.time_ratio for p in result.points if p.transition_factor <= 10]
        high = [p.time_ratio for p in result.points if p.transition_factor >= 60]
        assert np.mean(high) > np.mean(low)

    def test_abg_never_slower_on_average(self, result):
        for p in result.points:
            assert p.time_ratio > 0.95


class TestFigure6Claims:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(num_sets=40, load_range=(0.2, 6.0), seed=99)

    def test_light_load_advantage(self, result):
        """Paper: ABG wins by 10-15% on average under light load; we accept a
        broad band around it at this reduced scale."""
        makespan_ratio, response_ratio = result.light_load_ratios(cutoff=1.5)
        assert 1.03 <= makespan_ratio <= 1.40
        assert 1.03 <= response_ratio <= 1.40

    def test_heavy_load_convergence(self, result):
        """Paper: under heavy load the schedulers are comparable."""
        makespan_ratio, response_ratio = result.heavy_load_ratios(cutoff=4.0)
        assert makespan_ratio == pytest.approx(1.0, abs=0.06)
        assert response_ratio == pytest.approx(1.0, abs=0.06)

    def test_advantage_shrinks_with_load(self, result):
        light_m, _ = result.light_load_ratios(cutoff=1.5)
        heavy_m, _ = result.heavy_load_ratios(cutoff=4.0)
        assert light_m > heavy_m


class TestPerJobDominance:
    def test_abg_dominates_agreedy_per_job(self):
        """On the unconstrained single-job workload ABG should win (or tie)
        on waste for nearly every job, not just on average."""
        rng = np.random.default_rng(77)
        gen = ForkJoinGenerator(1000)
        wins = 0
        total = 0
        for c in (5, 20, 50, 90):
            for _ in range(5):
                job = gen.generate(rng, c)
                abg = simulate_job(job, AControl(0.2), 128, quantum_length=1000)
                ag = simulate_job(job, AGreedy(), 128, quantum_length=1000)
                total += 1
                if abg.total_waste <= ag.total_waste:
                    wins += 1
        assert wins / total >= 0.9


class TestUnconstrainedRunsAreDeductible:
    def test_no_accounted_quanta_when_satisfied(self):
        """With every request granted there is no deprivation, so trim
        analysis classifies every full quantum deductible."""
        rng = np.random.default_rng(3)
        job = ForkJoinGenerator(1000).generate(rng, 10)
        trace = simulate_job(job, AControl(0.2), 128, quantum_length=1000)
        classes = classify_quanta(trace)
        assert classes.counts[0] == 0
        assert classes.counts[1] == len(trace.full_quanta)
