"""Unit and property tests for OS allocators and availability policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.availability import (
    ConstantAvailability,
    InverseParallelismAvailability,
    RandomAvailability,
    TraceAvailability,
)
from repro.allocators.base import validate_allocation
from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.allocators.roundrobin import RoundRobinAllocator

from conftest import make_record


# ---------------------------------------------------------------------------
# Availability policies
# ---------------------------------------------------------------------------


class TestConstantAvailability:
    def test_constant(self):
        p = ConstantAvailability(64)
        assert p.available(1, None) == 64
        assert p.available(99, make_record()) == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantAvailability(0)


class TestInverseParallelismAvailability:
    def test_high_before_first_quantum(self):
        p = InverseParallelismAvailability(high=100, low=2, cutoff=4.0)
        assert p.available(1, None) == 100

    def test_high_when_parallelism_low(self):
        p = InverseParallelismAvailability(high=100, low=2, cutoff=4.0)
        serial = make_record(request=1.0, allotment=1, work=1000, span=1000.0)
        assert p.available(2, serial) == 100

    def test_low_when_parallelism_high(self):
        p = InverseParallelismAvailability(high=100, low=2, cutoff=4.0)
        parallel = make_record(request=4.0, allotment=4, work=4000, span=500.0)  # A=8
        assert p.available(2, parallel) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            InverseParallelismAvailability(high=2, low=5, cutoff=1.0)
        with pytest.raises(ValueError):
            InverseParallelismAvailability(high=5, low=2, cutoff=-1.0)


class TestRandomAvailability:
    def test_within_bounds(self):
        p = RandomAvailability(np.random.default_rng(0), 3, 9)
        vals = [p.available(q, None) for q in range(1, 200)]
        assert min(vals) >= 3 and max(vals) <= 9

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomAvailability(np.random.default_rng(0), 0, 5)
        with pytest.raises(ValueError):
            RandomAvailability(np.random.default_rng(0), 6, 5)


class TestTraceAvailability:
    def test_replay_and_repeat_last(self):
        p = TraceAvailability([4, 7, 2])
        assert [p.available(q, None) for q in (1, 2, 3, 4, 5)] == [4, 7, 2, 2, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceAvailability([])
        with pytest.raises(ValueError):
            TraceAvailability([1, 0])


# ---------------------------------------------------------------------------
# Dynamic equi-partitioning
# ---------------------------------------------------------------------------


class TestDEQBasics:
    def test_all_requests_fit(self):
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate({1: 10, 2: 20}, 100)
        assert alloc == {1: 10, 2: 20}

    def test_equal_split_when_all_want_more(self):
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate({1: 100, 2: 100, 3: 100}, 90)
        assert alloc == {1: 30, 2: 30, 3: 30}

    def test_small_requester_declines_and_redistribution(self):
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate({1: 5, 2: 100, 3: 100}, 99)
        assert alloc[1] == 5
        assert alloc[2] == 47 and alloc[3] == 47

    def test_cascading_redistribution(self):
        deq = DynamicEquiPartitioning()
        # shares: 100/4=25 -> job1 (10) satisfied; 90/3=30 -> job2 (30)
        # satisfied; 60/2=30 each for the big two
        alloc = deq.allocate({1: 10, 2: 30, 3: 99, 4: 99}, 100)
        assert alloc == {1: 10, 2: 30, 3: 30, 4: 30}

    def test_remainder_rotation(self):
        deq = DynamicEquiPartitioning()
        a1 = deq.allocate({1: 10, 2: 10, 3: 10}, 8)
        a2 = deq.allocate({1: 10, 2: 10, 3: 10}, 8)
        a3 = deq.allocate({1: 10, 2: 10, 3: 10}, 8)
        # 8 = 2+3+3 split; the extra processors rotate across quanta
        for a in (a1, a2, a3):
            assert sorted(a.values()) == [2, 3, 3]
        assert [a1[1], a2[1], a3[1]].count(3) == 2  # job 1 favored in 2 of 3

    def test_single_job(self):
        deq = DynamicEquiPartitioning()
        assert deq.allocate({7: 13}, 128) == {7: 13}
        assert deq.allocate({7: 500}, 128) == {7: 128}

    def test_empty_requests(self):
        assert DynamicEquiPartitioning().allocate({}, 10) == {}

    def test_more_jobs_than_processors_rejected(self):
        with pytest.raises(ValueError):
            DynamicEquiPartitioning().allocate({1: 1, 2: 1, 3: 1}, 2)

    def test_zero_request_rejected(self):
        with pytest.raises(ValueError):
            DynamicEquiPartitioning().allocate({1: 0}, 4)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            DynamicEquiPartitioning().allocate({1: 1}, 0)

    def test_flags(self):
        deq = DynamicEquiPartitioning()
        assert deq.fair and deq.non_reserving


requests_strategy = st.dictionaries(
    keys=st.integers(0, 50),
    values=st.integers(1, 200),
    min_size=1,
    max_size=16,
)


class TestDEQProperties:
    @settings(max_examples=200, deadline=None)
    @given(requests_strategy, st.integers(16, 300))
    def test_invariants(self, requests, total):
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate(requests, total)
        validate_allocation(requests, alloc, total)

    @settings(max_examples=200, deadline=None)
    @given(requests_strategy, st.integers(16, 300))
    def test_non_reserving(self, requests, total):
        """No processor idles while some job is still deprived."""
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate(requests, total)
        leftover = total - sum(alloc.values())
        if leftover > 0:
            assert all(alloc[j] == requests[j] for j in requests)

    @settings(max_examples=200, deadline=None)
    @given(requests_strategy, st.integers(16, 300))
    def test_fair(self, requests, total):
        """Deprived jobs all receive (nearly) equal shares, and no satisfied
        job gets more than any deprived job's share."""
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate(requests, total)
        deprived = [alloc[j] for j in requests if alloc[j] < requests[j]]
        if deprived:
            assert max(deprived) - min(deprived) <= 1
            top = min(deprived)
            for j in requests:
                if alloc[j] == requests[j]:
                    assert alloc[j] <= top + 1


class TestDEQArrayPath:
    """allocate_batch must agree with allocate bit for bit — outputs AND
    internal rotation state — because the simulator mixes both entry points
    across quanta."""

    @staticmethod
    def _random_case(rng):
        n = int(rng.integers(1, 17))
        total = int(rng.integers(n, 200))
        ids = np.sort(rng.choice(1000, size=n, replace=False)).astype(np.int64)
        reqs = rng.integers(1, 60, size=n).astype(np.int64)
        return ids, reqs, total

    def test_matches_mapping_path_with_rotation_lockstep(self):
        rng = np.random.default_rng(7)
        dict_deq = DynamicEquiPartitioning()
        arr_deq = DynamicEquiPartitioning()
        for _ in range(300):
            ids, reqs, total = self._random_case(rng)
            expected = dict_deq.allocate(
                {int(i): int(r) for i, r in zip(ids, reqs)}, total
            )
            got = arr_deq.allocate_batch(ids, reqs, total)
            assert got is not None
            assert got.tolist() == [expected[int(i)] for i in ids]
            assert arr_deq._rotation == dict_deq._rotation

    def test_entry_points_interchangeable_on_one_instance(self):
        """Alternating entry points on one allocator evolves the same state
        as a dict-only twin."""
        rng = np.random.default_rng(8)
        mixed = DynamicEquiPartitioning()
        twin = DynamicEquiPartitioning()
        for step in range(100):
            ids, reqs, total = self._random_case(rng)
            requests = {int(i): int(r) for i, r in zip(ids, reqs)}
            expected = twin.allocate(requests, total)
            if step % 2:
                got = dict(mixed.allocate(requests, total))
            else:
                arr = mixed.allocate_batch(ids, reqs, total)
                got = {int(i): int(a) for i, a in zip(ids, arr)}
            assert got == expected

    def test_validation_errors_match_mapping_path(self):
        deq = DynamicEquiPartitioning()
        one = np.asarray([5], dtype=np.int64)
        with pytest.raises(ValueError, match="at least one processor"):
            deq.allocate_batch(one, np.asarray([3], dtype=np.int64), 0)
        with pytest.raises(ValueError, match="job 5 must request at least one"):
            deq.allocate_batch(one, np.asarray([0], dtype=np.int64), 4)
        ids = np.arange(3, dtype=np.int64)
        reqs = np.ones(3, dtype=np.int64)
        with pytest.raises(ValueError, match=r"\|J\| <= P"):
            deq.allocate_batch(ids, reqs, 2)

    def test_base_allocator_has_no_array_path(self):
        from repro.allocators.base import Allocator

        class MappingOnly(Allocator):
            batch_fallback = True  # scalar-only by design (ABG301 marker)

            def allocate(self, requests, total):
                return {j: 1 for j in requests}

        assert (
            MappingOnly().allocate_batch(
                np.asarray([1], dtype=np.int64), np.asarray([2], dtype=np.int64), 4
            )
            is None
        )


class TestRoundRobinArrayPath:
    """Round-robin's allocate_batch must agree with allocate bit for bit —
    outputs AND rotation state — across interleaved entry points."""

    def test_matches_mapping_path_across_quanta(self):
        rng = np.random.default_rng(7)
        scalar = RoundRobinAllocator()
        batched = RoundRobinAllocator()
        mixed = RoundRobinAllocator()
        for q in range(40):
            n = int(rng.integers(1, 17))
            total = int(rng.integers(n, 200))
            ids = np.sort(rng.choice(1000, size=n, replace=False)).astype(np.int64)
            reqs = rng.integers(1, 60, size=n).astype(np.int64)
            requests = {int(j): int(d) for j, d in zip(ids, reqs)}
            expected = scalar.allocate(requests, total)
            arr = batched.allocate_batch(ids, reqs, total)
            assert arr is not None and arr.dtype == np.int64
            assert {int(i): int(a) for i, a in zip(ids, arr)} == expected
            if q % 2 == 0:
                got = dict(mixed.allocate(requests, total))
            else:
                marr = mixed.allocate_batch(ids, reqs, total)
                got = {int(i): int(a) for i, a in zip(ids, marr)}
            assert got == expected
        assert batched._rotation == scalar._rotation == mixed._rotation

    def test_empty_batch_does_not_advance_rotation(self):
        rr = RoundRobinAllocator()
        empty = np.zeros(0, dtype=np.int64)
        out = rr.allocate_batch(empty, empty, 8)
        assert out is not None and out.size == 0
        assert rr._rotation == 0 and rr.allocate({}, 8) == {}

    def test_validation_errors_match_mapping_path(self):
        rr = RoundRobinAllocator()
        one = np.asarray([5], dtype=np.int64)
        with pytest.raises(ValueError, match="at least one processor"):
            rr.allocate_batch(one, np.asarray([3], dtype=np.int64), 0)
        with pytest.raises(ValueError, match="job 5 must request at least one"):
            rr.allocate_batch(one, np.asarray([0], dtype=np.int64), 4)
        ids = np.arange(3, dtype=np.int64)
        reqs = np.ones(3, dtype=np.int64)
        with pytest.raises(ValueError, match=r"\|J\| <= P"):
            rr.allocate_batch(ids, reqs, 2)


class TestValidateAllocationArrays:
    ids = np.asarray([3, 7, 9], dtype=np.int64)
    reqs = np.asarray([4, 10, 2], dtype=np.int64)

    def test_valid_passes(self):
        from repro.allocators.base import validate_allocation_arrays

        validate_allocation_arrays(
            self.ids, self.reqs, np.asarray([4, 6, 2], dtype=np.int64), 12
        )

    def test_shape_mismatch(self):
        from repro.allocators.base import validate_allocation_arrays

        with pytest.raises(AssertionError, match="exactly the requesting jobs"):
            validate_allocation_arrays(
                self.ids, self.reqs, np.asarray([4, 6], dtype=np.int64), 12
            )

    def test_oversubscription(self):
        from repro.allocators.base import validate_allocation_arrays

        with pytest.raises(AssertionError, match="more processors than exist"):
            validate_allocation_arrays(
                self.ids, self.reqs, np.asarray([4, 10, 2], dtype=np.int64), 10
            )

    def test_negative_allotment_names_job(self):
        from repro.allocators.base import validate_allocation_arrays

        with pytest.raises(AssertionError, match="job 7 got a negative"):
            validate_allocation_arrays(
                self.ids, self.reqs, np.asarray([4, -1, 2], dtype=np.int64), 12
            )

    def test_over_request_names_job(self):
        from repro.allocators.base import validate_allocation_arrays

        with pytest.raises(AssertionError, match="job 9 got more than it requested"):
            validate_allocation_arrays(
                self.ids, self.reqs, np.asarray([4, 5, 3], dtype=np.int64), 20
            )

    def test_starved_job_with_enough_processors(self):
        from repro.allocators.base import validate_allocation_arrays

        with pytest.raises(AssertionError, match="every job must receive"):
            validate_allocation_arrays(
                self.ids, self.reqs, np.asarray([4, 8, 0], dtype=np.int64), 12
            )


# ---------------------------------------------------------------------------
# Round-robin
# ---------------------------------------------------------------------------


class TestRoundRobin:
    def test_equal_share_capped_by_request(self):
        rr = RoundRobinAllocator()
        alloc = rr.allocate({1: 2, 2: 100}, 10)
        assert alloc[1] == 2
        assert alloc[2] == 5  # no redistribution of job 1's declined share

    def test_not_non_reserving(self):
        rr = RoundRobinAllocator()
        assert rr.fair and not rr.non_reserving

    def test_remainder_rotates(self):
        rr = RoundRobinAllocator()
        a1 = rr.allocate({1: 10, 2: 10, 3: 10}, 10)
        a2 = rr.allocate({1: 10, 2: 10, 3: 10}, 10)
        assert sorted(a1.values()) == [3, 3, 4]
        assert a1 != a2 or True  # rotation shifts the bonus

    @settings(max_examples=150, deadline=None)
    @given(requests_strategy, st.integers(16, 300))
    def test_invariants(self, requests, total):
        rr = RoundRobinAllocator()
        alloc = rr.allocate(requests, total)
        validate_allocation(requests, alloc, total)

    def test_more_jobs_than_processors_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinAllocator().allocate({1: 1, 2: 1}, 1)

    def test_empty(self):
        assert RoundRobinAllocator().allocate({}, 5) == {}
