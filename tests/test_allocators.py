"""Unit and property tests for OS allocators and availability policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.availability import (
    ConstantAvailability,
    InverseParallelismAvailability,
    RandomAvailability,
    TraceAvailability,
)
from repro.allocators.base import validate_allocation
from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.allocators.roundrobin import RoundRobinAllocator

from conftest import make_record


# ---------------------------------------------------------------------------
# Availability policies
# ---------------------------------------------------------------------------


class TestConstantAvailability:
    def test_constant(self):
        p = ConstantAvailability(64)
        assert p.available(1, None) == 64
        assert p.available(99, make_record()) == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantAvailability(0)


class TestInverseParallelismAvailability:
    def test_high_before_first_quantum(self):
        p = InverseParallelismAvailability(high=100, low=2, cutoff=4.0)
        assert p.available(1, None) == 100

    def test_high_when_parallelism_low(self):
        p = InverseParallelismAvailability(high=100, low=2, cutoff=4.0)
        serial = make_record(request=1.0, allotment=1, work=1000, span=1000.0)
        assert p.available(2, serial) == 100

    def test_low_when_parallelism_high(self):
        p = InverseParallelismAvailability(high=100, low=2, cutoff=4.0)
        parallel = make_record(request=4.0, allotment=4, work=4000, span=500.0)  # A=8
        assert p.available(2, parallel) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            InverseParallelismAvailability(high=2, low=5, cutoff=1.0)
        with pytest.raises(ValueError):
            InverseParallelismAvailability(high=5, low=2, cutoff=-1.0)


class TestRandomAvailability:
    def test_within_bounds(self):
        p = RandomAvailability(np.random.default_rng(0), 3, 9)
        vals = [p.available(q, None) for q in range(1, 200)]
        assert min(vals) >= 3 and max(vals) <= 9

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomAvailability(np.random.default_rng(0), 0, 5)
        with pytest.raises(ValueError):
            RandomAvailability(np.random.default_rng(0), 6, 5)


class TestTraceAvailability:
    def test_replay_and_repeat_last(self):
        p = TraceAvailability([4, 7, 2])
        assert [p.available(q, None) for q in (1, 2, 3, 4, 5)] == [4, 7, 2, 2, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceAvailability([])
        with pytest.raises(ValueError):
            TraceAvailability([1, 0])


# ---------------------------------------------------------------------------
# Dynamic equi-partitioning
# ---------------------------------------------------------------------------


class TestDEQBasics:
    def test_all_requests_fit(self):
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate({1: 10, 2: 20}, 100)
        assert alloc == {1: 10, 2: 20}

    def test_equal_split_when_all_want_more(self):
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate({1: 100, 2: 100, 3: 100}, 90)
        assert alloc == {1: 30, 2: 30, 3: 30}

    def test_small_requester_declines_and_redistribution(self):
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate({1: 5, 2: 100, 3: 100}, 99)
        assert alloc[1] == 5
        assert alloc[2] == 47 and alloc[3] == 47

    def test_cascading_redistribution(self):
        deq = DynamicEquiPartitioning()
        # shares: 100/4=25 -> job1 (10) satisfied; 90/3=30 -> job2 (30)
        # satisfied; 60/2=30 each for the big two
        alloc = deq.allocate({1: 10, 2: 30, 3: 99, 4: 99}, 100)
        assert alloc == {1: 10, 2: 30, 3: 30, 4: 30}

    def test_remainder_rotation(self):
        deq = DynamicEquiPartitioning()
        a1 = deq.allocate({1: 10, 2: 10, 3: 10}, 8)
        a2 = deq.allocate({1: 10, 2: 10, 3: 10}, 8)
        a3 = deq.allocate({1: 10, 2: 10, 3: 10}, 8)
        # 8 = 2+3+3 split; the extra processors rotate across quanta
        for a in (a1, a2, a3):
            assert sorted(a.values()) == [2, 3, 3]
        assert [a1[1], a2[1], a3[1]].count(3) == 2  # job 1 favored in 2 of 3

    def test_single_job(self):
        deq = DynamicEquiPartitioning()
        assert deq.allocate({7: 13}, 128) == {7: 13}
        assert deq.allocate({7: 500}, 128) == {7: 128}

    def test_empty_requests(self):
        assert DynamicEquiPartitioning().allocate({}, 10) == {}

    def test_more_jobs_than_processors_rejected(self):
        with pytest.raises(ValueError):
            DynamicEquiPartitioning().allocate({1: 1, 2: 1, 3: 1}, 2)

    def test_zero_request_rejected(self):
        with pytest.raises(ValueError):
            DynamicEquiPartitioning().allocate({1: 0}, 4)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            DynamicEquiPartitioning().allocate({1: 1}, 0)

    def test_flags(self):
        deq = DynamicEquiPartitioning()
        assert deq.fair and deq.non_reserving


requests_strategy = st.dictionaries(
    keys=st.integers(0, 50),
    values=st.integers(1, 200),
    min_size=1,
    max_size=16,
)


class TestDEQProperties:
    @settings(max_examples=200, deadline=None)
    @given(requests_strategy, st.integers(16, 300))
    def test_invariants(self, requests, total):
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate(requests, total)
        validate_allocation(requests, alloc, total)

    @settings(max_examples=200, deadline=None)
    @given(requests_strategy, st.integers(16, 300))
    def test_non_reserving(self, requests, total):
        """No processor idles while some job is still deprived."""
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate(requests, total)
        leftover = total - sum(alloc.values())
        if leftover > 0:
            assert all(alloc[j] == requests[j] for j in requests)

    @settings(max_examples=200, deadline=None)
    @given(requests_strategy, st.integers(16, 300))
    def test_fair(self, requests, total):
        """Deprived jobs all receive (nearly) equal shares, and no satisfied
        job gets more than any deprived job's share."""
        deq = DynamicEquiPartitioning()
        alloc = deq.allocate(requests, total)
        deprived = [alloc[j] for j in requests if alloc[j] < requests[j]]
        if deprived:
            assert max(deprived) - min(deprived) <= 1
            top = min(deprived)
            for j in requests:
                if alloc[j] == requests[j]:
                    assert alloc[j] <= top + 1


# ---------------------------------------------------------------------------
# Round-robin
# ---------------------------------------------------------------------------


class TestRoundRobin:
    def test_equal_share_capped_by_request(self):
        rr = RoundRobinAllocator()
        alloc = rr.allocate({1: 2, 2: 100}, 10)
        assert alloc[1] == 2
        assert alloc[2] == 5  # no redistribution of job 1's declined share

    def test_not_non_reserving(self):
        rr = RoundRobinAllocator()
        assert rr.fair and not rr.non_reserving

    def test_remainder_rotates(self):
        rr = RoundRobinAllocator()
        a1 = rr.allocate({1: 10, 2: 10, 3: 10}, 10)
        a2 = rr.allocate({1: 10, 2: 10, 3: 10}, 10)
        assert sorted(a1.values()) == [3, 3, 4]
        assert a1 != a2 or True  # rotation shifts the bonus

    @settings(max_examples=150, deadline=None)
    @given(requests_strategy, st.integers(16, 300))
    def test_invariants(self, requests, total):
        rr = RoundRobinAllocator()
        alloc = rr.allocate(requests, total)
        validate_allocation(requests, alloc, total)

    def test_more_jobs_than_processors_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinAllocator().allocate({1: 1, 2: 1}, 1)

    def test_empty(self):
        assert RoundRobinAllocator().allocate({}, 5) == {}
