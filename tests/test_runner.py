"""Tests for the batch experiment runner."""

from __future__ import annotations

import json

import pytest

from repro.experiments import runner as runner_mod
from repro.experiments.runner import (
    DEFAULT_TASK_TIMEOUTS,
    SCALES,
    default_task_timeout,
    resume_status,
    run_everything,
)


class TestRunner:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        return run_everything(out, scale="smoke"), out

    def test_all_experiments_ran(self, result):
        runner_result, _ = result
        names = [o.name for o in runner_result.outcomes]
        assert "fig2" in names and "fig5" in names and "fig6" in names
        assert "controllers" in names and "stealing" in names
        assert len(names) == len(set(names)) >= 17

    def test_artifacts_written_and_parseable(self, result):
        runner_result, out = result
        for outcome in runner_result.outcomes:
            data = json.loads((out / f"{outcome.name}.json").read_text())
            assert isinstance(data, list)
            assert len(data) == outcome.rows
            assert outcome.rows >= 1

    def test_report_written(self, result):
        runner_result, out = result
        report = (out / "REPORT.md").read_text()
        assert runner_result.report_path == out / "REPORT.md"
        assert "## fig5" in report
        assert "## bounds" in report
        assert "scale: smoke" in report

    def test_total_time_positive(self, result):
        runner_result, _ = result
        assert runner_result.total_seconds > 0

    def test_unknown_scale_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            run_everything(tmp_path, scale="galactic")

    def test_resume_status_fresh_dir(self, tmp_path):
        completed, total = resume_status(tmp_path, scale="smoke")
        assert completed == 0
        assert total >= 17

    def test_resume_status_after_full_run(self, result):
        _, out = result
        completed, total = resume_status(out, scale="smoke")
        assert completed == total >= 17

    def test_resume_status_scale_mismatch(self, result):
        """A journal written at one scale replays nothing at another (the
        journal keys embed the scale and experiment parameters)."""
        _, out = result
        completed, _total = resume_status(out, scale="reduced")
        assert completed == 0

    def test_scales_constant(self):
        assert SCALES == ("smoke", "reduced", "full")


class TestRunnerCli:
    def test_cli_all_smoke(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["all", "--out", str(tmp_path), "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "ran 17 experiments" in out
        assert (tmp_path / "REPORT.md").exists()

    def test_cli_resume_reports_checkpoint_progress(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["all", "--out", str(tmp_path), "--scale", "smoke"]) == 0
        capsys.readouterr()
        assert (
            main(["all", "--resume", "--out", str(tmp_path), "--scale", "smoke"])
            == 0
        )
        out = capsys.readouterr().out
        assert "resuming: " in out
        assert "(100%)" in out  # everything journaled -> full replay


class TestTaskTimeoutDefaults:
    def test_every_scale_has_a_default(self):
        assert set(DEFAULT_TASK_TIMEOUTS) == set(SCALES)

    def test_defaults_grow_with_scale(self):
        assert default_task_timeout("smoke") == 120.0
        assert default_task_timeout("reduced") == 900.0
        assert default_task_timeout("full") == 3600.0
        assert (
            default_task_timeout("smoke")
            < default_task_timeout("reduced")
            < default_task_timeout("full")
        )

    def test_unknown_scale_has_no_default(self):
        assert default_task_timeout("galactic") is None

    def _capture_map(self, monkeypatch) -> dict:
        captured: dict = {}

        def fake_map(fn, items, **kwargs):
            captured.update(kwargs)
            return []

        monkeypatch.setattr(runner_mod, "map_deterministic", fake_map)
        return captured

    def test_run_everything_applies_scale_default(self, tmp_path, monkeypatch):
        captured = self._capture_map(monkeypatch)
        run_everything(tmp_path, scale="smoke")
        assert captured["task_timeout"] == 120.0

    def test_run_everything_honors_explicit_timeout(self, tmp_path, monkeypatch):
        captured = self._capture_map(monkeypatch)
        run_everything(tmp_path, scale="smoke", task_timeout=7.5)
        assert captured["task_timeout"] == 7.5


class TestCompactJournalFlag:
    def test_compact_journal_folds_and_resumes(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments.runner import JOURNAL_DIRNAME
        from repro.runtime.checkpoint import SEGMENT_FILENAME

        assert (
            main(
                [
                    "all", "--out", str(tmp_path), "--scale", "smoke",
                    "--compact-journal",
                ]
            )
            == 0
        )
        capsys.readouterr()
        journal_dir = tmp_path / JOURNAL_DIRNAME
        files = sorted(p.name for p in journal_dir.glob("*.json"))
        assert files == [SEGMENT_FILENAME]
        # the compacted journal resumes exactly like per-unit records
        completed, total = resume_status(tmp_path, scale="smoke")
        assert completed == total >= 17
        assert (
            main(["all", "--resume", "--out", str(tmp_path), "--scale", "smoke"])
            == 0
        )
        out = capsys.readouterr().out
        assert "(100%)" in out
