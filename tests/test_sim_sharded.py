"""Byte-identity proof of the sharded executor against the flat loop.

``simulate_job_set(..., shards=N)`` advances each allocation group through a
window of quanta per supervised worker dispatch; ``shards=None`` is the flat
centralized per-quantum loop.  The claim mirrors the batch/superstep claims:
traces are *bit-identical* at any shard count, on every workload — mid-run
releases, migrations at rebalancing boundaries, fault-injected dispatches,
serial and pooled workers, superstep on and off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocators import (
    Allocator,
    DynamicEquiPartitioning,
    HierarchicalAllocator,
    RoundRobinAllocator,
)
from repro.core.abg import AControl
from repro.core.agreedy import AGreedy
from repro.core.overhead import ReallocationOverhead
from repro.dag import builders
from repro.engine.phased import PhasedJob
from repro.runtime.faults import FAULTS_ENV_VAR
from repro.sim.jobs import JobSpec
from repro.sim.multi import MultiJobResult, simulate_job_set


def random_specs(
    n: int,
    seed: int,
    *,
    max_release: int = 4000,
    policy=None,
) -> list[JobSpec]:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        phases = [
            (int(rng.integers(1, 32)), int(rng.integers(40, 400)))
            for _ in range(int(rng.integers(1, 4)))
        ]
        out.append(
            JobSpec(
                job=PhasedJob(phases),
                feedback=policy or AControl(),
                release_time=int(rng.integers(0, max_release)),
            )
        )
    return out


def assert_identical(a: MultiJobResult, b: MultiJobResult) -> None:
    assert set(a.traces) == set(b.traces)
    assert list(a.traces) == list(b.traces)  # same finished-dict order
    assert a.quanta_elapsed == b.quanta_elapsed
    assert a.processors == b.processors
    assert a.released == b.released
    for jid, trace in a.traces.items():
        assert list(trace.records) == list(b.traces[jid].records), f"job {jid}"


def hier(**overrides) -> HierarchicalAllocator:
    params = dict(group_size=12, rebalance_interval=8, imbalance_threshold=0.2)
    params.update(overrides)
    return HierarchicalAllocator(**params)


class TestHierarchicalShardIdentity:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_traces_identical_at_any_shard_count(self, shards):
        specs = random_specs(24, seed=101)
        flat = simulate_job_set(specs, hier(), 48, quantum_length=100)
        sharded = simulate_job_set(
            specs, hier(), 48, quantum_length=100, shards=shards
        )
        assert_identical(flat, sharded)

    def test_auto_shards(self):
        specs = random_specs(12, seed=7)
        flat = simulate_job_set(specs, hier(), 36, quantum_length=50)
        sharded = simulate_job_set(
            specs, hier(), 36, quantum_length=50, shards="auto"
        )
        assert_identical(flat, sharded)

    def test_superstep_off_also_identical(self):
        specs = random_specs(16, seed=23)
        flat = simulate_job_set(
            specs, hier(), 48, quantum_length=100, superstep="off"
        )
        sharded = simulate_job_set(
            specs, hier(), 48, quantum_length=100, superstep="off", shards=3
        )
        assert_identical(flat, sharded)

    def test_migrations_cross_windows(self):
        """A tight rebalancing interval forces job migrations between
        windows (slots exported from one group kernel into another)."""
        specs = random_specs(20, seed=55, max_release=1)
        allocator = hier(rebalance_interval=2, imbalance_threshold=0.05)
        flat = simulate_job_set(specs, allocator, 40, quantum_length=80)
        allocator2 = hier(rebalance_interval=2, imbalance_threshold=0.05)
        sharded = simulate_job_set(
            specs, allocator2, 40, quantum_length=80, shards=4
        )
        assert_identical(flat, sharded)
        # the scenario actually rebalanced: membership moved at least once
        assert allocator.group_count > 1

    def test_reallocation_overhead(self):
        specs = random_specs(10, seed=3, max_release=1000)
        oh = ReallocationOverhead(per_processor=0.5, fixed=7)
        flat = simulate_job_set(specs, hier(), 32, quantum_length=60, overhead=oh)
        sharded = simulate_job_set(
            specs, hier(), 32, quantum_length=60, overhead=oh, shards=2
        )
        assert_identical(flat, sharded)

    def test_agreedy_policy(self):
        specs = random_specs(12, seed=31, policy=AGreedy())
        flat = simulate_job_set(specs, hier(), 36, quantum_length=70)
        sharded = simulate_job_set(specs, hier(), 36, quantum_length=70, shards=3)
        assert_identical(flat, sharded)

    def test_late_releases_hit_idle_machine(self):
        """Job gaps exercise the coordinator's idle fast-forward."""
        jobs = [PhasedJob([(4, 100)]), PhasedJob([(2, 50)]), PhasedJob([(8, 60)])]
        specs = [
            JobSpec(job=j, feedback=AControl(), release_time=r)
            for j, r in zip(jobs, [0, 20_000, 90_000])
        ]
        flat = simulate_job_set(specs, hier(group_size=8), 16, quantum_length=100)
        sharded = simulate_job_set(
            specs, hier(group_size=8), 16, quantum_length=100, shards=2
        )
        assert_identical(flat, sharded)


class TestFlatAllocatorsSharded:
    """Non-hierarchical array-native allocators run as a single group
    spanning the machine — the windowed execution (and its group-local
    supersteps) must still reproduce the flat loop exactly."""

    @pytest.mark.parametrize(
        "make", [DynamicEquiPartitioning, RoundRobinAllocator]
    )
    def test_single_group_identity(self, make):
        specs = random_specs(18, seed=77)
        flat = simulate_job_set(specs, make(), 40, quantum_length=100)
        sharded = simulate_job_set(
            specs, make(), 40, quantum_length=100, shards=2
        )
        assert_identical(flat, sharded)


class TestFaultTolerance:
    def test_identity_under_injected_faults(self, monkeypatch):
        """Transient worker faults retry the window from pristine state;
        the gathered traces stay byte-identical to the clean flat run."""
        specs = random_specs(16, seed=13)
        flat = simulate_job_set(specs, hier(), 36, quantum_length=100)
        monkeypatch.setenv(
            FAULTS_ENV_VAR, "seed=11:rate=0.6:kinds=transient:max-failures=2"
        )
        sharded = simulate_job_set(
            specs, hier(), 36, quantum_length=100, shards=4, retries=3
        )
        assert_identical(flat, sharded)


class TestValidation:
    def test_bad_shard_values_rejected(self):
        specs = random_specs(4, seed=1)
        with pytest.raises(ValueError, match="shard count"):
            simulate_job_set(specs, hier(), 16, shards=0)
        with pytest.raises(ValueError, match="unknown shards mode"):
            simulate_job_set(specs, hier(), 16, shards="many")  # type: ignore[arg-type]

    def test_shards_one_is_the_flat_loop(self):
        specs = random_specs(6, seed=2)
        flat = simulate_job_set(specs, hier(), 16, quantum_length=100)
        one = simulate_job_set(specs, hier(), 16, quantum_length=100, shards=1)
        assert_identical(flat, one)

    def test_batch_off_conflicts_with_sharding(self):
        specs = random_specs(4, seed=1)
        with pytest.raises(ValueError, match="batched kernel"):
            simulate_job_set(specs, hier(), 16, shards=2, batch="off")

    def test_mapping_only_allocator_rejected(self):
        class MappingOnly(Allocator):
            fair = False
            non_reserving = False

            def allocate(self, requests, total):
                return {j: 1 for j in requests}

        specs = random_specs(4, seed=1)
        with pytest.raises(ValueError, match="array-native"):
            simulate_job_set(specs, MappingOnly(), 16, shards=2)

    def test_non_batchable_job_rejected(self):
        dag = builders.fork_join_from_phases([(1, 2), (4, 3)])
        specs = [JobSpec(job=dag, feedback=AControl(), engine="reference")]
        with pytest.raises(ValueError, match="not batchable"):
            simulate_job_set(specs, DynamicEquiPartitioning(), 16, shards=2)

    def test_duplicate_ids_rejected(self):
        spec = JobSpec(job=PhasedJob([(1, 1)]), feedback=AControl(), job_id=5)
        with pytest.raises(ValueError, match="duplicate"):
            simulate_job_set([spec, spec], hier(), 16, shards=2)


class TestScaleSmoke:
    def test_thousands_of_jobs_many_groups(self):
        """A reduced cut of the giant-scale scenario: hundreds of jobs over
        many groups, identical at 4 shards."""
        specs = random_specs(200, seed=91, max_release=2000)
        flat = simulate_job_set(
            specs, hier(group_size=64, rebalance_interval=25), 512,
            quantum_length=100,
        )
        sharded = simulate_job_set(
            specs, hier(group_size=64, rebalance_interval=25), 512,
            quantum_length=100, shards=4,
        )
        assert_identical(flat, sharded)
        assert len(flat.traces) == 200
