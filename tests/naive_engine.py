"""A deliberately naive reference scheduler used only by tests.

Recomputes the ready set from scratch every step with plain set operations
(O(V^2) overall) and sorts candidates explicitly.  Slow and obviously
correct — the production engines are validated against it.
"""

from __future__ import annotations

from repro.dag.graph import Dag

__all__ = ["naive_quantum"]


class NaiveState:
    def __init__(self, dag: Dag):
        self.dag = dag
        self.done: set[int] = set()

    def ready(self) -> list[int]:
        return [
            t
            for t in range(self.dag.num_tasks)
            if t not in self.done
            and all(p in self.done for p in self.dag.predecessors(t))
        ]

    def step(self, allotment: int, discipline: str) -> list[int]:
        ready = self.ready()
        if discipline == "breadth-first":
            ready.sort(key=lambda t: (self.dag.level_of(t), t))
        scheduled = ready[: min(allotment, len(ready))]
        self.done.update(scheduled)
        return scheduled

    @property
    def finished(self) -> bool:
        return len(self.done) == self.dag.num_tasks


def naive_quantum(
    state: NaiveState, allotment: int, max_steps: int, discipline: str = "breadth-first"
) -> tuple[int, float, int, bool]:
    """(work, span, steps, finished) of one quantum, first principles."""
    level_sizes = state.dag.level_sizes
    completed_per_level = [0] * (state.dag.num_levels + 1)
    work = 0
    steps = 0
    while steps < max_steps and not state.finished:
        scheduled = state.step(allotment, discipline)
        steps += 1
        work += len(scheduled)
        for t in scheduled:
            completed_per_level[state.dag.level_of(t)] += 1
    span = sum(
        completed_per_level[lvl + 1] / level_sizes[lvl]
        for lvl in range(state.dag.num_levels)
    )
    return work, float(span), steps, state.finished
