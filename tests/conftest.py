"""Shared fixtures for the ABG reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Phase, PhasedJob
from repro.core.types import QuantumRecord


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def simple_phases() -> list[tuple[int, int]]:
    """A serial-parallel-serial fork-join shape used across engine tests."""
    return [(1, 50), (10, 30), (1, 20)]


@pytest.fixture
def simple_job(simple_phases) -> PhasedJob:
    return PhasedJob(simple_phases)


def make_record(
    *,
    index: int = 1,
    request: float = 4.0,
    request_int: int | None = None,
    available: int = 128,
    allotment: int | None = None,
    work: int | None = None,
    span: float = 100.0,
    steps: int = 1000,
    quantum_length: int = 1000,
    start_step: int = 0,
) -> QuantumRecord:
    """Build a valid QuantumRecord with sensible defaults for tests."""
    import math

    if request_int is None:
        request_int = max(1, math.ceil(request - 1e-9))
    if allotment is None:
        allotment = min(request_int, available)
    if work is None:
        work = allotment * steps  # perfectly efficient by default
    return QuantumRecord(
        index=index,
        request=request,
        request_int=request_int,
        available=available,
        allotment=allotment,
        work=work,
        span=span,
        steps=steps,
        quantum_length=quantum_length,
        start_step=start_step,
    )
