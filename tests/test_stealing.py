"""Unit and integration tests for the work-stealing substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import builders
from repro.sim.single import simulate_job
from repro.stealing.asteal import ABPPolicy, ASteal, make_abp, make_asteal
from repro.stealing.deque import WorkStealingDeque
from repro.stealing.executor import WorkStealingExecutor


class TestDeque:
    def test_lifo_for_owner(self):
        d = WorkStealingDeque()
        d.push_bottom(1)
        d.push_bottom(2)
        assert d.pop_bottom() == 2
        assert d.pop_bottom() == 1
        assert d.pop_bottom() is None

    def test_fifo_for_thief(self):
        d = WorkStealingDeque()
        d.push_bottom(1)
        d.push_bottom(2)
        assert d.steal_top() == 1
        assert d.steal_top() == 2
        assert d.steal_top() is None

    def test_owner_and_thief_opposite_ends(self):
        d = WorkStealingDeque()
        for t in (1, 2, 3):
            d.push_bottom(t)
        assert d.steal_top() == 1
        assert d.pop_bottom() == 3
        assert len(d) == 1

    def test_drain(self):
        d = WorkStealingDeque()
        d.push_bottom(1)
        d.push_bottom(2)
        assert d.drain() == [1, 2]
        assert not d

    def test_bool_and_len(self):
        d = WorkStealingDeque()
        assert not d and len(d) == 0
        d.push_bottom(5)
        assert d and len(d) == 1


class TestWorkStealingExecutor:
    def test_serial_chain(self):
        ex = WorkStealingExecutor(builders.chain(10), np.random.default_rng(0))
        res = ex.execute_quantum(1, 100)
        assert res.finished
        assert res.work == 10
        assert res.steps == 10

    def test_work_conservation(self):
        dag = builders.fork_join_from_phases([(1, 5), (6, 8), (1, 3)])
        ex = WorkStealingExecutor(dag, np.random.default_rng(1))
        total = 0
        while not ex.finished:
            total += ex.execute_quantum(4, 7).work
        assert total == dag.work

    def test_span_fractions_sum(self):
        dag = builders.fork_join_from_phases([(3, 6), (1, 2)])
        ex = WorkStealingExecutor(dag, np.random.default_rng(2))
        span = 0.0
        while not ex.finished:
            span += ex.execute_quantum(3, 5).span
        assert span == pytest.approx(dag.span)

    def test_determinism_given_seed(self):
        dag = builders.fork_join_from_phases([(1, 4), (8, 10)])
        runs = []
        for _ in range(2):
            ex = WorkStealingExecutor(dag, np.random.default_rng(7))
            trace = []
            while not ex.finished:
                r = ex.execute_quantum(3, 6)
                trace.append((r.work, r.steps))
            runs.append(trace)
        assert runs[0] == runs[1]

    def test_worker_growth_and_mugging(self):
        dag = builders.fork_join_from_phases([(12, 20)])
        ex = WorkStealingExecutor(dag, np.random.default_rng(3))
        ex.execute_quantum(8, 5)
        ex.execute_quantum(2, 5)  # shrink: muggings happen
        assert ex.stats.muggings >= 6
        ex.execute_quantum(10, 200)  # grow again and finish
        assert ex.finished

    def test_steal_stats_populate(self):
        dag = builders.fork_join_from_phases([(1, 30), (8, 30)])
        ex = WorkStealingExecutor(dag, np.random.default_rng(4))
        while not ex.finished:
            ex.execute_quantum(8, 10)
        # the serial phase forces 7 workers to attempt steals constantly
        assert ex.stats.steal_attempts > 0
        assert ex.stats.successful_steals > 0
        assert 0.0 < ex.stats.steal_success_rate < 1.0

    def test_no_steals_single_worker(self):
        ex = WorkStealingExecutor(builders.chain(5), np.random.default_rng(5))
        ex.execute_quantum(1, 10)
        assert ex.stats.idle_cycles == 0
        assert ex.stats.steal_attempts == 0

    def test_current_parallelism(self):
        ex = WorkStealingExecutor(builders.wide_level(6), np.random.default_rng(6))
        assert ex.current_parallelism == 6.0
        ex.execute_quantum(6, 100)  # stealing needs ramp-up steps to spread
        assert ex.finished
        assert ex.current_parallelism == 0.0

    def test_finished_guard(self):
        ex = WorkStealingExecutor(builders.chain(1), np.random.default_rng(0))
        ex.execute_quantum(1, 2)
        with pytest.raises(RuntimeError):
            ex.execute_quantum(1, 1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(1, 5), st.integers(1, 8)), min_size=1, max_size=3),
        st.integers(1, 6),
        st.integers(0, 1000),
    )
    def test_always_terminates_and_conserves(self, phases, allotment, seed):
        dag = builders.fork_join_from_phases(phases)
        ex = WorkStealingExecutor(dag, np.random.default_rng(seed))
        total = 0
        guard = 0
        while not ex.finished:
            total += ex.execute_quantum(allotment, 10).work
            guard += 1
            assert guard < 10_000
        assert total == dag.work


class TestASteal:
    def test_name(self):
        assert ASteal().name.startswith("A-Steal")

    def test_inherits_agreedy_rules(self):
        from conftest import make_record

        p = ASteal()
        rec = make_record(request=8.0, request_int=8, allotment=8, work=8000, span=1000.0)
        assert p.next_request(rec) == 16.0

    def test_factories(self):
        dag = builders.chain(3)
        ex, policy = make_asteal(dag, np.random.default_rng(0))
        assert isinstance(ex, WorkStealingExecutor)
        assert isinstance(policy, ASteal)
        ex, abp = make_abp(dag, np.random.default_rng(0), 16)
        assert abp.first_request() == 16.0
        assert abp.name == "ABP(P=16)"


class TestIntegration:
    def test_asteal_adapts_abp_does_not(self):
        """A-Steal releases processors during serial phases; ABP holds the
        whole machine and wastes it (the related-work comparison)."""
        phases = [(1, 120), (8, 120), (1, 120)]
        dag = builders.fork_join_from_phases(phases)

        ex1 = WorkStealingExecutor(dag, np.random.default_rng(11))
        asteal_trace = simulate_job(ex1, ASteal(), 32, quantum_length=40)

        ex2 = WorkStealingExecutor(dag, np.random.default_rng(11))
        abp_trace = simulate_job(ex2, ABPPolicy(32), 32, quantum_length=40)

        assert asteal_trace.total_waste < abp_trace.total_waste / 2
        assert max(r.allotment for r in abp_trace) == 32
        assert min(r.allotment for r in asteal_trace.records[:-1]) <= 4

    def test_stealing_compare_driver(self):
        from repro.experiments import run_stealing_compare

        rows = run_stealing_compare(num_jobs=2, iterations=2, phase_levels=80)
        by_name = {r.scheduler: r for r in rows}
        assert set(by_name) == {"ABG", "A-Steal", "ABP"}
        # feedback beats no-feedback on waste by a wide margin
        assert by_name["A-Steal"].waste_norm < by_name["ABP"].waste_norm / 2
        assert by_name["ABG"].waste_norm <= by_name["A-Steal"].waste_norm * 1.2
        # ABP runs fast but occupies the whole machine
        assert by_name["ABP"].avg_allotment == pytest.approx(32.0, abs=0.5)


class TestMultiprogrammedStealing:
    def test_asteal_job_set_under_deq(self):
        """Executor factories let work-stealing jobs run in the
        multiprogrammed simulator (the He et al. two-level setting for
        A-Steal)."""
        import numpy as np

        from repro.allocators.equipartition import DynamicEquiPartitioning
        from repro.sim.jobs import JobSpec
        from repro.sim.multi import simulate_job_set

        dags = [
            builders.fork_join_from_phases([(1, 40), (6, 50)]),
            builders.fork_join_from_phases([(4, 80)]),
        ]
        specs = [
            JobSpec(
                job=(lambda d=d, i=i: WorkStealingExecutor(d, np.random.default_rng(i))),
                feedback=ASteal(),
                job_id=i,
            )
            for i, d in enumerate(dags)
        ]
        result = simulate_job_set(
            specs, DynamicEquiPartitioning(), 16, quantum_length=25
        )
        for i, dag in enumerate(dags):
            assert result.traces[i].total_work == dag.work

    def test_factory_returning_wrong_type_rejected(self):
        from repro.sim.jobs import make_executor

        with pytest.raises(TypeError):
            make_executor(lambda: "not an executor")
