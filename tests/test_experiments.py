"""Tests for the experiment drivers (small-scale runs of every figure)."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    bin_by_load,
    run_allocator_ablation,
    run_bounds_check,
    run_discipline_ablation,
    run_fig1,
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_quantum_ablation,
    run_rate_ablation,
    run_theorem1,
    run_transient,
)
from repro.core.abg import AControl


class TestFig2:
    def test_matches_paper_exactly(self):
        r = run_fig2()
        assert r.quantum_work == 12
        assert r.quantum_span == pytest.approx(2.4)
        assert r.avg_parallelism == pytest.approx(5.0)
        assert r.matches_paper


class TestFig1AndFig4:
    def test_fig1_oscillation(self):
        r = run_fig1(parallelism=10, num_quanta=12, quantum_length=200)
        assert set(r.requests[4:]) == {8.0, 16.0}
        assert r.peak_request == 16.0

    def test_fig4_abg_monotone_no_overshoot(self):
        abg, _ = run_fig4(parallelism=10, num_quanta=8, quantum_length=200)
        reqs = abg.requests
        assert all(b >= a for a, b in zip(reqs, reqs[1:]))
        assert max(reqs) <= 10.0 + 1e-9

    def test_fig4_matches_equation3(self):
        abg, _ = run_fig4(
            parallelism=10, num_quanta=5, quantum_length=200, convergence_rate=0.2
        )
        d = 1.0
        for observed in abg.requests:
            assert observed == pytest.approx(d)
            d = 0.2 * d + 0.8 * 10.0

    def test_fig4_agreedy_overshoots(self):
        _, ag = run_fig4(parallelism=10, num_quanta=8, quantum_length=200)
        assert max(ag.requests) > 10.0

    def test_transient_parallelism_measured_correctly(self):
        r = run_transient(AControl(0.2), parallelism=7, num_quanta=6, quantum_length=100)
        assert all(a == pytest.approx(7.0) for a in r.measured_parallelism)

    def test_transient_validation(self):
        with pytest.raises(ValueError):
            run_transient(AControl(), parallelism=0)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(factors=(2, 20, 60), jobs_per_factor=4, seed=7)

    def test_point_per_factor(self, result):
        assert [p.transition_factor for p in result.points] == [2, 20, 60]

    def test_abg_beats_agreedy_on_average(self, result):
        assert result.mean_time_ratio > 1.0
        assert result.mean_waste_ratio > 1.0

    def test_normalized_times_at_least_one(self, result):
        for p in result.points:
            assert p.abg_time_norm >= 1.0
            assert p.agreedy_time_norm >= 1.0

    def test_improvement_properties(self, result):
        assert 0.0 < result.mean_time_improvement < 1.0
        assert 0.0 < result.mean_waste_reduction < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_fig5(factors=(2,), jobs_per_factor=0)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(num_sets=10, load_range=(0.3, 4.0), seed=11)

    def test_points_sorted_by_load(self, result):
        loads = [p.load for p in result.points]
        assert loads == sorted(loads)

    def test_normalized_metrics_at_least_one(self, result):
        for p in result.points:
            assert p.abg_makespan_norm >= 1.0 - 1e-9
            assert p.agreedy_makespan_norm >= 1.0 - 1e-9
            assert p.abg_response_norm >= 1.0 - 1e-9

    def test_binning_covers_all_points(self, result):
        bins = bin_by_load(result, num_bins=4)
        assert sum(b.count for b in bins) == len(result.points)

    def test_ratio_helpers(self, result):
        lm, lr = result.light_load_ratios(cutoff=None)
        hm, hr = result.heavy_load_ratios(cutoff=None)
        assert lm > 0 and lr > 0 and hm > 0 and hr > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_fig6(num_sets=0)
        with pytest.raises(ValueError):
            run_fig6(num_sets=1, load_range=(2.0, 1.0))


class TestTheorem1Driver:
    def test_rows(self):
        rows = run_theorem1(parallelisms=(5,), rates=(0.0, 0.2), num_quanta=12)
        abg_rows = [r for r in rows if r.policy.startswith("ABG")]
        ag_rows = [r for r in rows if r.policy == "A-Greedy"]
        assert len(abg_rows) == 2 and len(ag_rows) == 1
        for r in abg_rows:
            assert r.analytic_holds
            assert r.sim_steady_state_error < 0.05
            assert r.sim_overshoot < 0.05
        assert ag_rows[0].sim_oscillation > 1.0


class TestBoundsDriver:
    def test_all_bounds_hold(self):
        rows = run_bounds_check(factors=(2, 3), seed=5)
        assert rows, "bounds check produced no rows"
        for row in rows:
            assert row.holds, f"{row.experiment}/{row.scenario} violated"

    def test_slack_positive(self):
        rows = run_bounds_check(factors=(2,), seed=5)
        for row in rows:
            assert row.slack >= 1.0 or math.isinf(row.slack)

    def test_nonvacuous_theorem3_present(self):
        rows = run_bounds_check(factors=(2,), seed=5)
        ramped = [r for r in rows if r.scenario == "ramped-deprived"]
        assert any(
            r.experiment == "theorem3-time" and math.isfinite(r.bound) for r in ramped
        )


class TestAblations:
    def test_rate_rows(self):
        rows = run_rate_ablation(rates=(0.0, 0.4), factors=(5,), jobs_per_factor=2)
        assert [r.convergence_rate for r in rows] == [0.0, 0.4]
        for r in rows:
            assert r.time_norm >= 1.0

    def test_quantum_rows(self):
        rows = run_quantum_ablation(lengths=(500, 1000), factors=(5,), jobs_per_factor=2)
        assert len(rows) == 3  # 2 fixed + adaptive
        assert rows[-1].policy == "adaptive"

    def test_discipline_rows(self):
        rows = run_discipline_ablation(num_random_dags=2)
        disciplines = {r.discipline for r in rows}
        assert disciplines == {"breadth-first", "fifo", "lifo"}
        bf = [r for r in rows if r.discipline == "breadth-first"]
        for r in bf:
            assert r.max_span_efficiency <= 1.0 + 1e-9

    def test_allocator_rows(self):
        rows = run_allocator_ablation(num_sets=2, target_load=1.0)
        names = [r.allocator for r in rows]
        assert "dynamic equi-partitioning" in names
        assert "round-robin" in names
        deq = next(r for r in rows if "equi" in r.allocator)
        rr = next(r for r in rows if "round" in r.allocator)
        # non-reservation should not hurt makespan
        assert deq.makespan <= rr.makespan * 1.05


class TestConfidenceIntervals:
    def test_fig5_ratio_cis(self):
        result = run_fig5(factors=(5, 20, 60, 90), jobs_per_factor=4, seed=3)
        t_ci = result.time_ratio_ci()
        w_ci = result.waste_ratio_ci()
        assert t_ci.low <= result.mean_time_ratio <= t_ci.high
        assert w_ci.low <= result.mean_waste_ratio <= w_ci.high
        assert t_ci.low > 0.9  # ABG's advantage is not a fluke of the sample

    def test_fig6_makespan_ci(self):
        result = run_fig6(num_sets=8, load_range=(0.3, 3.0), seed=4)
        ci = result.makespan_ratio_ci()
        assert ci.low <= ci.point <= ci.high
        assert ci.confidence == 0.95
