"""Executes the doctest examples embedded in user-facing docstrings, so the
documentation can never drift from the code."""

from __future__ import annotations

import doctest

import repro


def test_package_docstring_examples():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0


def test_readme_quickstart_runs():
    """The README's quickstart block, executed literally."""
    import numpy as np

    from repro import AControl, AGreedy, ForkJoinGenerator, simulate_job

    job = ForkJoinGenerator(quantum_length=1000).generate(
        np.random.default_rng(0), transition_factor=20
    )
    abg = simulate_job(job, AControl(convergence_rate=0.2), availability=128)
    agreedy = simulate_job(job, AGreedy(), availability=128)
    assert abg.running_time < agreedy.running_time
    assert abg.total_waste < agreedy.total_waste
    assert len(list(abg)) == len(abg)
