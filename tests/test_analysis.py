"""Unit tests for trim analysis, transition factors, and theorem bounds."""

from __future__ import annotations

import pytest

from repro.analysis.bounds import (
    check_lemma2,
    lemma2_coefficients,
    theorem3_time_bound,
    theorem3_trim_steps,
    theorem4_waste_bound,
    theorem5_makespan_bound,
    theorem5_response_bound,
)
from repro.analysis.transition import (
    job_set_transition_factor,
    measured_transition_factor,
    parallelism_transitions,
)
from repro.analysis.trim import classify_quanta, trimmed_availability
from repro.core.abg import AControl
from repro.core.types import JobTrace
from repro.engine.phased import PhasedJob
from repro.sim.single import simulate_job

from conftest import make_record


def _trace(records):
    trace = JobTrace(quantum_length=1000)
    for r in records:
        trace.append(r)
    return trace


# ---------------------------------------------------------------------------
# Trim analysis
# ---------------------------------------------------------------------------


class TestClassifyQuanta:
    def test_accounted_needs_deprivation_and_low_allotment(self):
        # deprived (a < d) and a < A: accounted
        rec = make_record(
            request=8.0, request_int=8, allotment=4, work=4000, span=500.0
        )  # A = 8 > 4
        classes = classify_quanta(_trace([rec]))
        assert classes.counts == (1, 0, 0)

    def test_satisfied_is_deductible(self):
        rec = make_record(request=4.0, allotment=4, work=4000, span=500.0)
        classes = classify_quanta(_trace([rec]))
        assert classes.counts == (0, 1, 0)

    def test_deprived_but_enough_is_deductible(self):
        # a < d but a >= A
        rec = make_record(
            request=8.0, request_int=8, allotment=4, work=2000, span=1000.0
        )  # A = 2 <= 4
        classes = classify_quanta(_trace([rec]))
        assert classes.counts == (0, 1, 0)

    def test_non_full_last_quantum(self):
        full = make_record(index=1)
        short = make_record(index=2, steps=100, work=50, span=25.0)
        classes = classify_quanta(_trace([full, short]))
        assert classes.counts == (0, 1, 1)


class TestTrimmedAvailability:
    def _two_quanta(self):
        return _trace(
            [
                make_record(index=1, available=100, request=4.0),
                make_record(index=2, available=10, request=4.0),
            ]
        )

    def test_no_trim_is_weighted_mean(self):
        trace = self._two_quanta()
        assert trimmed_availability(trace, 0) == pytest.approx(55.0)

    def test_trim_removes_highest_first(self):
        trace = self._two_quanta()
        # trimming the full 1000 steps of the p=100 quantum leaves only p=10
        assert trimmed_availability(trace, 1000) == pytest.approx(10.0)

    def test_partial_trim(self):
        trace = self._two_quanta()
        # trim 500 steps: (100*500 + 10*1000) / 1500
        assert trimmed_availability(trace, 500) == pytest.approx((50000 + 10000) / 1500)

    def test_trim_everything_returns_zero(self):
        trace = self._two_quanta()
        assert trimmed_availability(trace, 999_999) == 0.0

    def test_negative_trim_rejected(self):
        with pytest.raises(ValueError):
            trimmed_availability(self._two_quanta(), -1)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trimmed_availability(JobTrace(quantum_length=10), 0)

    def test_monotone_in_trim(self):
        trace = self._two_quanta()
        values = [trimmed_availability(trace, r) for r in (0, 200, 600, 1200, 1800)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


# ---------------------------------------------------------------------------
# Transition factor
# ---------------------------------------------------------------------------


class TestTransitionFactor:
    def test_measured_on_trace(self):
        t = _trace(
            [
                make_record(index=1, request=2.0, allotment=2, work=2000, span=1000.0),
                make_record(index=2, request=2.0, allotment=2, work=2000, span=250.0),
            ]
        )  # A: 2 then 8
        assert measured_transition_factor(t) == pytest.approx(4.0)

    def test_job_set_max(self):
        t1 = _trace([make_record(index=1, request=2.0, allotment=2, work=2000, span=1000.0)])
        t2 = _trace([make_record(index=1, request=6.0, allotment=6, work=6000, span=1000.0)])
        assert job_set_transition_factor([t1, t2]) == pytest.approx(6.0)

    def test_job_set_empty(self):
        with pytest.raises(ValueError):
            job_set_transition_factor([])

    def test_parallelism_transitions_series(self):
        ts = parallelism_transitions([2.0, 8.0, 4.0])
        assert ts == [pytest.approx(2.0), pytest.approx(4.0), pytest.approx(2.0)]


# ---------------------------------------------------------------------------
# Bounds
# ---------------------------------------------------------------------------


class TestLemma2Coefficients:
    def test_values(self):
        low, high = lemma2_coefficients(2.0, 0.2)
        assert low == pytest.approx(0.8 / 1.8)
        assert high == pytest.approx(2.0 * 0.8 / 0.6)

    def test_rate_requirement(self):
        with pytest.raises(ValueError):
            lemma2_coefficients(5.0, 0.2)  # r >= 1/CL

    def test_cl_at_least_one(self):
        with pytest.raises(ValueError):
            lemma2_coefficients(0.5, 0.1)

    def test_zero_rate_degenerates(self):
        low, high = lemma2_coefficients(3.0, 0.0)
        assert low == pytest.approx(1 / 3)
        assert high == pytest.approx(3.0)


class TestLemma2OnTraces:
    def test_holds_on_simulated_abg(self):
        job = PhasedJob([(1, 2500), (3, 2500), (1, 2500), (3, 2500)])
        trace = simulate_job(job, AControl(0.2), 64, quantum_length=1000)
        report = check_lemma2(trace, 0.2)
        assert report.holds, report.violations


class TestTheorem3:
    def test_trim_steps_formula(self):
        # (CL + 1 - 2r)/(1-r) * Tinf + L
        assert theorem3_trim_steps(100.0, 50, 2.0, 0.2) == pytest.approx(
            (2.0 + 1 - 0.4) / 0.8 * 100 + 50
        )

    def test_bound_on_unconstrained_run(self):
        job = PhasedJob([(1, 2500), (4, 2500)])
        trace = simulate_job(job, AControl(0.2), 64, quantum_length=1000)
        report = theorem3_time_bound(trace, job.work, job.span, 0.2)
        assert report.holds

    def test_vacuous_when_everything_trimmed(self):
        job = PhasedJob([(1, 100)])
        trace = simulate_job(job, AControl(0.2), 4, quantum_length=10)
        report = theorem3_time_bound(
            trace, job.work, job.span, 0.2, transition_factor=50.0
        )
        assert report.bound == float("inf")
        assert report.holds


class TestTheorem4:
    def test_formula(self):
        w = theorem4_waste_bound(1000, 64, 100, 2.0, 0.2)
        assert w == pytest.approx(2.0 * 0.8 / 0.6 * 1000 + 6400)

    def test_rate_requirement(self):
        with pytest.raises(ValueError):
            theorem4_waste_bound(1000, 64, 100, 6.0, 0.2)

    def test_holds_on_simulated_run(self):
        job = PhasedJob([(1, 2500), (4, 2500)])
        trace = simulate_job(job, AControl(0.2), 64, quantum_length=1000)
        cl = trace.measured_transition_factor()
        bound = theorem4_waste_bound(job.work, 64, 1000, cl, 0.2)
        assert trace.total_waste <= bound


class TestTheorem5:
    def test_makespan_formula(self):
        c, r = 2.0, 0.2
        coeff = (c + 1 - 2 * c * r) / (1 - c * r) + (c + 1 - 2 * r) / (1 - r)
        assert theorem5_makespan_bound(100.0, 4, 50, c, r) == pytest.approx(
            coeff * 100 + 50 * 6
        )

    def test_response_formula(self):
        c, r = 2.0, 0.2
        coeff = (2 * c + 2 - 4 * c * r) / (1 - c * r) + (c + 1 - 2 * r) / (1 - r)
        assert theorem5_response_bound(100.0, 4, 50, c, r) == pytest.approx(
            coeff * 100 + 50 * 6
        )

    def test_rate_requirement(self):
        with pytest.raises(ValueError):
            theorem5_makespan_bound(100.0, 4, 50, 8.0, 0.2)
        with pytest.raises(ValueError):
            theorem5_response_bound(100.0, 4, 50, 8.0, 0.2)


class TestSpeedupReport:
    def _trace_and_job(self, availability):
        from repro.workloads.forkjoin import ramped_job

        job = ramped_job(32, levels_per_phase=600, peak_levels=6000)
        trace = simulate_job(job, AControl(0.2), availability, quantum_length=300)
        return job, trace

    def test_fields_consistent(self):
        from repro.analysis.speedup import speedup_report

        job, trace = self._trace_and_job(4)
        report = speedup_report(trace, job.work, job.span, 0.2)
        assert report.serial_time == job.work
        assert report.running_time == trace.running_time
        assert report.speedup == pytest.approx(job.work / trace.running_time)
        assert report.raw_availability == pytest.approx(4.0)

    def test_near_linear_when_deprived(self):
        from repro.analysis.speedup import speedup_report

        job, trace = self._trace_and_job(4)
        report = speedup_report(trace, job.work, job.span, 0.2)
        assert report.linearity_vs_trimmed > 0.8

    def test_adversary_hurts_raw_not_trimmed(self):
        from repro.allocators.availability import InverseParallelismAvailability
        from repro.analysis.speedup import speedup_report
        from repro.workloads.forkjoin import ramped_job

        job = ramped_job(32, levels_per_phase=600, peak_levels=6000)
        adversary = InverseParallelismAvailability(high=64, low=4, cutoff=2.0)
        trace = simulate_job(job, AControl(0.2), adversary, quantum_length=300)
        report = speedup_report(trace, job.work, job.span, 0.2)
        assert report.raw_availability > report.trimmed_availability
        assert report.linearity_vs_trimmed > report.linearity_vs_raw

    def test_validation(self):
        from repro.analysis.speedup import speedup_report

        job, trace = self._trace_and_job(4)
        with pytest.raises(ValueError):
            speedup_report(trace, 0, job.span, 0.2)


class TestTrimDemoDriver:
    def test_rows(self):
        from repro.experiments import run_trim_demo

        rows = run_trim_demo(peak_width=32, quantum_length=500)
        assert len(rows) == 3
        adversarial = next(r for r in rows if "adversarial" in r.availability)
        assert adversarial.linearity_vs_trimmed > adversarial.linearity_vs_raw
