"""Property tests: the production explicit engine against the first-
principles naive scheduler, on arbitrary random dags."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.graph import Dag
from repro.engine.explicit import ExplicitExecutor

from naive_engine import NaiveState, naive_quantum


@st.composite
def random_dag(draw):
    n = draw(st.integers(min_value=1, max_value=18))
    edges = []
    for v in range(1, n):
        for u in range(v):
            if draw(st.booleans()):
                edges.append((u, v))
    return Dag(n, edges)


@st.composite
def quantum_schedule(draw):
    return draw(
        st.lists(
            st.tuples(st.integers(1, 6), st.integers(1, 8)),
            min_size=1,
            max_size=10,
        )
    )


class TestAgainstNaive:
    @settings(max_examples=200, deadline=None)
    @given(random_dag(), quantum_schedule())
    def test_breadth_first_matches_first_principles(self, dag, schedule):
        engine = ExplicitExecutor(dag, "breadth-first")
        naive = NaiveState(dag)
        i = 0
        while not engine.finished:
            a, s = schedule[i % len(schedule)]
            i += 1
            res = engine.execute_quantum(a, s)
            work, span, steps, finished = naive_quantum(naive, a, s, "breadth-first")
            assert res.work == work
            assert res.steps == steps
            assert res.finished == finished
            assert res.span == pytest.approx(span, abs=1e-9)
            assert i < 10_000
        assert naive.finished

    @settings(max_examples=100, deadline=None)
    @given(random_dag(), st.integers(1, 6))
    def test_fifo_work_per_step_is_greedy(self, dag, allotment):
        """Any greedy discipline executes min(a, |ready|) per step; check the
        FIFO engine's aggregate work against the naive ready-set sizes it
        induces is impossible order-free, but per-quantum work can never
        exceed the greedy optimum a*steps and the run must finish in at most
        T1 steps with a=1 semantics."""
        engine = ExplicitExecutor(dag, "fifo")
        total = 0
        steps = 0
        while not engine.finished:
            res = engine.execute_quantum(allotment, 5)
            total += res.work
            steps += res.steps
            assert res.work <= allotment * res.steps
        assert total == dag.work
        # Graham bound for greedy schedules
        assert steps <= dag.work / allotment + dag.span + 5  # +5: quantum granularity
