"""Unit/integration tests for the multiprogrammed simulator."""

from __future__ import annotations

import pytest

from repro.allocators.equipartition import DynamicEquiPartitioning
from repro.allocators.roundrobin import RoundRobinAllocator
from repro.core.abg import AControl
from repro.core.agreedy import AGreedy
from repro.core.reference import FixedRequest
from repro.engine.phased import PhasedExecutor, PhasedJob
from repro.sim.jobs import JobSpec, make_executor
from repro.sim.multi import simulate_job_set


def specs_of(jobs, policy=None, releases=None):
    policy = policy or AControl(0.2)
    releases = releases or [0] * len(jobs)
    return [JobSpec(job=j, feedback=policy, release_time=r) for j, r in zip(jobs, releases)]


class TestJobSpec:
    def test_executor_rejected(self):
        ex = PhasedExecutor(PhasedJob([(1, 1)]))
        with pytest.raises(TypeError):
            JobSpec(job=ex, feedback=AControl())

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(job=PhasedJob([(1, 1)]), feedback=AControl(), release_time=-1)

    def test_make_executor_dispatch(self):
        assert isinstance(make_executor(PhasedJob([(1, 1)])), PhasedExecutor)
        with pytest.raises(TypeError):
            make_executor("not a job")  # type: ignore[arg-type]


class TestBatchedSets:
    def test_all_jobs_complete(self):
        jobs = [PhasedJob([(1, 30), (4, 40)]), PhasedJob([(2, 60)]), PhasedJob([(8, 20)])]
        result = simulate_job_set(specs_of(jobs), DynamicEquiPartitioning(), 32, quantum_length=25)
        assert set(result.traces) == {0, 1, 2}
        for i, job in enumerate(jobs):
            assert result.traces[i].total_work == job.work

    def test_makespan_at_least_each_response(self):
        jobs = [PhasedJob([(2, 100)]), PhasedJob([(4, 50)])]
        result = simulate_job_set(specs_of(jobs), DynamicEquiPartitioning(), 16, quantum_length=20)
        for trace in result.traces.values():
            assert result.makespan >= trace.completion_time

    def test_mean_response_time(self):
        jobs = [PhasedJob([(1, 10)]), PhasedJob([(1, 10)])]
        result = simulate_job_set(specs_of(jobs), DynamicEquiPartitioning(), 8, quantum_length=20)
        # both finish in their first quantum (10 steps)
        assert result.mean_response_time == pytest.approx(10.0)

    def test_total_work_aggregates(self):
        jobs = [PhasedJob([(2, 10)]), PhasedJob([(3, 10)])]
        result = simulate_job_set(specs_of(jobs), DynamicEquiPartitioning(), 8, quantum_length=20)
        assert result.total_work == 20 + 30

    def test_single_job_set_matches_single_sim(self):
        """One batched job under DEQ behaves like the single-job simulator
        with constant availability P."""
        from repro.sim.single import simulate_job

        job = PhasedJob([(1, 40), (6, 60), (1, 20)])
        multi = simulate_job_set(specs_of([job]), DynamicEquiPartitioning(), 16, quantum_length=25)
        single = simulate_job(job, AControl(0.2), 16, quantum_length=25)
        assert multi.traces[0].request_series() == single.request_series()
        assert multi.traces[0].running_time == single.running_time


class TestReleases:
    def test_late_job_joins_at_boundary(self):
        jobs = [PhasedJob([(1, 100)]), PhasedJob([(1, 10)])]
        result = simulate_job_set(
            specs_of(jobs, releases=[0, 30]),
            DynamicEquiPartitioning(),
            8,
            quantum_length=25,
        )
        # released at 30 -> joins at boundary 50
        late = result.traces[1]
        assert late.records[0].start_step == 50
        assert late.release_time == 30
        assert late.response_time == (50 + 10) - 30

    def test_gap_before_any_release(self):
        jobs = [PhasedJob([(1, 10)])]
        result = simulate_job_set(
            specs_of(jobs, releases=[120]),
            DynamicEquiPartitioning(),
            8,
            quantum_length=50,
        )
        trace = result.traces[0]
        assert trace.records[0].start_step == 150  # next boundary after 120
        assert trace.response_time == 150 + 10 - 120

    def test_release_at_boundary_joins_immediately(self):
        jobs = [PhasedJob([(1, 10)])]
        result = simulate_job_set(
            specs_of(jobs, releases=[50]),
            DynamicEquiPartitioning(),
            8,
            quantum_length=50,
        )
        assert result.traces[0].records[0].start_step == 50


class TestSharing:
    def test_processors_shared_under_contention(self):
        # two identical wide jobs on a machine only big enough for one
        jobs = [PhasedJob([(8, 200)]), PhasedJob([(8, 200)])]
        result = simulate_job_set(specs_of(jobs, policy=FixedRequest(8)),
                                  DynamicEquiPartitioning(), 8, quantum_length=50)
        # each gets 4 of the 8: both take 400 steps
        for trace in result.traces.values():
            assert trace.running_time == 400
            assert all(rec.allotment == 4 for rec in trace)

    def test_declined_processors_flow_to_big_job(self):
        """Non-reservation: once the serial job's adaptive request drops to
        1, DEQ hands the wide job more than the equal share of 8."""
        jobs = [PhasedJob([(1, 400)]), PhasedJob([(14, 400)])]
        result = simulate_job_set(specs_of(jobs, policy=AControl(0.0)),
                                  DynamicEquiPartitioning(), 16, quantum_length=50)
        serial = result.traces[0]
        wide = result.traces[1]
        assert any(rec.allotment == 1 for rec in serial.records[1:])
        assert any(rec.allotment > 8 for rec in wide.records)

    def test_duplicate_ids_rejected(self):
        spec = JobSpec(job=PhasedJob([(1, 1)]), feedback=AControl(), job_id=3)
        with pytest.raises(ValueError):
            simulate_job_set([spec, spec], DynamicEquiPartitioning(), 8)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            simulate_job_set([], DynamicEquiPartitioning(), 8)

    def test_too_many_jobs_rejected(self):
        jobs = [PhasedJob([(1, 1)]) for _ in range(5)]
        with pytest.raises(ValueError):
            simulate_job_set(specs_of(jobs), DynamicEquiPartitioning(), 2, quantum_length=10)


class TestAllocatorsInContext:
    def test_roundrobin_runs(self):
        jobs = [PhasedJob([(2, 40)]), PhasedJob([(4, 40)])]
        result = simulate_job_set(specs_of(jobs), RoundRobinAllocator(), 16, quantum_length=20)
        assert len(result.traces) == 2

    def test_agreedy_policy_in_multi(self):
        jobs = [PhasedJob([(1, 50), (6, 50)]) for _ in range(3)]
        result = simulate_job_set(specs_of(jobs, policy=AGreedy()),
                                  DynamicEquiPartitioning(), 32, quantum_length=25)
        assert len(result.traces) == 3

    def test_determinism(self):
        jobs = [PhasedJob([(1, 30), (5, 40)]), PhasedJob([(3, 60)])]
        r1 = simulate_job_set(specs_of(jobs), DynamicEquiPartitioning(), 16, quantum_length=20)
        r2 = simulate_job_set(specs_of(jobs), DynamicEquiPartitioning(), 16, quantum_length=20)
        assert r1.makespan == r2.makespan
        assert r1.mean_response_time == r2.mean_response_time
