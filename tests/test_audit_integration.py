"""End-to-end audit of the seed engines over the example/benchmark workloads.

This is the acceptance gate for the verification layer: every canonical
scenario (quickstart, figure workloads, multiprogrammed DEQ, mixed policies,
Theorem 3/4 bound regimes) must produce zero violations, through both the
library API and the CLI entry points.
"""

from __future__ import annotations

import pytest

from repro.verify.scenarios import audit_scenarios, format_suite, run_audit_suite

SCENARIO_NAMES = [s.name for s in audit_scenarios()]


@pytest.fixture(scope="module")
def suite_results():
    return run_audit_suite()


class TestAuditSuite:
    def test_covers_the_canonical_workloads(self):
        assert {
            "quickstart",
            "single-job-sweep",
            "bounds",
            "multiprogrammed-deq",
        } <= set(SCENARIO_NAMES)

    def test_every_scenario_is_clean(self, suite_results):
        dirty = {name: report.summary() for name, report in suite_results if not report.ok}
        assert not dirty, dirty

    def test_every_scenario_ran_checks(self, suite_results):
        for name, report in suite_results:
            assert report.checks, f"scenario {name} audited nothing"

    def test_bounds_scenario_checked_the_theorems(self, suite_results):
        report = dict(suite_results)["bounds"]
        assert report.checked("theorem3-time-bound")
        assert report.checked("theorem4-waste-bound")

    def test_deq_scenario_checked_allocator_properties(self, suite_results):
        report = dict(suite_results)["multiprogrammed-deq"]
        assert report.checked("deq-unfair")
        assert report.checked("reservation")
        assert report.checked("capacity-exceeded")

    def test_format_suite_summarizes(self, suite_results):
        text = format_suite(suite_results)
        assert "all invariants hold" in text
        for name in SCENARIO_NAMES:
            assert name in text


class TestCliEntryPoints:
    def test_audit_subcommand_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["audit"]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_global_audit_flag_runs_suite_after_command(self, capsys):
        from repro.cli import main

        assert main(["--audit", "theorem1"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out

    def test_audit_subcommand_with_lint(self, capsys, tmp_path):
        from repro.cli import main

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        with pytest.raises(SystemExit) as exc:
            main(["audit", "--lint", str(dirty)])
        assert exc.value.code == 1
        assert "ABG101" in capsys.readouterr().out
