"""Unit tests for the reference feedback policies and quantum-length
policies."""

from __future__ import annotations

import pytest

from repro.core.quantum_policy import AdaptiveQuantumLength, FixedQuantumLength
from repro.core.reference import FixedRequest, OracleFeedback

from conftest import make_record


class TestFixedRequest:
    def test_constant(self):
        p = FixedRequest(7)
        assert p.first_request() == 7.0
        assert p.next_request(make_record()) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedRequest(0)

    def test_name(self):
        assert "7" in FixedRequest(7).name


class TestOracleFeedback:
    def test_requests_source_value(self):
        p = OracleFeedback(lambda: 12.0)
        assert p.first_request() == 12.0
        assert p.next_request(make_record()) == 12.0

    def test_tracks_changing_source(self):
        values = iter([3.0, 9.0])
        p = OracleFeedback(lambda: next(values))
        assert p.first_request() == 3.0
        assert p.next_request(make_record()) == 9.0

    def test_floors_at_one(self):
        p = OracleFeedback(lambda: 0.0)
        assert p.first_request() == 1.0


class TestFixedQuantumLength:
    def test_constant(self):
        p = FixedQuantumLength(500)
        assert p.next_length(None) == 500
        assert p.next_length(make_record()) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedQuantumLength(0)


class TestAdaptiveQuantumLength:
    def test_starts_at_initial(self):
        p = AdaptiveQuantumLength(1000, min_length=250, max_length=4000)
        assert p.next_length(None) == 1000

    def test_doubles_when_stable(self):
        p = AdaptiveQuantumLength(1000, min_length=250, max_length=4000)
        p.next_length(None)
        stable = make_record(request=4.0, work=4000, span=1000.0)  # A = 4 = d
        assert p.next_length(stable) == 2000
        assert p.next_length(stable) == 4000
        assert p.next_length(stable) == 4000  # capped

    def test_resets_on_transition(self):
        p = AdaptiveQuantumLength(1000, min_length=250, max_length=4000)
        p.next_length(None)
        # measured parallelism far from the request => reset to min
        shifted = make_record(request=4.0, work=4000, span=125.0)  # A = 32
        assert p.next_length(shifted) == 250

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveQuantumLength(100, min_length=200, max_length=400)
        with pytest.raises(ValueError):
            AdaptiveQuantumLength(1000, stable_ratio=0.9)

    def test_restart_after_none(self):
        p = AdaptiveQuantumLength(1000, min_length=250, max_length=4000)
        p.next_length(None)
        stable = make_record(request=4.0, work=4000, span=1000.0)
        p.next_length(stable)
        assert p.next_length(None) == 1000  # a new job resets the state
