"""Tests for the crash-safe write/checkpoint layer (``repro.runtime``)."""

from __future__ import annotations

import json

import pytest

from repro.runtime import (
    CheckpointJournal,
    compact_journal,
    stable_fraction,
    unit_key,
    write_atomic,
)
from repro.runtime.checkpoint import JOURNAL_SCHEMA, SEGMENT_FILENAME


class TestWriteAtomic:
    def test_writes_and_returns_path(self, tmp_path):
        target = write_atomic(tmp_path / "a.json", "[1, 2]")
        assert target.read_text() == "[1, 2]"

    def test_creates_parent_directories(self, tmp_path):
        target = write_atomic(tmp_path / "deep" / "er" / "a.txt", "x")
        assert target.read_text() == "x"

    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "a.txt"
        write_atomic(path, "old")
        write_atomic(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_litter(self, tmp_path):
        write_atomic(tmp_path / "a.txt", "x")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_failure_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "a.txt"
        write_atomic(path, "original")
        # a non-str payload raises inside the write; the target must survive
        # and the temp file must be cleaned up
        with pytest.raises(TypeError):
            write_atomic(path, object())  # type: ignore[arg-type]
        assert path.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_parent_directory_fd_is_fsynced(self, tmp_path, monkeypatch):
        # the rename lives in the directory entry: after os.replace the
        # parent dir fd itself must be flushed for the write to be durable
        import os
        import stat

        synced: list[os.stat_result] = []
        real_fsync = os.fsync

        def recording_fsync(fd: int) -> None:
            synced.append(os.fstat(fd))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        write_atomic(tmp_path / "a.txt", "x")
        dir_stat = os.stat(tmp_path)
        dir_syncs = [s for s in synced if stat.S_ISDIR(s.st_mode)]
        assert dir_syncs, "parent directory fd was never fsynced"
        assert any(
            s.st_ino == dir_stat.st_ino and s.st_dev == dir_stat.st_dev
            for s in dir_syncs
        ), "a directory was fsynced, but not the target's parent"
        # the data fd is still flushed too (a regular file, before the dir)
        assert any(stat.S_ISREG(s.st_mode) for s in synced)

    def test_failure_path_skips_dir_fsync_and_cleans_temp(
        self, tmp_path, monkeypatch
    ):
        import os
        import stat

        synced: list[os.stat_result] = []
        real_fsync = os.fsync

        def recording_fsync(fd: int) -> None:
            synced.append(os.fstat(fd))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        with pytest.raises(TypeError):
            write_atomic(tmp_path / "a.txt", object())  # type: ignore[arg-type]
        # no rename happened, so no directory flush — and no temp litter
        assert not any(stat.S_ISDIR(s.st_mode) for s in synced)
        assert list(tmp_path.iterdir()) == []

    def test_dir_fsync_is_best_effort(self, tmp_path, monkeypatch):
        # platforms where directories cannot be fsynced must not break the
        # write: an OSError from the directory flush is swallowed
        import os

        real_fsync = os.fsync

        def flaky_fsync(fd: int) -> None:
            import stat as stat_mod

            if stat_mod.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError("directory fsync unsupported")
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", flaky_fsync)
        target = write_atomic(tmp_path / "a.txt", "x")
        assert target.read_text() == "x"


class TestUnitKey:
    def test_order_independent(self):
        assert unit_key("k", {"a": 1, "b": 2}) == unit_key("k", {"b": 2, "a": 1})

    def test_kind_and_params_distinguish(self):
        assert unit_key("k", {"a": 1}) != unit_key("j", {"a": 1})
        assert unit_key("k", {"a": 1}) != unit_key("k", {"a": 2})

    def test_key_shape(self):
        key = unit_key("fig5-factor", {"seed": 42})
        assert key.startswith("fig5-factor-")
        assert len(key.rsplit("-", 1)[1]) == 32


class TestStableFraction:
    def test_deterministic(self):
        assert stable_fraction(1, "k", 3) == stable_fraction(1, "k", 3)

    def test_in_unit_interval(self):
        values = [stable_fraction(i, "gate") for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_sensitive_to_every_part(self):
        base = stable_fraction(1, "k", 0)
        assert stable_fraction(2, "k", 0) != base
        assert stable_fraction(1, "j", 0) != base
        assert stable_fraction(1, "k", 1) != base


class TestCheckpointJournal:
    def test_record_and_reload(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("unit-a", {"rows": [1, 2]})
        journal.record("unit-b", {"rows": [3]})
        reloaded = CheckpointJournal(tmp_path / "j")
        assert len(reloaded) == 2
        assert "unit-a" in reloaded
        assert reloaded.payload("unit-a") == {"rows": [1, 2]}
        assert list(reloaded.keys()) == ["unit-a", "unit-b"]

    def test_payload_round_trips_through_json(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("u", {"t": (1, 2)})  # tuples stringify like artifacts do
        assert journal.payload("u") == json.loads(json.dumps({"t": (1, 2)}))

    def test_corrupt_record_treated_as_absent(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("u", 1)
        (tmp_path / "j" / "u.json").write_text("{ truncated")
        assert "u" not in CheckpointJournal(tmp_path / "j")

    def test_schema_mismatch_treated_as_absent(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("u", 1)
        (tmp_path / "j" / "u.json").write_text(
            json.dumps({"schema": JOURNAL_SCHEMA + 1, "key": "u", "payload": 1})
        )
        assert "u" not in CheckpointJournal(tmp_path / "j")

    def test_clear_removes_records(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("u", 1)
        journal.clear()
        assert len(journal) == 0
        assert len(CheckpointJournal(tmp_path / "j")) == 0

    def test_missing_directory_is_empty(self, tmp_path):
        assert len(CheckpointJournal(tmp_path / "nope")) == 0


class TestJournalCompaction:
    def test_compact_folds_records_into_one_segment(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("unit-a", {"rows": [1, 2]})
        journal.record("unit-b", {"rows": [3]})
        assert journal.compact() == 2
        files = sorted(p.name for p in (tmp_path / "j").glob("*.json"))
        assert files == [SEGMENT_FILENAME]
        reloaded = CheckpointJournal(tmp_path / "j")
        assert list(reloaded.keys()) == ["unit-a", "unit-b"]
        assert reloaded.payload("unit-a") == {"rows": [1, 2]}
        assert reloaded.payload("unit-b") == {"rows": [3]}

    def test_records_after_compaction_layer_over_segment(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("unit-a", 1)
        journal.compact()
        journal.record("unit-b", 2)
        journal.record("unit-a", 99)  # re-record wins over the segment
        reloaded = CheckpointJournal(tmp_path / "j")
        assert reloaded.payload("unit-a") == 99
        assert reloaded.payload("unit-b") == 2

    def test_kill_between_segment_write_and_unlink_is_safe(self, tmp_path):
        """Both the segment and the per-unit files present (the window
        between compact()'s atomic segment write and the unlinks) must
        load exactly the same payloads as either end state."""
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("unit-a", {"x": 1})
        journal.record("unit-b", {"x": 2})
        before = {k: journal.payload(k) for k in journal.keys()}
        # Reproduce the mid-compaction state: write the segment, keep files.
        body = json.dumps(
            {"schema": JOURNAL_SCHEMA, "segment": before}
        )
        write_atomic(tmp_path / "j" / SEGMENT_FILENAME, body)
        mid = CheckpointJournal(tmp_path / "j")
        assert {k: mid.payload(k) for k in mid.keys()} == before
        # Finishing the compaction from that state converges too.
        mid.compact()
        after = CheckpointJournal(tmp_path / "j")
        assert {k: after.payload(k) for k in after.keys()} == before

    def test_compact_twice_is_idempotent(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("u", [1, 2, 3])
        assert journal.compact() == 1
        assert journal.compact() == 1
        assert CheckpointJournal(tmp_path / "j").payload("u") == [1, 2, 3]

    def test_compact_journal_helper(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("unit-a", 1)
        journal.record("unit-b", 2)
        assert compact_journal(tmp_path / "j") == 2
        assert list(CheckpointJournal(tmp_path / "j").keys()) == [
            "unit-a",
            "unit-b",
        ]

    def test_clear_removes_segment(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("u", 1)
        journal.compact()
        journal.clear()
        assert not list((tmp_path / "j").glob("*.json"))
        assert len(CheckpointJournal(tmp_path / "j")) == 0

    def test_tampered_segment_treated_as_absent(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j")
        journal.record("u", 1)
        journal.compact()
        (tmp_path / "j" / SEGMENT_FILENAME).write_text("{ truncated")
        assert len(CheckpointJournal(tmp_path / "j")) == 0
