"""Cross-validation of the batched level-major kernel against the reference
engine.

The batched kernel's whole claim is *bit-identical* behaviour: same work,
span, steps, finished flag, per-level completion staircase, ready count, and
— with recording on — the exact same per-step task lists, on every quantum
of every counts-determined dag.  These tests drive both engines through
mixed, randomized quantum schedules and compare everything, including strict
mode and auditor replay of the recorded schedules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.abg import AControl
from repro.dag import builders
from repro.dag.structure import analyze_level_structure
from repro.engine import (
    BatchedDagExecutor,
    ExplicitExecutor,
    UnsupportedDagStructure,
    supports_batched,
)
from repro.sim.jobs import make_executor
from repro.sim.single import simulate_job
from repro.verify.auditor import audit_dag_schedule


def random_phases(rng: np.random.Generator) -> list[tuple[int, int]]:
    """A random fork-join phase list (serial/parallel alternation)."""
    phases: list[tuple[int, int]] = []
    for _ in range(int(rng.integers(2, 6))):
        phases.append((1, int(rng.integers(1, 5))))
        phases.append((int(rng.integers(2, 24)), int(rng.integers(1, 6))))
    return phases


def drive_both(dag, rng, *, strict=False, record=False, quanta=400):
    """Run both engines through one randomized quantum schedule, comparing
    every observable after every quantum."""
    ref = ExplicitExecutor(
        dag, "breadth-first", strict=strict, record_schedule=record
    )
    bat = BatchedDagExecutor(dag, strict=strict, record_schedule=record)
    for _ in range(quanta):
        if ref.finished:
            break
        assert bat.current_parallelism == ref.current_parallelism
        a = int(rng.integers(1, 40))
        steps = int(rng.integers(1, 15))
        r = ref.execute_quantum(a, steps)
        b = bat.execute_quantum(a, steps)
        assert (b.work, b.steps, b.finished) == (r.work, r.steps, r.finished)
        assert b.span == pytest.approx(r.span, abs=1e-12)
        assert np.array_equal(bat.completed_by_level(), ref.completed_by_level())
        assert bat.remaining_work == ref.remaining_work
    assert ref.finished and bat.finished
    return ref, bat


class TestCrossValidation:
    def test_builder_dags_quantum_for_quantum(self):
        rng = np.random.default_rng(101)
        dags = [
            builders.chain(12),
            builders.wide_level(9),
            builders.diamond(7),
            builders.figure2_fragment(),
            builders.fork_join(2, 5, 3, 2),
            builders.fork_join_from_phases([(1, 3), (4, 2), (1, 1), (8, 5)]),
        ]
        for dag in dags:
            for _ in range(3):
                drive_both(dag, rng)

    def test_random_fork_join_dags(self):
        rng = np.random.default_rng(202)
        for _ in range(15):
            dag = builders.fork_join_from_phases(random_phases(rng))
            drive_both(dag, rng)

    def test_strict_mode_clean_on_valid_runs(self):
        rng = np.random.default_rng(303)
        for _ in range(5):
            dag = builders.fork_join_from_phases(random_phases(rng))
            drive_both(dag, rng, strict=True)

    def test_recorded_schedules_identical_and_audit_clean(self):
        rng = np.random.default_rng(404)
        for _ in range(5):
            dag = builders.fork_join_from_phases(random_phases(rng))
            ref, bat = drive_both(dag, rng, record=True)
            assert bat.schedule == ref.schedule  # exact order, not just sets
            report = audit_dag_schedule(dag, bat.schedule, breadth_first=True)
            assert report.ok, report.violations

    def test_single_step_quanta(self):
        """steps=1 exercises every regime boundary one step at a time."""
        rng = np.random.default_rng(505)
        dag = builders.fork_join_from_phases([(2, 3), (9, 2), (2, 1), (17, 4)])
        ref = ExplicitExecutor(dag, "breadth-first", record_schedule=True)
        bat = BatchedDagExecutor(dag, record_schedule=True)
        while not ref.finished:
            a = int(rng.integers(1, 12))
            r = ref.execute_quantum(a, 1)
            b = bat.execute_quantum(a, 1)
            assert (b.work, b.steps, b.span) == (r.work, r.steps, pytest.approx(r.span))
        assert bat.finished
        assert bat.schedule == ref.schedule

    def test_simulate_job_auto_matches_reference(self):
        rng = np.random.default_rng(606)
        for _ in range(5):
            dag = builders.fork_join_from_phases(random_phases(rng))
            kwargs = dict(quantum_length=int(rng.integers(3, 60)))
            t_auto = simulate_job(dag, AControl(0.2), 32, **kwargs)
            t_ref = simulate_job(dag, AControl(0.2), 32, engine="reference", **kwargs)
            assert [
                (r.allotment, r.work, r.span, r.steps) for r in t_auto.records
            ] == [(r.allotment, r.work, r.span, r.steps) for r in t_ref.records]


class TestSelection:
    def test_supports_batched_on_builders(self):
        assert supports_batched(builders.chain(5))
        assert supports_batched(builders.fork_join(1, 4, 2, 3))
        assert supports_batched(builders.figure2_fragment())

    def test_rejects_non_level_major(self):
        rng = np.random.default_rng(1)
        dag = builders.random_layered(rng, num_levels=6, max_width=5)
        assert not supports_batched(dag)
        with pytest.raises(UnsupportedDagStructure):
            BatchedDagExecutor(dag)

    def test_rejects_non_breadth_first(self):
        dag = builders.fork_join(1, 4, 2, 3)
        assert not supports_batched(dag, "fifo")
        assert not supports_batched(dag, "lifo")

    def test_make_executor_auto_selection(self):
        dag = builders.fork_join(1, 4, 2, 3)
        rng = np.random.default_rng(2)
        layered = builders.random_layered(rng, num_levels=5, max_width=4)
        assert isinstance(make_executor(dag), BatchedDagExecutor)
        assert isinstance(make_executor(dag, engine="reference"), ExplicitExecutor)
        assert isinstance(make_executor(dag, engine="batched"), BatchedDagExecutor)
        # strict auto stays on the reference engine (per-decision checking)
        assert isinstance(make_executor(dag, strict=True), ExplicitExecutor)
        assert isinstance(make_executor(layered), ExplicitExecutor)
        assert isinstance(make_executor(dag, "fifo"), ExplicitExecutor)
        with pytest.raises(UnsupportedDagStructure):
            make_executor(layered, engine="batched")
        with pytest.raises(ValueError):
            make_executor(dag, engine="warp")  # type: ignore[arg-type]


def permuted_chain_dag(width: int, levels: int, seed: int):
    """Constant-width dag whose inter-level parent maps are random
    non-identity bijections — level-major but not rank-aligned."""
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for lvl in range(1, levels):
        pi = rng.permutation(width)
        if np.array_equal(pi, np.arange(width)):
            pi = np.roll(pi, 1)
        prev, cur = (lvl - 1) * width, lvl * width
        edges.extend((int(prev + pi[j]), int(cur + j)) for j in range(width))
    from repro.dag.graph import Dag

    return Dag(width * levels, edges)


class TestPermutedStructures:
    """The PR 5 lift: permuted-parent constant-width levels remain
    counts-determined (see the repro.dag.structure module docstring for the
    injectivity argument), so the batched kernel executes them — but
    schedule *recording* still requires rank alignment."""

    def test_level_major_but_not_rank_aligned(self):
        dag = permuted_chain_dag(4, 5, seed=1)
        s = analyze_level_structure(dag)
        assert s.level_major
        assert not s.rank_aligned
        assert s.segment_phases() == [(4, 5)]

    def test_identity_maps_stay_rank_aligned(self):
        # the same shape with identity parent maps is an ordinary chain run
        dag = builders.fork_join_from_phases([(4, 5)])
        s = analyze_level_structure(dag)
        assert s.level_major and s.rank_aligned

    def test_shared_parent_rejected(self):
        """A non-injective parent map is NOT counts-determined: completing
        one parent can enable two tasks."""
        from repro.dag.graph import Dag

        # width-2 levels; both level-2 tasks hang off task 0
        dag = Dag(4, [(0, 2), (0, 3)])
        s = analyze_level_structure(dag)
        assert not s.level_major

    def test_supports_batched_and_executes(self):
        dag = permuted_chain_dag(3, 6, seed=2)
        assert supports_batched(dag)
        BatchedDagExecutor(dag)  # does not raise

    def test_counts_match_reference_engine(self):
        rng = np.random.default_rng(707)
        for seed in range(4):
            dag = permuted_chain_dag(int(rng.integers(2, 8)), int(rng.integers(2, 9)), seed=seed)
            drive_both(dag, rng)

    def test_barrier_separated_permuted_segments(self):
        """Permuted segment, then a barrier into a second (chain) segment."""
        from repro.dag.graph import Dag

        # levels: [0,1,2] -> permuted -> [3,4,5] -> barrier -> [6,7] -> chain -> [8,9]
        edges = [(0, 4), (1, 5), (2, 3)]
        edges += [(p, h) for p in (3, 4, 5) for h in (6, 7)]
        edges += [(6, 8), (7, 9)]
        dag = Dag(10, edges)
        s = analyze_level_structure(dag)
        assert s.level_major and not s.rank_aligned
        assert s.segment_phases() == [(3, 2), (2, 2)]
        drive_both(dag, np.random.default_rng(808))

    def test_recording_rejected_on_permuted_structure(self):
        dag = permuted_chain_dag(4, 4, seed=3)
        with pytest.raises(UnsupportedDagStructure, match="rank-aligned"):
            BatchedDagExecutor(dag, record_schedule=True)
        # the reference engine records such dags fine
        ExplicitExecutor(dag, "breadth-first", record_schedule=True)

    def test_strict_mode_clean_on_permuted(self):
        rng = np.random.default_rng(909)
        drive_both(permuted_chain_dag(5, 5, seed=4), rng, strict=True)


class TestLevelStructure:
    def test_fork_join_segments_match_phases(self):
        phases = [(1, 3), (4, 2), (1, 1), (8, 5)]
        dag = builders.fork_join_from_phases(phases)
        s = analyze_level_structure(dag)
        assert s.level_major
        assert s.segment_phases() == phases

    def test_chain_is_one_segment(self):
        s = analyze_level_structure(builders.chain(6))
        assert s.level_major
        assert s.segment_phases() == [(1, 6)]

    def test_level_tasks_ascending_and_complete(self):
        dag = builders.fork_join_from_phases([(2, 2), (5, 3)])
        s = analyze_level_structure(dag)
        seen: list[int] = []
        for tasks in s.level_tasks:
            assert list(tasks) == sorted(tasks)
            seen.extend(int(t) for t in tasks)
        assert sorted(seen) == list(range(dag.num_tasks))

    def test_random_layered_rejected_with_reason(self):
        rng = np.random.default_rng(3)
        dag = builders.random_layered(rng, num_levels=6, max_width=5)
        s = analyze_level_structure(dag)
        assert not s.level_major
        assert s.reject_reason

    def test_structure_cached_on_dag(self):
        dag = builders.chain(4)
        assert dag.structure is dag.structure
