"""Unit tests for the step-accurate explicit-dag engine."""

from __future__ import annotations

import pytest

from repro.dag import builders
from repro.engine.explicit import ExplicitExecutor


class TestBasics:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError):
            ExplicitExecutor(builders.chain(2), "random")  # type: ignore[arg-type]

    def test_chain_runs_serially(self):
        ex = ExplicitExecutor(builders.chain(5))
        res = ex.execute_quantum(allotment=4, max_steps=10)
        assert res.work == 5
        assert res.steps == 5  # one task per step regardless of allotment
        assert res.span == pytest.approx(5.0)
        assert res.finished
        assert ex.finished

    def test_wide_level_parallel(self):
        ex = ExplicitExecutor(builders.wide_level(8))
        res = ex.execute_quantum(allotment=8, max_steps=10)
        assert res.work == 8
        assert res.steps == 1
        assert res.span == pytest.approx(1.0)

    def test_wide_level_deprived(self):
        ex = ExplicitExecutor(builders.wide_level(8))
        res = ex.execute_quantum(allotment=3, max_steps=10)
        assert res.steps == 3  # ceil(8/3)
        assert res.work == 8

    def test_stops_at_max_steps(self):
        ex = ExplicitExecutor(builders.chain(10))
        res = ex.execute_quantum(allotment=1, max_steps=4)
        assert res.work == 4
        assert res.steps == 4
        assert not res.finished
        assert ex.remaining_work == 6

    def test_resume_across_quanta(self):
        ex = ExplicitExecutor(builders.chain(10))
        ex.execute_quantum(1, 4)
        res = ex.execute_quantum(1, 100)
        assert res.work == 6
        assert res.finished

    def test_cannot_execute_finished_job(self):
        ex = ExplicitExecutor(builders.chain(1))
        ex.execute_quantum(1, 5)
        with pytest.raises(RuntimeError):
            ex.execute_quantum(1, 5)

    def test_invalid_quantum_args(self):
        ex = ExplicitExecutor(builders.chain(2))
        with pytest.raises(ValueError):
            ex.execute_quantum(0, 5)
        with pytest.raises(ValueError):
            ex.execute_quantum(1, 0)

    def test_totals(self):
        d = builders.diamond(4)
        ex = ExplicitExecutor(d)
        assert ex.total_work == d.work
        assert ex.total_span == d.span
        assert ex.remaining_work == d.work


class TestMeasurement:
    def test_figure2_exact_values(self):
        """The paper's Figure 2: T1(q)=12, Tinf(q)=2.4, A(q)=5."""
        ex = ExplicitExecutor(builders.figure2_fragment(), "breadth-first")
        ex.execute_quantum(1, 1)  # one pre-completed task
        res = ex.execute_quantum(4, 3)
        assert res.work == 12
        assert res.span == pytest.approx(2.4)
        assert res.work / res.span == pytest.approx(5.0)

    def test_fractional_span_partial_level(self):
        ex = ExplicitExecutor(builders.wide_level(10))
        res = ex.execute_quantum(4, 1)
        assert res.work == 4
        assert res.span == pytest.approx(0.4)

    def test_span_fractions_sum_to_total_span(self):
        d = builders.fork_join_from_phases([(1, 5), (4, 6), (1, 2)])
        ex = ExplicitExecutor(d)
        total = 0.0
        while not ex.finished:
            total += ex.execute_quantum(3, 7).span
        assert total == pytest.approx(d.span)

    def test_work_sums_to_total(self):
        d = builders.fork_join_from_phases([(2, 3), (5, 4)])
        ex = ExplicitExecutor(d)
        total = 0
        while not ex.finished:
            total += ex.execute_quantum(3, 5).work
        assert total == d.work


def _level_completion_windows(dag, discipline, allotments):
    """Drive single-step quanta and return (first, last) completion step per
    level, via the cumulative completed_by_level counter."""
    ex = ExplicitExecutor(dag, discipline)
    prev = ex.completed_by_level()
    first = [None] * dag.num_levels
    last = [None] * dag.num_levels
    step = 0
    i = 0
    while not ex.finished:
        a = allotments[i % len(allotments)]
        i += 1
        ex.execute_quantum(a, 1)
        step += 1
        cur = ex.completed_by_level()
        for lvl in range(dag.num_levels):
            if cur[lvl] > prev[lvl]:
                if first[lvl] is None:
                    first[lvl] = step
                last[lvl] = step
        prev = cur
    return first, last


class TestBreadthFirstInvariant:
    def test_level_ordering(self):
        """Breadth-first: no task at level l completes later than any task
        at level l+1 (Section 2): last(l) <= first(l+1)."""
        d = builders.fork_join_from_phases([(3, 10), (1, 2), (5, 4)])
        first, last = _level_completion_windows(d, "breadth-first", [2, 5, 1, 4, 3])
        for lvl in range(d.num_levels - 1):
            assert last[lvl] <= first[lvl + 1]

    def test_lifo_violates_level_ordering(self):
        """Depth-first greedy breaks the ordering on a dag with independent
        chains of unequal depth — the contrast that motivates B-Greedy."""
        # two chains from a common fork: LIFO plunges down the later chain
        d = builders.fork_join_from_phases([(6, 8)])
        first, last = _level_completion_windows(d, "lifo", [2])
        violated = any(
            last[lvl] > first[lvl + 1] for lvl in range(d.num_levels - 1)
        )
        assert violated

    def test_breadth_first_span_within_steps(self):
        """Tinf(q) <= steps for breadth-first execution (Section 5.1)."""
        d = builders.fork_join_from_phases([(1, 4), (8, 5), (1, 3), (3, 6)])
        ex = ExplicitExecutor(d, "breadth-first")
        while not ex.finished:
            res = ex.execute_quantum(4, 6)
            assert res.span <= res.steps + 1e-9


class TestDisciplines:
    def test_fifo_work_conservation(self):
        d = builders.fork_join_from_phases([(1, 3), (6, 4)])
        ex = ExplicitExecutor(d, "fifo")
        total = 0
        while not ex.finished:
            total += ex.execute_quantum(4, 5).work
        assert total == d.work

    def test_lifo_work_conservation(self):
        d = builders.fork_join_from_phases([(1, 3), (6, 4)])
        ex = ExplicitExecutor(d, "lifo")
        total = 0
        while not ex.finished:
            total += ex.execute_quantum(4, 5).work
        assert total == d.work

    def test_all_disciplines_same_serial_time(self):
        # with allotment 1 every greedy discipline takes exactly T1 steps
        d = builders.fork_join_from_phases([(2, 5), (3, 4)])
        for disc in ("breadth-first", "fifo", "lifo"):
            ex = ExplicitExecutor(d, disc)
            res = ex.execute_quantum(1, 10_000)
            assert res.steps == d.work

    def test_greedy_bound_all_disciplines(self):
        """Graham bound: T <= T1/a + Tinf for any greedy discipline."""
        d = builders.fork_join_from_phases([(1, 5), (7, 6), (1, 2), (4, 8)])
        for disc in ("breadth-first", "fifo", "lifo"):
            for a in (1, 2, 5, 9):
                ex = ExplicitExecutor(d, disc)
                res = ex.execute_quantum(a, 10_000)
                assert res.finished
                assert res.steps <= d.work / a + d.span


class TestCurrentParallelism:
    def test_ready_count(self):
        ex = ExplicitExecutor(builders.wide_level(7))
        assert ex.current_parallelism == 7.0

    def test_zero_when_finished(self):
        ex = ExplicitExecutor(builders.chain(1))
        ex.execute_quantum(1, 2)
        assert ex.current_parallelism == 0.0
