"""Every example script must run cleanly end-to-end (reduced settings where
the script exposes them)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "running time" in proc.stdout
        assert "A-Greedy" in proc.stdout

    def test_single_job_sweep(self):
        proc = run_example("single_job_sweep.py")
        assert proc.returncode == 0, proc.stderr
        assert "running-time improvement" in proc.stdout

    def test_multiprogrammed(self):
        proc = run_example("multiprogrammed.py", "--load", "0.5")
        assert proc.returncode == 0, proc.stderr
        assert "makespan" in proc.stdout
        assert "x M*" in proc.stdout

    def test_control_analysis(self):
        proc = run_example("control_analysis.py", "--parallelism", "6")
        assert proc.returncode == 0, proc.stderr
        assert "convergence rate" in proc.stdout
        assert "oscillation amplitude" in proc.stdout

    def test_profile_replay(self):
        proc = run_example("profile_replay.py", "--segments", "4")
        assert proc.returncode == 0, proc.stderr
        assert "oracle" in proc.stdout

    def test_work_stealing(self):
        proc = run_example("work_stealing.py", "--iterations", "2")
        assert proc.returncode == 0, proc.stderr
        assert "A-Steal" in proc.stdout and "ABP" in proc.stdout

    def test_export_and_replay(self, tmp_path):
        proc = run_example("export_and_replay.py", "--dir", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "reloaded" in proc.stdout
        assert list(tmp_path.glob("*.json"))

    def test_all_examples_have_docstrings_and_main(self):
        for script in sorted(EXAMPLES.glob("*.py")):
            text = script.read_text()
            assert text.startswith("#!/usr/bin/env python3"), script.name
            assert '"""' in text, script.name
            assert 'if __name__ == "__main__":' in text, script.name
