"""Unit tests for repro.core.types: records, traces, derived quantities."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import (
    JobTrace,
    QuantumRecord,
    integer_request,
    quantum_records_from_columns,
    transition_factor_of_series,
)

from conftest import make_record


# ---------------------------------------------------------------------------
# integer_request
# ---------------------------------------------------------------------------


class TestIntegerRequest:
    def test_exact_integer_stays(self):
        assert integer_request(5.0) == 5

    def test_fraction_rounds_up(self):
        assert integer_request(4.2) == 5

    def test_minimum_is_one(self):
        assert integer_request(0.0) == 1
        assert integer_request(0.3) == 1

    def test_float_noise_above_integer_is_absorbed(self):
        assert integer_request(5.0 + 1e-12) == 5

    def test_genuine_excess_rounds_up(self):
        assert integer_request(5.001) == 6

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            integer_request(float("nan"))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            integer_request(-1.0)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_always_at_least_one_and_covers_request(self, d):
        n = integer_request(d)
        assert n >= 1
        assert n >= d - 1e-6  # the integer request covers the real target
        assert n <= max(1, math.ceil(d))


# ---------------------------------------------------------------------------
# QuantumRecord
# ---------------------------------------------------------------------------


class TestQuantumRecordValidation:
    def test_valid_record_constructs(self):
        rec = make_record()
        assert rec.index == 1

    def test_index_must_start_at_one(self):
        with pytest.raises(ValueError):
            make_record(index=0)

    def test_allotment_cannot_exceed_availability(self):
        with pytest.raises(ValueError):
            make_record(available=2, allotment=3, request=5.0, work=0, span=0, steps=0)

    def test_allocator_is_conservative(self):
        with pytest.raises(ValueError):
            make_record(request=2.0, request_int=2, allotment=3, work=0, span=0, steps=0)

    def test_steps_cannot_exceed_quantum_length(self):
        with pytest.raises(ValueError):
            make_record(steps=1001, quantum_length=1000)

    def test_work_cannot_exceed_capacity(self):
        with pytest.raises(ValueError):
            make_record(work=5000, allotment=4, steps=1000)

    def test_span_cannot_exceed_work(self):
        with pytest.raises(ValueError):
            make_record(work=10, span=11.0, steps=1000)

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            make_record(span=-0.5)


class TestQuantumRecordDerived:
    def test_avg_parallelism(self):
        rec = make_record(work=1200, span=240.0)
        assert rec.avg_parallelism == pytest.approx(5.0)

    def test_avg_parallelism_empty_quantum(self):
        rec = make_record(work=0, span=0.0, steps=0)
        assert rec.avg_parallelism == 0.0

    def test_waste(self):
        rec = make_record(allotment=4, steps=1000, work=3500)
        assert rec.waste == 500

    def test_zero_waste_when_fully_used(self):
        rec = make_record(allotment=4, steps=1000, work=4000)
        assert rec.waste == 0

    def test_is_full(self):
        assert make_record(steps=1000, quantum_length=1000).is_full
        assert not make_record(steps=999, quantum_length=1000, work=100, span=50).is_full

    def test_deprived_and_satisfied(self):
        deprived = make_record(request=10.0, request_int=10, available=4, allotment=4)
        assert deprived.deprived and not deprived.satisfied
        satisfied = make_record(request=4.0)
        assert satisfied.satisfied and not satisfied.deprived

    def test_work_efficiency(self):
        rec = make_record(allotment=4, steps=1000, work=3000)
        assert rec.work_efficiency == pytest.approx(0.75)
        assert rec.utilization == pytest.approx(0.75)

    def test_span_efficiency(self):
        rec = make_record(span=800.0, steps=1000)
        assert rec.span_efficiency == pytest.approx(0.8)

    def test_efficiencies_of_empty_quantum_are_zero(self):
        rec = make_record(work=0, span=0.0, steps=0)
        assert rec.work_efficiency == 0.0
        assert rec.span_efficiency == 0.0


# ---------------------------------------------------------------------------
# quantum_records_from_columns
# ---------------------------------------------------------------------------


def _columns(n=4, **overrides):
    """Aligned valid columns for n records (kwargs patch one column)."""
    import numpy as np

    cols = dict(
        index=list(range(1, n + 1)),
        request=np.full(n, 4.0),
        request_int=np.full(n, 4, dtype=np.int64),
        available=np.full(n, 128, dtype=np.int64),
        allotment=np.full(n, 4, dtype=np.int64),
        work=np.full(n, 4000, dtype=np.int64),
        span=np.full(n, 100.0),
        steps=np.full(n, 1000, dtype=np.int64),
        quantum_length=1000,
        start_step=0,
    )
    cols.update(overrides)
    return cols


class TestQuantumRecordsFromColumns:
    def test_equals_scalar_constructor(self):
        cols = _columns()
        recs = quantum_records_from_columns(**cols)
        scalar = [
            QuantumRecord(
                index=i + 1,
                request=4.0,
                request_int=4,
                available=128,
                allotment=4,
                work=4000,
                span=100.0,
                steps=1000,
                quantum_length=1000,
                start_step=0,
            )
            for i in range(4)
        ]
        assert recs == scalar
        assert all(s == r for s, r in zip(scalar, recs))  # both directions

    def test_fields_are_plain_python_scalars(self):
        rec = quantum_records_from_columns(**_columns())[0]
        assert type(rec.work) is int and type(rec.span) is float
        assert type(rec.allotment) is int

    def test_derived_properties_work(self):
        rec = quantum_records_from_columns(**_columns())[1]
        assert rec.waste == 0
        assert rec.is_full and rec.satisfied

    def test_hash_and_pickle_roundtrip(self):
        import pickle

        rec = quantum_records_from_columns(**_columns())[0]
        twin = make_record(request=4.0, available=128, allotment=4, steps=1000)
        assert hash(rec) == hash(twin)
        assert pickle.loads(pickle.dumps(rec)) == rec

    def test_appendable_to_trace(self):
        trace = JobTrace(quantum_length=1000)
        for rec in quantum_records_from_columns(**_columns(3)):
            trace.append(rec)
        assert len(trace) == 3

    def test_invalid_row_raises_scalar_error(self):
        """A violating row falls back to the scalar constructor and raises
        exactly its message, in row order."""
        import numpy as np

        work = np.full(4, 4000, dtype=np.int64)
        work[2] = 99999  # work > allotment * steps on row 2
        with pytest.raises(ValueError) as batch_err:
            quantum_records_from_columns(**_columns(work=work))
        with pytest.raises(ValueError) as scalar_err:
            make_record(index=3, request=4.0, allotment=4, work=99999, steps=1000)
        assert str(batch_err.value) == str(scalar_err.value)

    def test_bad_index_raises_scalar_error(self):
        with pytest.raises(ValueError, match="quantum index starts at 1"):
            quantum_records_from_columns(**_columns(index=[0, 1, 2, 3]))

    def test_empty_columns(self):
        assert quantum_records_from_columns(**_columns(0)) == []


# ---------------------------------------------------------------------------
# JobTrace
# ---------------------------------------------------------------------------


def _trace_with(records):
    trace = JobTrace(quantum_length=1000)
    for rec in records:
        trace.append(rec)
    return trace


class TestJobTrace:
    def test_append_enforces_order(self):
        trace = JobTrace(quantum_length=1000)
        trace.append(make_record(index=1))
        with pytest.raises(ValueError):
            trace.append(make_record(index=3))

    def test_first_record_must_be_quantum_one(self):
        trace = JobTrace(quantum_length=1000)
        with pytest.raises(ValueError):
            trace.append(make_record(index=2))

    def test_one_based_indexing(self):
        trace = _trace_with([make_record(index=1), make_record(index=2)])
        assert trace[1].index == 1
        assert trace[2].index == 2
        with pytest.raises(IndexError):
            trace[0]

    def test_len_and_iter(self):
        trace = _trace_with([make_record(index=1), make_record(index=2)])
        assert len(trace) == 2
        assert [r.index for r in trace] == [1, 2]

    def test_running_time_sums_steps(self):
        trace = _trace_with(
            [make_record(index=1, steps=1000), make_record(index=2, steps=400, work=100, span=50)]
        )
        assert trace.running_time == 1400

    def test_completion_and_response_time(self):
        trace = JobTrace(quantum_length=1000, release_time=500)
        trace.append(make_record(index=1, start_step=1000))
        trace.append(make_record(index=2, start_step=2000, steps=300, work=100, span=50))
        assert trace.completion_time == 1000 + 1000 + 300
        assert trace.response_time == 2300 - 500

    def test_totals(self):
        trace = _trace_with(
            [
                make_record(index=1, work=4000, span=100.0),
                make_record(index=2, work=2000, span=50.0, allotment=4, steps=1000),
            ]
        )
        assert trace.total_work == 6000
        assert trace.total_span == pytest.approx(150.0)
        assert trace.total_waste == (4000 - 4000) + (4000 - 2000)

    def test_full_quanta_excludes_short_last(self):
        trace = _trace_with(
            [make_record(index=1), make_record(index=2, steps=10, work=5, span=2)]
        )
        assert [r.index for r in trace.full_quanta] == [1]

    def test_measured_transition_factor_includes_a0(self):
        # single full quantum at parallelism 5 => CL = 5 (vs A(0)=1)
        trace = _trace_with(
            [make_record(index=1, request=5.0, work=5000, span=1000.0, allotment=5)]
        )
        assert trace.measured_transition_factor() == pytest.approx(5.0)

    def test_reallocation_count(self):
        trace = _trace_with(
            [
                make_record(index=1, allotment=2, request=2.0),
                make_record(index=2, allotment=4, request=4.0),
                make_record(index=3, allotment=4, request=4.0),
                make_record(index=4, allotment=1, request=1.0),
            ]
        )
        assert trace.reallocation_count == 2

    def test_avg_allotment_time_weighted(self):
        trace = _trace_with(
            [
                make_record(index=1, allotment=2, request=2.0, steps=1000, work=2000),
                make_record(
                    index=2, allotment=4, request=4.0, steps=500, work=2000, span=100.0
                ),
            ]
        )
        assert trace.avg_allotment == pytest.approx((2 * 1000 + 4 * 500) / 1500)

    def test_avg_allotment_empty(self):
        assert JobTrace(quantum_length=10).avg_allotment == 0.0


# ---------------------------------------------------------------------------
# transition_factor_of_series
# ---------------------------------------------------------------------------


class TestTransitionFactorOfSeries:
    def test_constant_series_is_one(self):
        assert transition_factor_of_series([4.0, 4.0, 4.0]) == 1.0

    def test_upward_and_downward_ratios_count(self):
        assert transition_factor_of_series([1.0, 3.0]) == pytest.approx(3.0)
        assert transition_factor_of_series([3.0, 1.0]) == pytest.approx(3.0)

    def test_zero_entries_skipped(self):
        assert transition_factor_of_series([2.0, 0.0, 4.0]) == pytest.approx(2.0)

    def test_empty_series(self):
        assert transition_factor_of_series([]) == 1.0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1, max_size=30))
    def test_always_at_least_one(self, series):
        assert transition_factor_of_series(series) >= 1.0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=2, max_size=30))
    def test_invariant_under_reversal(self, series):
        assert transition_factor_of_series(series) == pytest.approx(
            transition_factor_of_series(series[::-1])
        )

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=2, max_size=30),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_scale_invariant(self, series, k):
        scaled = [k * x for x in series]
        assert transition_factor_of_series(scaled) == pytest.approx(
            transition_factor_of_series(series), rel=1e-9
        )
