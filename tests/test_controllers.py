"""Unit tests for the fixed-gain controller contrast."""

from __future__ import annotations

import pytest

from repro.control.controllers import FixedGainIntegral, tuned_gain
from repro.core.abg import AControl
from repro.experiments import run_controller_compare
from repro.sim.single import simulate_job
from repro.workloads.forkjoin import constant_parallelism_job

from conftest import make_record


class TestTunedGain:
    def test_theorem1_placement(self):
        assert tuned_gain(10.0, 0.2) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            tuned_gain(0.0)
        with pytest.raises(ValueError):
            tuned_gain(5.0, 1.0)


class TestFixedGainIntegral:
    def test_matches_acontrol_at_tuning_point(self):
        """With K = (1-r)*A0 and actual A = A0 the laws coincide."""
        fixed = FixedGainIntegral(tuned_gain(10.0, 0.2))
        adaptive = AControl(0.2)
        rec = make_record(request=4.0, work=4000, span=400.0)  # A = 10
        assert fixed.next_request(rec) == pytest.approx(adaptive.next_request(rec))

    def test_pole_formula(self):
        c = FixedGainIntegral(8.0)
        assert c.closed_loop_pole(10.0) == pytest.approx(0.2)
        assert c.closed_loop_pole(4.0) == pytest.approx(-1.0)

    def test_stability_window(self):
        c = FixedGainIntegral(8.0)
        assert c.is_stable_for(10.0)
        assert not c.is_stable_for(4.0)  # pole -1: marginally unstable
        assert not c.is_stable_for(3.0)

    def test_clamping(self):
        c = FixedGainIntegral(100.0, request_cap=32.0)
        # huge gain on low parallelism: raw update would go far negative
        rec = make_record(request=8.0, request_int=8, allotment=8, work=8000, span=4000.0)  # A=2
        assert c.next_request(rec) == 1.0

    def test_empty_quantum_holds(self):
        c = FixedGainIntegral(8.0)
        rec = make_record(request=6.0, request_int=6, allotment=6, work=0, span=0.0, steps=0)
        assert c.next_request(rec) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedGainIntegral(0.0)
        with pytest.raises(ValueError):
            FixedGainIntegral(5.0, request_cap=0.5)
        with pytest.raises(ValueError):
            FixedGainIntegral(5.0).closed_loop_pole(0.0)


class TestMismatchBehaviour:
    def test_unstable_below_tuning_point(self):
        """Tuned for A0=8, run at A=2: bang-bang oscillation, large waste."""
        policy = FixedGainIntegral(tuned_gain(8.0, 0.2), request_cap=64)
        job = constant_parallelism_job(2, 8000)
        trace = simulate_job(job, policy, 64, quantum_length=500)
        reqs = trace.request_series()[4:16]
        assert max(reqs) - min(reqs) > 1.0  # persistent oscillation

    def test_sluggish_above_tuning_point(self):
        """Tuned for A0=8, run at A=64: stable but converges far slower than
        the adaptive controller."""
        fixed = FixedGainIntegral(tuned_gain(8.0, 0.2), request_cap=256)
        adaptive = AControl(0.2)
        job = constant_parallelism_job(64, 12_000)
        t_fixed = simulate_job(job, fixed, 256, quantum_length=500)
        t_adaptive = simulate_job(job, adaptive, 256, quantum_length=500)
        assert t_fixed.running_time > t_adaptive.running_time * 1.2

    def test_experiment_driver(self):
        rows = run_controller_compare(
            parallelisms=(2, 8, 64), tuned_for=8, num_quanta=16
        )
        by = {(r.controller, r.parallelism): r for r in rows}
        abg = [r for r in rows if r.controller.startswith("ABG")]
        assert all(r.settled for r in abg)
        fixed = [r for r in rows if r.controller.startswith("FixedGain")]
        assert any(not r.settled for r in fixed)
        # at the tuning point the two coincide
        k = next(r.controller for r in fixed)
        assert by[(k, 8)].steady_state_error == pytest.approx(
            by[("ABG(r=0.2)", 8)].steady_state_error, abs=1e-6
        )
