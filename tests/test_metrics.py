"""Unit tests for set-level metrics and lower bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import JobTrace
from repro.sim.metrics import (
    job_set_load,
    makespan,
    makespan_lower_bound,
    mean_response_time,
    mean_response_time_lower_bound,
)
from repro.sim.results import geometric_mean, summarize

from conftest import make_record


def trace_completing_at(t_complete, release=0):
    trace = JobTrace(quantum_length=t_complete, release_time=release)
    trace.append(
        make_record(
            index=1,
            steps=t_complete,
            quantum_length=t_complete,
            work=t_complete,
            span=float(t_complete),
            allotment=1,
            request=1.0,
            start_step=release,
        )
    )
    return trace


class TestMakespanAndResponse:
    def test_makespan_is_max_completion(self):
        traces = [trace_completing_at(50), trace_completing_at(80)]
        assert makespan(traces) == 80

    def test_mean_response(self):
        traces = [trace_completing_at(50), trace_completing_at(80)]
        assert mean_response_time(traces) == pytest.approx(65.0)

    def test_response_subtracts_release(self):
        traces = [trace_completing_at(50, release=20)]
        assert mean_response_time(traces) == pytest.approx(50.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            makespan([])
        with pytest.raises(ValueError):
            mean_response_time([])


class TestMakespanLowerBound:
    def test_throughput_bound(self):
        # 1000 total work on 10 procs => at least 100
        assert makespan_lower_bound([600, 400], [10, 10], [0, 0], 10) == 100.0

    def test_critical_path_bound(self):
        assert makespan_lower_bound([10, 10], [500, 10], [0, 0], 10) == 500.0

    def test_release_shifts_critical_path(self):
        assert makespan_lower_bound([10], [50], [100], 10) == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            makespan_lower_bound([], [], [], 4)
        with pytest.raises(ValueError):
            makespan_lower_bound([1], [1], [0], 0)
        with pytest.raises(ValueError):
            makespan_lower_bound([1, 2], [1], [0], 4)


class TestResponseLowerBound:
    def test_mean_span_bound(self):
        assert mean_response_time_lower_bound([1, 1], [100, 200], 64) == 150.0

    def test_squashed_area_bound(self):
        # works 100 and 300 on 2 procs: squashed = (2*100 + 1*300)/2 = 250
        # R* = max(mean span, 250/2) = 125
        assert mean_response_time_lower_bound([300, 100], [1, 1], 2) == pytest.approx(125.0)

    def test_sorted_ascending_matters(self):
        # shortest-first ordering defines the bound; input order must not
        a = mean_response_time_lower_bound([300, 100], [1, 1], 2)
        b = mean_response_time_lower_bound([100, 300], [1, 1], 2)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_response_time_lower_bound([], [], 4)
        with pytest.raises(ValueError):
            mean_response_time_lower_bound([1], [1], 0)

    @given(
        st.lists(st.integers(1, 10_000), min_size=1, max_size=20),
        st.integers(1, 128),
    )
    @settings(max_examples=100, deadline=None)
    def test_bound_below_serial_execution(self, works, p):
        """Any real schedule's mean response exceeds the bound; the trivial
        shortest-first serial schedule on P procs gives an upper sanity."""
        spans = [1] * len(works)
        bound = mean_response_time_lower_bound(works, spans, p)
        works_sorted = sorted(works)
        # completion under perfect SJF squashing, floored by each job's span
        completions = []
        acc = 0
        for w in works_sorted:
            acc += w
            completions.append(max(1.0, acc / p))
        sjf_mean = sum(completions) / len(completions)
        assert bound <= sjf_mean + 1e-9


class TestLoad:
    def test_load_definition(self):
        # parallelism 20 + 12 = 32 over 128 procs
        assert job_set_load([2000, 1200], [100, 100], 128) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            job_set_load([], [], 4)


class TestResultsHelpers:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.count == 3

    def test_summarize_single(self):
        assert summarize([4.0]).std == 0.0

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_str_of_stats(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))
