"""Unit tests for the A-Greedy limit-cycle analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.limit_cycle import agreedy_limit_cycle, iterate_agreedy_requests
from repro.core.agreedy import AGreedy
from repro.sim.single import simulate_job
from repro.workloads.forkjoin import constant_parallelism_job


class TestIterateMap:
    def test_classic_sequence(self):
        seq = iterate_agreedy_requests(10.0, 9)
        assert seq == [1, 2, 4, 8, 16, 8, 16, 8, 16]

    def test_validation(self):
        with pytest.raises(ValueError):
            iterate_agreedy_requests(0.5, 5)
        with pytest.raises(ValueError):
            iterate_agreedy_requests(10.0, 0)


class TestClosedFormOrbit:
    def test_classic_orbit(self):
        cyc = agreedy_limit_cycle(10.0)
        assert cyc.low == 8.0 and cyc.high == 16.0
        assert cyc.onset_quantum == 5
        assert cyc.amplitude == 8.0
        assert cyc.steady_state_gap(10.0) == 6.0

    def test_orbit_brackets_parallelism(self):
        for a in (3.0, 10.0, 33.0, 100.0):
            cyc = agreedy_limit_cycle(a)
            assert cyc.low <= a / 0.8 + 1e-9
            assert cyc.high > a / 0.8

    def test_matches_iterated_map(self):
        for a in (2.0, 5.0, 10.0, 25.0, 64.0, 99.0):
            cyc = agreedy_limit_cycle(a)
            seq = iterate_agreedy_requests(a, cyc.onset_quantum + 10)
            tail = seq[cyc.onset_quantum - 1 :]
            assert set(tail) == {cyc.low, cyc.high}
            assert seq[cyc.onset_quantum - 1] == cyc.high

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1.0, max_value=1e4))
    def test_orbit_is_period_two(self, a):
        cyc = agreedy_limit_cycle(a)
        seq = iterate_agreedy_requests(a, cyc.onset_quantum + 6)
        tail = seq[cyc.onset_quantum - 1 :]
        assert tail == [cyc.high, cyc.low] * (len(tail) // 2) + (
            [cyc.high] if len(tail) % 2 else []
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            agreedy_limit_cycle(0.5)


class TestAgainstFullSimulation:
    def test_simulated_trace_enters_predicted_orbit(self):
        a = 10
        cyc = agreedy_limit_cycle(float(a))
        job = constant_parallelism_job(a, 16_000)
        trace = simulate_job(job, AGreedy(), 128, quantum_length=1000)
        reqs = trace.request_series()[cyc.onset_quantum - 1 : cyc.onset_quantum + 7]
        assert set(reqs) == {cyc.low, cyc.high}
