"""Canonical audit scenarios: run the seed engines over the example and
benchmark workloads and audit every trace.

This is the executable form of the acceptance criterion "the auditor reports
zero violations on every seed engine across the example workloads".  The CLI
``audit`` subcommand, the ``--audit`` global flag, and
``tests/test_audit_integration.py`` all run this suite, so a regression in an
engine, allocator, or feedback policy surfaces as a named invariant
violation rather than silent metric drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..allocators.equipartition import DynamicEquiPartitioning
from ..allocators.roundrobin import RoundRobinAllocator
from ..core.abg import AControl
from ..core.agreedy import AGreedy
from ..dag.builders import fork_join_from_phases
from ..engine.phased import PhasedJob
from ..sim.jobs import JobSpec
from ..sim.multi import simulate_job_set
from ..sim.single import simulate_job
from ..workloads.forkjoin import (
    ForkJoinGenerator,
    constant_parallelism_job,
    ramped_job,
    structural_transition_factor,
)
from .auditor import TraceExpectations, audit_multi_result, audit_trace
from .violations import AuditReport, merge_reports

__all__ = ["AuditScenario", "audit_scenarios", "run_audit_suite", "format_suite"]

_SEED = 20080414  # the paper's conference date; any fixed seed works


@dataclass(frozen=True, slots=True)
class AuditScenario:
    """A named, zero-argument audit producing one report."""

    name: str
    run: Callable[[], AuditReport]


def _single_job_reports(
    job: PhasedJob,
    *,
    processors: int,
    quantum_length: int,
    convergence_rate: float = 0.2,
    check_bounds: bool = False,
) -> AuditReport:
    """Audit one job under both engines and both feedback policies."""
    reports = []
    abg_expect = TraceExpectations(
        total_work=job.work,
        total_span=job.span,
        convergence_rate=convergence_rate,
        processors=processors,
        check_bounds=check_bounds,
    )
    agreedy_expect = TraceExpectations(
        total_work=job.work, total_span=job.span
    )
    dag = fork_join_from_phases([(p.width, p.levels) for p in job.phases])
    for engine_job in (job, dag):
        trace = simulate_job(
            engine_job,
            AControl(convergence_rate),
            processors,
            quantum_length=quantum_length,
        )
        reports.append(audit_trace(trace, abg_expect))
        trace = simulate_job(
            engine_job,
            AGreedy(),
            processors,
            quantum_length=quantum_length,
        )
        reports.append(audit_trace(trace, agreedy_expect))
    return merge_reports(reports)


def _scenario_quickstart() -> AuditReport:
    # examples/quickstart.py: one fork-join job, ABG vs A-Greedy, P=64, L=200.
    rng = np.random.default_rng(_SEED)
    job = ForkJoinGenerator(200).generate(rng, transition_factor=20)
    return _single_job_reports(job, processors=64, quantum_length=200)


def _scenario_constant_parallelism() -> AuditReport:
    # figures 1/4 workload: constant-width job, transient behaviour.
    job = constant_parallelism_job(width=10, levels=4000)
    return _single_job_reports(job, processors=128, quantum_length=500)


def _scenario_single_job_sweep() -> AuditReport:
    # examples/single_job_sweep.py + benchmarks fig5: jobs across transition
    # factors on an unconstrained machine.
    rng = np.random.default_rng(_SEED + 1)
    gen = ForkJoinGenerator(200)
    reports = []
    for factor in (2, 8, 32):
        for _ in range(2):
            job = gen.generate(rng, transition_factor=factor)
            reports.append(
                _single_job_reports(job, processors=128, quantum_length=200)
            )
    return merge_reports(reports)


def _scenario_bounds() -> AuditReport:
    # benchmarks/test_bench_bounds.py workload: ramped jobs are the regime
    # where r < 1/CL holds and Theorems 3-4 are checkable.
    job = ramped_job(peak_width=16, levels_per_phase=400)
    cl = structural_transition_factor(job)
    reports = []
    for rate in (0.0, 0.2):
        if rate * cl >= 1.0:
            continue
        trace = simulate_job(job, AControl(rate), 64, quantum_length=200)
        expect = TraceExpectations(
            total_work=job.work,
            total_span=job.span,
            convergence_rate=rate,
            processors=64,
            transition_factor=max(cl, trace.measured_transition_factor()),
            check_bounds=True,
        )
        reports.append(audit_trace(trace, expect))
    return merge_reports(reports)


def _scenario_multiprogrammed_deq() -> AuditReport:
    # examples/multiprogrammed.py + fig6: a DEQ-shared machine.
    rng = np.random.default_rng(_SEED + 2)
    gen = ForkJoinGenerator(100)
    specs = []
    expectations: dict[int, TraceExpectations] = {}
    for i in range(6):
        job = gen.generate(rng, transition_factor=int(rng.integers(2, 24)))
        release = int(rng.integers(0, 4)) * 100
        specs.append(
            JobSpec(job=job, feedback=AControl(0.2), release_time=release, job_id=i)
        )
        expectations[i] = TraceExpectations(
            total_work=job.work, total_span=job.span, convergence_rate=0.2
        )
    result = simulate_job_set(
        specs, DynamicEquiPartitioning(), processors=32, quantum_length=100
    )
    return audit_multi_result(result, expectations=expectations)


def _scenario_multiprogrammed_roundrobin() -> AuditReport:
    # ablation-allocator workload: round-robin promises neither fairness nor
    # non-reservation, so only the universal invariants are audited.
    rng = np.random.default_rng(_SEED + 3)
    gen = ForkJoinGenerator(100)
    specs = [
        JobSpec(
            job=gen.generate(rng, transition_factor=8),
            feedback=AControl(0.2),
            job_id=i,
        )
        for i in range(4)
    ]
    result = simulate_job_set(
        specs, RoundRobinAllocator(), processors=16, quantum_length=100
    )
    return audit_multi_result(result, fair=False, non_reserving=False)


def _scenario_mixed_policies() -> AuditReport:
    # A-Greedy and ABG jobs sharing one DEQ machine (fig6's comparison setup).
    rng = np.random.default_rng(_SEED + 4)
    gen = ForkJoinGenerator(100)
    specs = []
    for i in range(4):
        feedback = AControl(0.2) if i % 2 == 0 else AGreedy()
        specs.append(
            JobSpec(job=gen.generate(rng, transition_factor=12), feedback=feedback, job_id=i)
        )
    result = simulate_job_set(
        specs, DynamicEquiPartitioning(), processors=24, quantum_length=100
    )
    return audit_multi_result(result)


def audit_scenarios() -> list[AuditScenario]:
    """The full named scenario list, in deterministic order."""
    return [
        AuditScenario("quickstart", _scenario_quickstart),
        AuditScenario("constant-parallelism", _scenario_constant_parallelism),
        AuditScenario("single-job-sweep", _scenario_single_job_sweep),
        AuditScenario("bounds", _scenario_bounds),
        AuditScenario("multiprogrammed-deq", _scenario_multiprogrammed_deq),
        AuditScenario("multiprogrammed-roundrobin", _scenario_multiprogrammed_roundrobin),
        AuditScenario("mixed-policies", _scenario_mixed_policies),
    ]


def run_audit_suite() -> list[tuple[str, AuditReport]]:
    """Run every scenario; returns ``(name, report)`` pairs."""
    return [(s.name, s.run()) for s in audit_scenarios()]


def format_suite(results: list[tuple[str, AuditReport]]) -> str:
    """Human-readable audit summary, one scenario per line (violations
    expanded underneath)."""
    lines = []
    for name, report in results:
        status = "ok" if report.ok else f"{len(report)} VIOLATION(S)"
        lines.append(
            f"{name:<28} {status}  ({len(report.checks)} invariant families)"
        )
        for violation in report:
            lines.append(f"    {violation}")
    total = sum(len(r) for _, r in results)
    lines.append(
        f"audit: {len(results)} scenarios, "
        + ("all invariants hold" if total == 0 else f"{total} violation(s)")
    )
    return "\n".join(lines)
