"""Long-form rule catalogue backing ``python -m repro lint --explain``.

:data:`repro.verify.findings.RULES` is the machine registry (code ->
severity + one-line summary); this module is the *human* registry: per
rule, the hazard it guards against, a minimal example that fires it, and
what a justified suppression looks like.  ``docs/STATIC_ANALYSIS.md``
renders the same material as prose — ``tests/test_verify_provenance.py``
checks that every code in :data:`RULES` has a catalogue entry and that
every catalogue code is mentioned in the doc, so the three surfaces
cannot drift silently.

Usage::

    python -m repro lint --explain ABG341
    from repro.verify.catalogue import CATALOGUE, explain
"""

from __future__ import annotations

from dataclasses import dataclass

from .findings import RULES, rule_severity

__all__ = ["RuleEntry", "CATALOGUE", "explain"]


@dataclass(frozen=True, slots=True)
class RuleEntry:
    """One rule's long-form documentation.

    ``description`` restates the one-liner from :data:`RULES`;
    ``hazard`` says what goes wrong when the rule is violated (with the
    paper/contract anchor); ``example`` is a minimal construct that
    fires the rule; ``suppression`` says when — if ever — an
    ``# abg: allow[...]`` is justified and what the reason should state.
    """

    code: str
    description: str
    hazard: str
    example: str
    suppression: str


def _entry(code: str, hazard: str, example: str, suppression: str) -> RuleEntry:
    return RuleEntry(
        code=code,
        description=RULES[code][1],
        hazard=hazard,
        example=example,
        suppression=suppression,
    )


#: code -> long-form entry, one per rule in :data:`RULES`.
CATALOGUE: dict[str, RuleEntry] = {
    e.code: e
    for e in (
        _entry(
            "ABG100",
            "A file that does not parse cannot be analyzed; every other "
            "guarantee is void for it.",
            "def f(:  # SyntaxError",
            "Never suppress; fix the syntax error.",
        ),
        _entry(
            "ABG101",
            "Every reproduced figure is seeded from default_rng_seed; "
            "ambient RNG state (stdlib random, np.random.*) makes runs "
            "incomparable bit-for-bit.",
            "import random; random.shuffle(jobs)",
            "Only for code provably outside any result path (e.g. a "
            "demo script); state that in the reason.",
        ),
        _entry(
            "ABG102",
            "Controller state d(q) and spans are accumulated floats; "
            "exact ==/!= against a float literal is a latent flake in "
            "the Theorem 3/4 bound checks.",
            "if d == 0.5: ...",
            "Acceptable when the value is assigned-not-computed (a "
            "sentinel); say so in the reason.",
        ),
        _entry(
            "ABG103",
            "A mutable default aliases state across calls; policies "
            "must be stateless per quantum (the A-Control recurrence "
            "reads only A(q-1)).",
            "def run(jobs=[]): ...",
            "Rarely justified; use None + in-body construction instead.",
        ),
        _entry(
            "ABG104",
            "Schedule order feeds T1(q)/Tinf(q) accounting; hash order "
            "varies per process, so iterating a set display unsorted "
            "leaks process identity into results.",
            "for j in {a, b, c}: ...",
            "Acceptable when the loop body is order-free (pure "
            "membership accumulation); the reason must say why order "
            "cannot matter.",
        ),
        _entry(
            "ABG105",
            "An __all__ out of sync with the module's definitions makes "
            "the public API surface unauditable.",
            "__all__ = ['gone']  # no `gone` defined",
            "Never suppress; fix the list.",
        ),
        _entry(
            "ABG201",
            "Each worker process has its own globals; a write that "
            "feeds any later result diverges between --workers 1 and "
            "--workers N.",
            "def work(u):\n    CACHE[u.key] = u  # module global",
            "Acceptable only for pure memoization where the cached "
            "value is a function of its key alone (see "
            "bench/scenarios.py); the reason must state that property.",
        ),
        _entry(
            "ABG202",
            "Call-to-call aliasing inside a worker makes results depend "
            "on how tasks were batched onto processes.",
            "def work(u, acc=[]): ...",
            "Rarely justified; use None + in-body construction instead.",
        ),
        _entry(
            "ABG211",
            "Per-factor child streams (default_rng([seed, factor])) are "
            "what make sweep jobs independent of sweep composition; a "
            "seedless generator breaks that independence.",
            "rng = np.random.default_rng()  # on a worker path",
            "Only for code provably outside any result path; say so.",
        ),
        _entry(
            "ABG212",
            "A seed from ambient state (pid, time, env) reintroduces "
            "nondeterminism through the back door.",
            "rng = default_rng(os.getpid())",
            "Acceptable when the 'seed' is a literal the analysis "
            "failed to trace; the reason must name the constant.",
        ),
        _entry(
            "ABG221",
            "Interprocedural upgrade of ABG104: set-typed locals and "
            "parameters iterated on a parallel path leak hash order "
            "into results.",
            "def work(keys: set): \n    for k in keys: total += w[k]",
            "Same bar as ABG104: the reason must say why order cannot "
            "affect the result.",
        ),
        _entry(
            "ABG231",
            "Pool dispatch must ship module-level functions and plain "
            "data; lambdas, nested functions, and open handles either "
            "fail to pickle or smuggle process-local state.",
            "pool.submit(lambda: run(u))",
            "Never suppress; lift the callee to module level.",
        ),
        _entry(
            "ABG290",
            "Suppressions are part of the proof surface; one without a "
            "justification is itself a finding.",
            "x = f()  # abg: allow[ABG201]",
            "Not suppressible; add the reason= clause.",
        ),
        _entry(
            "ABG301",
            "The batched engine silently falls back to the scalar loop "
            "for that policy — a perf cliff that looks like a slow "
            "machine, not a bug.",
            "class P(FeedbackPolicy):\n    def next_request(self, job): ...",
            "Prefer `batch_fallback = True` on the class over a "
            "suppression — it records scalar-only-by-design where the "
            "parity pass can see it.",
        ),
        _entry(
            "ABG302",
            "The two kernel sides compute different semantics: the "
            "subclass's scalar math against the ancestor's batched math.",
            "class P(Base):\n    def next_request(self, job):  # no *_batch override\n        ...",
            "Acceptable only when the override is a pure refactor with "
            "identical math; the reason must assert equivalence.",
        ),
        _entry(
            "ABG303",
            "Keyword calls and the scalar<->batched fallback break "
            "asymmetrically when the two sides disagree on parameter "
            "names or defaults.",
            "def allocate(self, jobs, cap=None): ...\ndef allocate_batch(self, jobs, limit=None): ...",
            "Never suppress; align the signatures.",
        ),
        _entry(
            "ABG304",
            "Naming says 'kernel pair', the registry says otherwise — "
            "either the pair should be contract-guarded or the twin "
            "naming is misleading.",
            "class W:\n    def generate(self): ...\n    def generate_batch(self): ...",
            "The advisory tier exists for plural helpers that merely "
            "look like kernel twins (see workloads/forkjoin.py); the "
            "reason must say what the *_batch method actually is.",
        ),
        _entry(
            "ABG311",
            "Tie order under the default introsort follows memory "
            "layout; equal keys permute nondeterministically, and "
            "indirect sorts carry that tie order into results.",
            "order = np.argsort(keys)",
            "Acceptable when keys are provably distinct; the reason "
            "must say why ties cannot occur.",
        ),
        _entry(
            "ABG312",
            "Float addition does not commute in rounding; dict order is "
            "insertion order, so reducing over a dict view bakes "
            "insertion history into the sum.",
            "total = sum(spans.values())",
            "Acceptable for exact arithmetic (int sums, see "
            "allocators/base.py); the reason must state the dtype.",
        ),
        _entry(
            "ABG313",
            "Integer array constructors default to the platform C long "
            "(32-bit on Windows), so index arithmetic widens "
            "differently across platforms.",
            "idx = np.arange(n)  # kernel module",
            "Acceptable for float-literal constructors where the dtype "
            "is unambiguous; prefer writing dtype= anyway.",
        ),
        _entry(
            "ABG314",
            "out= aliasing a ufunc input overwrites operands still "
            "being read; a shared module-level array stored without "
            ".copy() makes every instance share one mutable buffer.",
            "np.add(a, b, out=a[1:])",
            "Acceptable when the aliasing is element-wise safe "
            "(same-index in/out); the reason must argue that safety.",
        ),
        _entry(
            "ABG315",
            "Column order follows dict insertion order, which nothing "
            "canonicalized; the same data can produce differently "
            "ordered columns.",
            "col = np.fromiter(d.values(), dtype=np.float64)",
            "Acceptable when the dict is built in canonical order by "
            "construction; the reason must name that invariant.",
        ),
        _entry(
            "ABG331",
            "Attribute-level upgrade of ABG201: CONFIG.limits.x = ... "
            "diverges between worker counts just like a direct global "
            "write.",
            "def work(u):\n    CONFIG.limits.max_q = u.q",
            "Same bar as ABG201: pure memoization only, stated in the "
            "reason.",
        ),
        _entry(
            "ABG332",
            "The supervised pool retries failed units — a mutation that "
            "lands before the raise replays on retry, double-applying "
            "the effect.",
            "def work(u):\n    u.jobs.pop()\n    if bad: raise RuntimeError",
            "Acceptable when the mutation is idempotent; the reason "
            "must argue idempotence.",
        ),
        _entry(
            "ABG333",
            "An unresolvable pool callee escapes the proved worker set; "
            "nothing downstream of it is checked.",
            "pool.submit(registry[name], unit)",
            "Prefer a DEFAULT_ROOT_PATTERNS entry for registry dispatch "
            "over a suppression, so the callees stay inside the proved "
            "set.",
        ),
        _entry(
            "ABG341",
            "The callee stores a statically-possible view of a buffer "
            "the caller's class keeps mutating in place; later writes "
            "through the arena silently rewrite the 'recorded' data.",
            "log.set_layout(kernel.jids)   # callee stores np.asarray(jids)\nkernel.admit(job)              # mutates jids in place",
            "Acceptable when the callee is known to consume the view "
            "before the next mutation; prefer an explicit .copy() at "
            "the boundary — the reason must state the lifetime argument.",
        ),
        _entry(
            "ABG342",
            "Cross-call generalization of ABG314: when the out= target "
            "and an input resolve to the same buffer through a call "
            "boundary, partial results overwrite operands still being "
            "read.",
            "def step(self):\n    scale(self.work, out=self.work_view)  # both alias one arena column",
            "Acceptable only for provably element-wise same-index "
            "aliasing; the reason must argue that safety.",
        ),
        _entry(
            "ABG343",
            "Write-after-borrow: a stored view of a buffer the owning "
            "class mutates in place goes stale the moment the class "
            "writes again — the stored 'snapshot' tracks the live data.",
            "self.snapshot = self._arena.work[: self.n]  # arena later written in place",
            "Acceptable when the store is an intentional live window "
            "(a borrow, not a snapshot); the reason must say the "
            "consumer expects live data.",
        ),
        _entry(
            "ABG344",
            "A view of a doubling/resize-managed buffer dangles after "
            "the next reallocation: the owner's writes land in the new "
            "buffer while the stored view still reads the old one.",
            "self.window = self._arena.slots[:n]  # arena doubles on demand",
            "Acceptable only when no reallocation can occur during the "
            "view's lifetime (e.g. capacity pre-sized); the reason "
            "must state that bound.",
        ),
        _entry(
            "ABG401",
            "A replayed golden fixture produced different per-quantum "
            "values than its recorded reference run: a kernel or policy "
            "change altered scheduling behaviour.  The finding carries "
            "the first diverging quantum and a field-level expected/got "
            "diff — the regression's exact birthplace.",
            "python -m repro verify-traces  # after perturbing the DEQ waterfall",
            "Not a source-comment rule; if the new behaviour is intended, "
            "re-record the fixtures (`python -m repro record-traces`) in "
            "the same PR and explain the semantic change.",
        ),
        _entry(
            "ABG402",
            "A replay diverged in *shape*: a job missing from the result, "
            "an unexpected extra job, or a job finishing after a "
            "different number of quanta — usually admission or "
            "termination logic drifting rather than per-quantum math.",
            "python -m repro verify-traces  # after changing release handling",
            "Not a source-comment rule; same recourse as ABG401 — "
            "re-record only if the shape change is intended.",
        ),
        _entry(
            "ABG403",
            "A golden fixture could not be replayed at all: unknown "
            "schema, malformed scenario/trace payload, digest mismatch "
            "(hand-edited without re-recording), or per-trace metadata "
            "disagreeing before any quantum was compared.",
            "python -m repro verify-traces  # after hand-editing a fixture JSON",
            "Not a source-comment rule; never edit fixture files by "
            "hand — regenerate them with `record-traces`.",
        ),
        _entry(
            "ABG404",
            "Fixture freshness: re-recording a committed fixture's "
            "stored scenario under the current tree yields a different "
            "digest, i.e. behaviour changed but the fixture was not "
            "re-recorded (or a registry scenario has no fixture).  CI "
            "runs `record-traces --check` so goldens cannot silently "
            "rot.",
            "python -m repro record-traces --check",
            "Not a source-comment rule; run `python -m repro "
            "record-traces` and commit the refreshed fixtures with the "
            "behaviour change.",
        ),
    )
}


def explain(code: str) -> str | None:
    """The formatted ``--explain`` body for ``code`` (None if unknown)."""
    entry = CATALOGUE.get(code.upper())
    if entry is None:
        return None
    severity = rule_severity(entry.code)
    example = "\n".join(f"    {line}" for line in entry.example.splitlines())
    return (
        f"{entry.code} ({severity}): {entry.description}\n"
        f"\n"
        f"Hazard:\n"
        f"    {entry.hazard}\n"
        f"\n"
        f"Example (fires the rule):\n"
        f"{example}\n"
        f"\n"
        f"Suppression guidance:\n"
        f"    {entry.suppression}\n"
        f"\n"
        f"Suppress with `# abg: allow[{entry.code}] reason=<why>` — the\n"
        f"reason clause is mandatory (ABG290).  Full catalogue:\n"
        f"docs/STATIC_ANALYSIS.md."
    )
