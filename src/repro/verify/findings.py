"""Shared finding model for the ABG static-analysis passes.

All analysis layers — the file-local lint (:mod:`repro.verify.lint`,
rules ``ABG1xx``), the interprocedural flow analysis
(:mod:`repro.verify.flow`, rules ``ABG2xx``), and the kernel-parity /
numerical-determinism passes (:mod:`repro.verify.flow.kernel`, rules
``ABG3xx``), and the golden-trace replay harness (:mod:`repro.goldens`,
rules ``ABG4xx``) — report the same
:class:`LintFinding` record, draw severities from the same registry, and
honor the same suppression comments, so ``python -m repro lint`` can emit
one unified report with a single exit-code policy.

Suppression syntax
------------------

Two comment forms silence findings on their line:

- ``# noqa`` / ``# noqa: ABG102,ABG104`` — the legacy file-local form; a
  bare ``noqa`` silences every rule on the line.
- ``# abg: allow[ABG201] reason=<free text>`` — the justification-required
  form shared by every ABG rule.  The ``reason=`` clause is mandatory: an
  ``allow`` without a non-empty reason does **not** suppress anything and
  is itself reported as ``ABG290``.

Exit-code policy (shared by every entry point): ``0`` when no finding of
severity ``"error"`` exists, ``1`` otherwise, ``2`` on usage errors.
Almost every rule is an ``"error"``; the ``"warning"`` tier carries the
advisory rules (currently ``ABG304``), which are reported but never flip
the exit code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

__all__ = [
    "LintFinding",
    "LineSuppression",
    "RULES",
    "rule_severity",
    "line_suppression",
    "is_suppressed",
    "scan_suppressions",
    "findings_payload",
    "render_findings",
    "exit_code",
]

#: Every rule either layer can emit: code -> (severity, one-line summary).
#: The long-form catalogue with paper anchors lives in docs/STATIC_ANALYSIS.md.
RULES: dict[str, tuple[str, str]] = {
    "ABG100": ("error", "source file does not parse"),
    "ABG101": ("error", "unseeded/global randomness (stdlib random, numpy global state)"),
    "ABG102": ("error", "exact ==/!= against a float literal"),
    "ABG103": ("error", "mutable default argument"),
    "ABG104": ("error", "iteration over a syntactic set display/call without sorted()"),
    "ABG105": ("error", "__all__ inconsistent with module definitions"),
    "ABG201": ("error", "module-global or closure state written on a worker-dispatched path"),
    "ABG202": ("error", "mutable default argument on a worker-reachable function"),
    "ABG211": ("error", "ambient RNG on a parallel path (seedless default_rng or global state)"),
    "ABG212": ("error", "RNG seed on a parallel path not derived from a seed parameter"),
    "ABG221": ("error", "hash-order set iteration on a parallel path without sorted()"),
    "ABG231": ("error", "unpicklable or handle-bearing payload shipped to a process pool"),
    "ABG290": ("error", "`# abg: allow[...]` suppression without a reason= justification"),
    "ABG301": ("error", "scalar kernel method without a batched counterpart or fallback marker"),
    "ABG302": ("error", "scalar override inherits an ancestor's batched counterpart (silent drift)"),
    "ABG303": ("error", "signature drift between a kernel-pair method and its base declaration"),
    "ABG304": ("warning", "inferred scalar<->batched pair (x / x_batch) not registered as a parity contract"),
    "ABG311": ("error", "indirect sort (argsort) without kind=\"stable\" in a kernel module"),
    "ABG312": ("error", "order-sensitive float reduction over a hash-ordered collection"),
    "ABG313": ("error", "array constructor without an explicit dtype in a kernel module"),
    "ABG314": ("error", "in-place aliasing of a shared arena buffer"),
    "ABG315": ("error", "columnar array built directly from a dict view"),
    "ABG331": ("error", "attribute-level mutation of shared instance state on a worker path"),
    "ABG332": ("error", "parameter mutated before a possible raise on a worker path (retry replay hazard)"),
    "ABG333": ("error", "pool-dispatch callee unresolvable in strict-roots mode"),
    "ABG341": ("error", "view of a mutated arena buffer escapes through a call boundary"),
    "ABG342": ("error", "out=/in-place target aliases an input across a call boundary"),
    "ABG343": ("error", "stored view of a buffer the owning class mutates in place (write-after-borrow)"),
    "ABG344": ("error", "stored view of a reallocation-managed buffer (stale after doubling/resize)"),
    "ABG401": ("error", "golden trace diverged: field-level mismatch at a replayed quantum"),
    "ABG402": ("error", "golden trace diverged in shape: job set or quantum count mismatch"),
    "ABG403": ("error", "golden bundle unreadable: schema, digest, or metadata mismatch"),
    "ABG404": ("error", "golden fixture stale: re-recording from the current tree changes it"),
}


def rule_severity(code: str) -> str:
    """Severity tier of ``code`` (unknown codes default to ``"error"``)."""
    entry = RULES.get(code)
    return entry[0] if entry is not None else "error"


@dataclass(frozen=True, slots=True)
class LintFinding:
    """One rule violation at a source location.

    ``severity`` comes from :data:`RULES`; ``trace`` is the sample
    call path a flow finding is reachable along (empty for file-local
    findings).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"
    trace: tuple[str, ...] = ()

    def __str__(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.trace:
            text += f" [reachable via {' -> '.join(self.trace)}]"
        return text


# -- suppression comments ----------------------------------------------------

_ALLOW_RE = re.compile(
    r"#\s*abg:\s*allow\[(?P<codes>[A-Za-z0-9_,\s]*)\]\s*(?:reason\s*=\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True, slots=True)
class LineSuppression:
    """A suppression comment found on one line.

    ``codes`` empty means "every rule" (bare ``# noqa`` only);
    ``requires_reason`` marks the ``abg: allow`` form, which is inert
    unless ``reason`` is a non-empty string.
    """

    codes: frozenset[str] = frozenset()
    requires_reason: bool = False
    reason: str | None = None

    @property
    def effective(self) -> bool:
        return not self.requires_reason or bool(self.reason and self.reason.strip())


def line_suppression(source_lines: Sequence[str], line: int) -> LineSuppression | None:
    """The suppression comment on ``line`` (1-based), if any.

    Recognizes both the legacy ``# noqa[: CODES]`` form and the
    justification-required ``# abg: allow[CODES] reason=...`` form.
    """
    if not (1 <= line <= len(source_lines)):
        return None
    text = source_lines[line - 1]
    match = _ALLOW_RE.search(text)
    if match is not None:
        codes = frozenset(
            c.strip().upper() for c in match.group("codes").split(",") if c.strip()
        )
        return LineSuppression(
            codes=codes, requires_reason=True, reason=match.group("reason")
        )
    marker = text.find("# noqa")
    if marker < 0:
        return None
    rest = text[marker + len("# noqa") :].strip()
    if rest.startswith(":"):
        codes = frozenset(c.strip().upper() for c in rest[1:].split(",") if c.strip())
        return LineSuppression(codes=codes)
    return LineSuppression()


def is_suppressed(source_lines: Sequence[str], line: int, code: str) -> bool:
    """Whether an *effective* suppression on ``line`` covers ``code``."""
    sup = line_suppression(source_lines, line)
    if sup is None or not sup.effective:
        return False
    return not sup.codes or code.upper() in sup.codes


def scan_suppressions(source_lines: Sequence[str], path: str) -> list[LintFinding]:
    """``ABG290`` findings for every ``abg: allow`` comment lacking a reason."""
    findings: list[LintFinding] = []
    for lineno, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        reason = match.group("reason")
        if reason is None or not reason.strip():
            findings.append(
                LintFinding(
                    path=path,
                    line=lineno,
                    col=match.start(),
                    code="ABG290",
                    message="suppression without justification; write "
                    "`# abg: allow[CODE] reason=<why the rule is bent here>`",
                    severity=rule_severity("ABG290"),
                )
            )
    return findings


# -- unified report rendering ------------------------------------------------


@dataclass(frozen=True, slots=True)
class _Totals:
    errors: int = 0
    warnings: int = 0


def _totals(findings: Iterable[LintFinding]) -> _Totals:
    errors = warnings = 0
    for f in findings:
        if f.severity == "warning":
            warnings += 1
        else:
            errors += 1
    return _Totals(errors=errors, warnings=warnings)


def findings_payload(
    findings: Sequence[LintFinding], *, stats: dict[str, Any] | None = None
) -> dict[str, Any]:
    """JSON-serializable unified report (the ``--format=json`` body)."""
    totals = _totals(findings)
    payload: dict[str, Any] = {
        "schema": 1,
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "severity": f.severity,
                "message": f.message,
                "trace": list(f.trace),
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "errors": totals.errors,
            "warnings": totals.warnings,
        },
    }
    if stats:
        payload["stats"] = stats
    return payload


def render_findings(findings: Sequence[LintFinding]) -> str:
    """Human-readable unified report: one line per finding plus a summary."""
    lines = [str(f) for f in findings]
    totals = _totals(findings)
    if findings:
        lines.append(f"{len(findings)} finding(s): {totals.errors} error(s), "
                     f"{totals.warnings} warning(s)")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def exit_code(findings: Sequence[LintFinding]) -> int:
    """The shared exit-code policy: 1 when any error-severity finding exists."""
    return 1 if any(f.severity != "warning" for f in findings) else 0
