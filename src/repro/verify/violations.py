"""Structured violation reporting for the invariant auditor.

The auditor never asserts: it *reports*.  Every broken invariant becomes a
:class:`Violation` carrying a machine-readable code (one of the ``V_*``
constants below), the job/quantum it was observed at, and the measured vs
expected quantities.  An :class:`AuditReport` aggregates the violations of
one audit together with the list of checks that actually ran, so "no
violations" can be distinguished from "check skipped".

The engines' opt-in strict mode raises :class:`InvariantError` instead —
fail-fast is the right behaviour *inside* a simulation, structured reporting
the right behaviour when auditing one after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "Violation",
    "AuditReport",
    "InvariantError",
    "merge_reports",
    "V_ALLOTMENT_EXCEEDS_AVAILABLE",
    "V_ALLOTMENT_EXCEEDS_REQUEST",
    "V_REQUEST_NOT_CEIL",
    "V_FIRST_REQUEST",
    "V_QUANTUM_INDEX",
    "V_STEPS_EXCEED_QUANTUM",
    "V_EARLY_STOP_NOT_LAST",
    "V_WORK_EXCEEDS_CAPACITY",
    "V_IDLE_WITH_READY_TASKS",
    "V_SPAN_EXCEEDS_WORK",
    "V_SPAN_EXCEEDS_STEPS",
    "V_WORK_CONSERVATION",
    "V_SPAN_CONSERVATION",
    "V_ACONTROL_RECURRENCE",
    "V_THEOREM3_TIME_BOUND",
    "V_THEOREM4_WASTE_BOUND",
    "V_CAPACITY_EXCEEDED",
    "V_DEQ_UNFAIR",
    "V_RESERVATION",
    "V_RELEASE_ORDER",
    "V_BOUNDARY_ALIGNMENT",
    "V_PRECEDENCE",
    "V_DOUBLE_EXECUTION",
    "V_INCOMPLETE_DAG",
    "V_NOT_LOWEST_LEVEL_FIRST",
    "V_OVERSCHEDULED_STEP",
]

# --- per-quantum allocation invariants (paper Section 2, Figure 3) ---------
V_ALLOTMENT_EXCEEDS_AVAILABLE = "allotment-exceeds-available"
V_ALLOTMENT_EXCEEDS_REQUEST = "allotment-exceeds-request"
V_REQUEST_NOT_CEIL = "request-not-ceil"
V_FIRST_REQUEST = "first-request-not-one"
V_QUANTUM_INDEX = "quantum-index-order"
V_STEPS_EXCEED_QUANTUM = "steps-exceed-quantum"
V_EARLY_STOP_NOT_LAST = "early-stop-not-last"

# --- greedy execution invariants (Section 2, Definitions of B-Greedy) ------
V_WORK_EXCEEDS_CAPACITY = "work-exceeds-capacity"
V_IDLE_WITH_READY_TASKS = "idle-with-ready-tasks"
V_SPAN_EXCEEDS_WORK = "span-exceeds-work"
V_SPAN_EXCEEDS_STEPS = "span-exceeds-steps"

# --- whole-trace conservation (Section 2: exact A(q) accounting) -----------
V_WORK_CONSERVATION = "work-conservation"
V_SPAN_CONSERVATION = "span-conservation"

# --- A-Control recurrence (Equation 3 / Theorem 1) -------------------------
V_ACONTROL_RECURRENCE = "acontrol-recurrence"

# --- bound satisfaction (Theorems 3-4) -------------------------------------
V_THEOREM3_TIME_BOUND = "theorem3-time-bound"
V_THEOREM4_WASTE_BOUND = "theorem4-waste-bound"

# --- multiprogrammed allocation (Sections 5.1, 6.3, Theorem 5) -------------
V_CAPACITY_EXCEEDED = "capacity-exceeded"
V_DEQ_UNFAIR = "deq-unfair"
V_RESERVATION = "reservation"
V_RELEASE_ORDER = "release-order"
V_BOUNDARY_ALIGNMENT = "boundary-alignment"

# --- dag schedule replay (Section 2: precedence + completion) --------------
V_PRECEDENCE = "precedence"
V_DOUBLE_EXECUTION = "double-execution"
V_INCOMPLETE_DAG = "incomplete-dag"
V_NOT_LOWEST_LEVEL_FIRST = "not-lowest-level-first"
V_OVERSCHEDULED_STEP = "overscheduled-step"


@dataclass(frozen=True, slots=True)
class Violation:
    """One mechanically-detected breach of a model invariant."""

    code: str
    """Machine-readable code, one of the ``V_*`` constants."""

    message: str
    """Human-readable description with the offending quantities."""

    job_id: int | None = None
    """Job the violation belongs to (``None`` for single-job audits)."""

    quantum: int | None = None
    """1-based quantum index ``q`` (``None`` for whole-trace violations)."""

    measured: float | None = None
    """The observed quantity, when the check compares against a bound."""

    bound: float | None = None
    """The bound the observed quantity should have satisfied."""

    def __str__(self) -> str:
        where = []
        if self.job_id is not None:
            where.append(f"job {self.job_id}")
        if self.quantum is not None:
            where.append(f"q={self.quantum}")
        prefix = f"[{self.code}]" + (f" ({', '.join(where)})" if where else "")
        return f"{prefix} {self.message}"


@dataclass(frozen=True, slots=True)
class AuditReport:
    """The outcome of one audit: violations found plus checks performed."""

    violations: tuple[Violation, ...] = ()
    checks: tuple[str, ...] = ()
    """Codes of the invariant families that were actually evaluated —
    distinguishes "clean" from "not checked"."""

    @property
    def ok(self) -> bool:
        return not self.violations

    def codes(self) -> set[str]:
        """Distinct violation codes present in the report."""
        return {v.code for v in self.violations}

    def by_code(self, code: str) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.code == code)

    def checked(self, code: str) -> bool:
        return code in self.checks

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self.violations)

    def summary(self) -> str:
        if self.ok:
            return f"OK ({len(self.checks)} invariant families checked)"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


def merge_reports(reports: Iterable[AuditReport]) -> AuditReport:
    """Combine several audit reports into one (violations concatenated,
    checks unioned in first-seen order)."""
    violations: list[Violation] = []
    checks: list[str] = []
    for report in reports:
        violations.extend(report.violations)
        for c in report.checks:
            if c not in checks:
                checks.append(c)
    return AuditReport(violations=tuple(violations), checks=tuple(checks))


class InvariantError(RuntimeError):
    """Raised by the engines' strict mode at the moment an invariant breaks.

    Carries the same structured :class:`Violation` the auditor would have
    reported, so tests can assert on the code rather than message text.
    """

    def __init__(self, violation: Violation):
        super().__init__(str(violation))
        self.violation = violation
