"""Repo-specific determinism and correctness lint pass.

A small AST linter encoding the rules that generic tools cannot know about
this codebase (see CONTRIBUTING.md "Ground rules"):

``ABG101`` **unseeded randomness** — the ``random`` stdlib module and the
legacy ``numpy.random.<fn>()`` global-state functions are banned inside
``src/repro``; every source of randomness must be an explicitly passed
``numpy.random.Generator`` (``default_rng(seed)`` construction is allowed).
Global random state silently breaks bit-for-bit reproducibility.

``ABG102`` **float equality** — ``==`` / ``!=`` against a float literal.
Controller states and spans are accumulated floats; exact comparison is a
latent flake.  Compare against a tolerance, or suppress with ``# noqa:
ABG102`` where exactness is structural (e.g. a value assigned verbatim).

``ABG103`` **mutable default argument** — list/dict/set displays or
constructor calls as parameter defaults alias state across calls.

``ABG104`` **set-order iteration** — ``for`` loops (and sorted-less
comprehensions) iterating a set display or ``set(...)`` call directly.
Set iteration order depends on hash seeding; schedulers must iterate in a
deterministic order (sort first).

``ABG105`` **__all__ consistency** — every name exported in ``__all__``
must exist at module top level, and every public top-level function/class
must be listed in ``__all__`` (when the module declares one).

``ABG290`` **unjustified suppression** — an ``# abg: allow[...]`` comment
without a ``reason=`` clause (see :mod:`repro.verify.findings`).

Suppression: a trailing ``# noqa`` comment silences every rule on that
line; ``# noqa: ABG102[,ABG104]`` silences specific rules; the
justification-required ``# abg: allow[ABG104] reason=...`` form shared
with the flow analysis (``repro.verify.flow``) works everywhere.

Run as a module::

    python -m repro.verify.lint src/repro        # exit 1 on findings
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .findings import (
    LintFinding,
    is_suppressed,
    rule_severity,
    scan_suppressions,
)

__all__ = [
    "LintFinding",
    "check_source",
    "check_file",
    "lint_paths",
    "main",
    "RULE_CODES",
]

RULE_CODES = ("ABG101", "ABG102", "ABG103", "ABG104", "ABG105", "ABG290")

#: numpy.random attributes that are deterministic-by-construction and allowed.
_ALLOWED_NP_RANDOM = frozenset(
    {"Generator", "SeedSequence", "default_rng", "BitGenerator", "PCG64"}
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source: str):
        self.path = path
        self.lines = source.splitlines()
        self.findings: list[LintFinding] = []
        self._np_aliases: set[str] = set()
        self._np_random_aliases: set[str] = set()
        self._random_module_aliases: set[str] = set()

    # -- helpers ------------------------------------------------------------

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if is_suppressed(self.lines, line, code):
            return
        self.findings.append(
            LintFinding(
                path=self.path,
                line=line,
                col=col,
                code=code,
                message=message,
                severity=rule_severity(code),
            )
        )

    # -- ABG101: unseeded randomness ----------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_module_aliases.add(alias.asname or "random")
                self._emit(
                    node,
                    "ABG101",
                    "stdlib `random` is banned in src/repro; pass a seeded "
                    "numpy.random.Generator instead",
                )
            elif alias.name in ("numpy", "numpy.random"):
                target = alias.asname or alias.name.split(".")[0]
                if alias.name == "numpy.random":
                    self._np_random_aliases.add(alias.asname or "numpy")
                else:
                    self._np_aliases.add(target)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._emit(
                node,
                "ABG101",
                "stdlib `random` is banned in src/repro; pass a seeded "
                "numpy.random.Generator instead",
            )
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _ALLOWED_NP_RANDOM:
                    self._emit(
                        node,
                        "ABG101",
                        f"`from numpy.random import {alias.name}` uses numpy's "
                        "global random state; use Generator/default_rng",
                    )
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._np_random_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    def _np_random_attr(self, node: ast.Attribute) -> str | None:
        """If ``node`` is ``<numpy alias>.random.<name>`` or
        ``<numpy.random alias>.<name>``, return ``<name>``."""
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self._np_aliases
        ):
            return node.attr
        if isinstance(value, ast.Name) and value.id in self._np_random_aliases:
            return node.attr
        return None

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = self._np_random_attr(node)
        if name is not None and name not in _ALLOWED_NP_RANDOM:
            self._emit(
                node,
                "ABG101",
                f"numpy.random.{name} uses numpy's global random state; "
                "use an explicitly passed Generator",
            )
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self._random_module_aliases
        ):
            self._emit(
                node,
                "ABG101",
                f"random.{node.attr} draws from unseeded global state",
            )
        self.generic_visit(node)

    # -- ABG102: float equality ---------------------------------------------

    @staticmethod
    def _is_float_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.UnaryOp):
            return _Linter._is_float_expr(node.operand)
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                self._is_float_expr(left) or self._is_float_expr(right)
            ):
                self._emit(
                    node,
                    "ABG102",
                    "exact ==/!= against a float literal; compare with a "
                    "tolerance (math.isclose) or add `# noqa: ABG102` if "
                    "the value is assigned verbatim",
                )
                break
        self.generic_visit(node)

    # -- ABG103: mutable default arguments ----------------------------------

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                       ast.DictComp, ast.SetComp))
            if (
                not bad
                and isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            ):
                bad = True
            if bad:
                self._emit(
                    default,
                    "ABG103",
                    "mutable default argument aliases state across calls; "
                    "default to None (or use dataclasses.field)",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- ABG104: set-order iteration ----------------------------------------

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra (a | b, a - b, ...) — only flag when a side is
            # syntactically a set, otherwise we cannot know the type.
            return _Linter._is_set_expr(node.left) or _Linter._is_set_expr(node.right)
        return False

    def _check_set_iteration(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._emit(
                iter_node,
                "ABG104",
                "iterating a set directly is hash-order dependent; wrap in "
                "sorted(...) for a deterministic traversal",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    # -- ABG105: __all__ consistency ----------------------------------------

    def check_module_exports(self, tree: ast.Module) -> None:
        declared: list[tuple[ast.AST, str]] = []
        top_level: set[str] = set()
        all_node: ast.AST | None = None
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                top_level.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            top_level.add(name_node.id)
                if (
                    len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "__all__"
                    and isinstance(stmt.value, (ast.List, ast.Tuple))
                ):
                    all_node = stmt
                    for elt in stmt.value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            declared.append((elt, elt.value))
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                top_level.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    top_level.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.If):
                # TYPE_CHECKING / version-gated definitions: collect one
                # level of conditional names.
                for sub in [*stmt.body, *stmt.orelse]:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        top_level.add(sub.name)
                    elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                top_level.add(alias.asname or alias.name.split(".")[0])

        if all_node is None:
            return
        exported = {name for _, name in declared}
        for node, name in declared:
            if name not in top_level:
                self._emit(
                    node,
                    "ABG105",
                    f"__all__ exports {name!r} but the module never defines it",
                )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not stmt.name.startswith("_") and stmt.name not in exported:
                    self._emit(
                        stmt,
                        "ABG105",
                        f"public top-level name {stmt.name!r} missing from __all__",
                    )


def check_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one source string; returns findings sorted by position."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="ABG100",
                message=f"syntax error: {exc.msg}",
                severity=rule_severity("ABG100"),
            )
        ]
    linter = _Linter(path, source)
    linter.visit(tree)
    linter.check_module_exports(tree)
    linter.findings.extend(scan_suppressions(linter.lines, path))
    return sorted(linter.findings, key=lambda f: (f.line, f.col, f.code))


def check_file(path: Path | str) -> list[LintFinding]:
    p = Path(path)
    return check_source(p.read_text(encoding="utf-8"), str(p))


def _iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.exists():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
    return files


def lint_paths(paths: Iterable[Path | str]) -> list[LintFinding]:
    """Lint files and directories (recursively); returns all findings."""
    findings: list[LintFinding] = []
    for f in _iter_python_files(paths):
        findings.extend(check_file(f))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.verify.lint <file-or-dir> ...", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
