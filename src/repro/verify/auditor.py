"""Invariant auditor: replay recorded traces against the paper's model.

The theorems of the paper hold only under a precise set of mechanical
invariants — conservative allocation, greedy non-idling, exact ``A(q)``
accounting, DAG precedence, the A-Control recurrence, fair non-reserving
multiprogrammed allocation.  This module checks each of them against a
recorded :class:`~repro.core.types.JobTrace` (or a whole
:class:`~repro.sim.multi.MultiJobResult`, or a step-level dag schedule) and
reports structured :class:`~repro.verify.violations.Violation`\\ s instead of
asserting, so a single audit surfaces *every* breach at once.

Mapping of checks to the paper (see docs/ARCHITECTURE.md for the narrative):

==============================  =============================================
check / violation code          paper anchor
==============================  =============================================
allotment-exceeds-*             conservative allocator, Section 2
request-not-ceil                integer requests, Section 2 (Figure 3 loop)
idle-with-ready-tasks           greedy scheduling, Definition of B-Greedy
work-exceeds-capacity           ``T1(q) <= a(q) * L`` (Section 5.1)
span-exceeds-steps              ``beta(q) <= 1`` for breadth-first (5.1)
work/span-conservation          ``sum T1(q) = T1``, ``sum Tinf(q) >= Tinf``
                                (exact for B-Greedy, Section 2)
acontrol-recurrence             Equation 3 / Theorem 1
theorem3-time-bound             Theorem 3
theorem4-waste-bound            Theorem 4
capacity/deq-unfair/reservation fair + non-reserving allocator, 5.1 & 6.3
precedence / incomplete-dag     dag model, Section 2
not-lowest-level-first          B-Greedy's lowest-level-first rule
==============================  =============================================
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..analysis.bounds import theorem3_time_bound, theorem4_waste_bound
from ..core.types import JobTrace, integer_request
from ..dag.graph import Dag
from ..sim.multi import MultiJobResult
from . import violations as V
from .violations import AuditReport, Violation

__all__ = [
    "audit_trace",
    "audit_multi_result",
    "audit_dag_schedule",
    "TraceExpectations",
]


class TraceExpectations:
    """Ground truth about a job that a trace can be audited against.

    All fields are optional; checks needing an absent field are skipped and
    left out of :attr:`AuditReport.checks`.
    """

    __slots__ = (
        "total_work",
        "total_span",
        "convergence_rate",
        "breadth_first",
        "completed",
        "processors",
        "transition_factor",
        "check_bounds",
    )

    def __init__(
        self,
        *,
        total_work: int | None = None,
        total_span: float | None = None,
        convergence_rate: float | None = None,
        breadth_first: bool = True,
        completed: bool = True,
        processors: int | None = None,
        transition_factor: float | None = None,
        check_bounds: bool = False,
    ) -> None:
        self.total_work = total_work
        self.total_span = total_span
        self.convergence_rate = convergence_rate
        self.breadth_first = breadth_first
        self.completed = completed
        self.processors = processors
        self.transition_factor = transition_factor
        self.check_bounds = check_bounds


def _rel_close(a: float, b: float, rtol: float, atol: float) -> bool:
    return abs(a - b) <= atol + rtol * max(abs(a), abs(b))


def audit_trace(
    trace: JobTrace,
    expect: TraceExpectations | None = None,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-6,
) -> AuditReport:
    """Audit one job's quantum trace against the paper's model invariants.

    Returns an :class:`AuditReport`; ``report.ok`` means every applicable
    invariant held.  Pass a :class:`TraceExpectations` to unlock the checks
    that need ground truth (conservation against the job's true ``T1`` /
    ``Tinf``, the A-Control recurrence for a known convergence rate, and the
    Theorem 3/4 bounds).
    """
    exp = expect if expect is not None else TraceExpectations()
    jid = trace.job_id
    out: list[Violation] = []
    checks: list[str] = [
        V.V_QUANTUM_INDEX,
        V.V_FIRST_REQUEST,
        V.V_REQUEST_NOT_CEIL,
        V.V_ALLOTMENT_EXCEEDS_AVAILABLE,
        V.V_ALLOTMENT_EXCEEDS_REQUEST,
        V.V_STEPS_EXCEED_QUANTUM,
        V.V_EARLY_STOP_NOT_LAST,
        V.V_WORK_EXCEEDS_CAPACITY,
        V.V_IDLE_WITH_READY_TASKS,
        V.V_SPAN_EXCEEDS_WORK,
    ]

    records = trace.records
    if not records:
        return AuditReport(violations=(), checks=tuple(checks))

    # --- per-quantum structural invariants --------------------------------
    for i, rec in enumerate(records):
        q = rec.index
        if q != i + 1:
            out.append(
                Violation(
                    V.V_QUANTUM_INDEX,
                    f"quantum index {q} at position {i} (expected {i + 1})",
                    job_id=jid,
                    quantum=q,
                )
            )
        expected_int = integer_request(rec.request)
        if rec.request_int != expected_int:
            out.append(
                Violation(
                    V.V_REQUEST_NOT_CEIL,
                    f"request_int {rec.request_int} != ceil(d)={expected_int} "
                    f"for d={rec.request!r}",
                    job_id=jid,
                    quantum=q,
                    measured=rec.request_int,
                    bound=expected_int,
                )
            )
        if rec.allotment > rec.available:
            out.append(
                Violation(
                    V.V_ALLOTMENT_EXCEEDS_AVAILABLE,
                    f"a(q)={rec.allotment} > p(q)={rec.available}",
                    job_id=jid,
                    quantum=q,
                    measured=rec.allotment,
                    bound=rec.available,
                )
            )
        if rec.allotment > rec.request_int:
            out.append(
                Violation(
                    V.V_ALLOTMENT_EXCEEDS_REQUEST,
                    f"allocator not conservative: a(q)={rec.allotment} > "
                    f"ceil(d(q))={rec.request_int}",
                    job_id=jid,
                    quantum=q,
                    measured=rec.allotment,
                    bound=rec.request_int,
                )
            )
        if rec.steps > rec.quantum_length:
            out.append(
                Violation(
                    V.V_STEPS_EXCEED_QUANTUM,
                    f"steps={rec.steps} > L={rec.quantum_length}",
                    job_id=jid,
                    quantum=q,
                    measured=rec.steps,
                    bound=rec.quantum_length,
                )
            )
        if rec.steps < rec.quantum_length and i != len(records) - 1:
            out.append(
                Violation(
                    V.V_EARLY_STOP_NOT_LAST,
                    f"quantum stopped at {rec.steps}/{rec.quantum_length} steps "
                    "but is not the job's final quantum",
                    job_id=jid,
                    quantum=q,
                )
            )
        if rec.work > rec.allotment * rec.steps:
            out.append(
                Violation(
                    V.V_WORK_EXCEEDS_CAPACITY,
                    f"T1(q)={rec.work} > a(q)*steps={rec.allotment * rec.steps}",
                    job_id=jid,
                    quantum=q,
                    measured=rec.work,
                    bound=rec.allotment * rec.steps,
                )
            )
        # Greedy non-idling: while the job is unfinished every step schedules
        # min(a, ready) >= 1 ready tasks, so a quantum's work is at least its
        # step count.  (Reallocation overhead deliberately breaks this; audit
        # overhead-free runs, which is what the paper models.)
        if rec.work < rec.steps:
            out.append(
                Violation(
                    V.V_IDLE_WITH_READY_TASKS,
                    f"greedy non-idling broken: T1(q)={rec.work} < steps={rec.steps} "
                    "(an unfinished job always has a ready task)",
                    job_id=jid,
                    quantum=q,
                    measured=rec.work,
                    bound=rec.steps,
                )
            )
        if rec.span > rec.work + atol:
            out.append(
                Violation(
                    V.V_SPAN_EXCEEDS_WORK,
                    f"Tinf(q)={rec.span} > T1(q)={rec.work}",
                    job_id=jid,
                    quantum=q,
                    measured=rec.span,
                    bound=float(rec.work),
                )
            )

    if exp.breadth_first:
        checks.append(V.V_SPAN_EXCEEDS_STEPS)
        for rec in records:
            if rec.span > rec.steps + atol:
                out.append(
                    Violation(
                        V.V_SPAN_EXCEEDS_STEPS,
                        f"beta(q) > 1 under breadth-first execution: "
                        f"Tinf(q)={rec.span} > steps={rec.steps}",
                        job_id=jid,
                        quantum=rec.index,
                        measured=rec.span,
                        bound=float(rec.steps),
                    )
                )

    # d(1) is assigned verbatim by FeedbackPolicy.first_request, never
    # computed, so exact comparison is the correct check here.
    if records[0].request != 1.0:  # noqa: ABG102
        out.append(
            Violation(
                V.V_FIRST_REQUEST,
                f"d(1)={records[0].request!r} (the paper initializes every "
                "policy at one processor)",
                job_id=jid,
                quantum=1,
                measured=records[0].request,
                bound=1.0,
            )
        )

    # --- whole-trace conservation -----------------------------------------
    if exp.completed and exp.total_work is not None:
        checks.append(V.V_WORK_CONSERVATION)
        measured_work = trace.total_work
        if measured_work != exp.total_work:
            out.append(
                Violation(
                    V.V_WORK_CONSERVATION,
                    f"sum of T1(q) = {measured_work} != job work T1 = "
                    f"{exp.total_work}",
                    job_id=jid,
                    measured=measured_work,
                    bound=float(exp.total_work),
                )
            )
    if exp.completed and exp.total_span is not None:
        checks.append(V.V_SPAN_CONSERVATION)
        measured_span = trace.total_span
        if exp.breadth_first:
            # B-Greedy measures the span exactly: every dag level contributes
            # fractions summing to one (Section 2's central claim).
            if not _rel_close(measured_span, exp.total_span, rtol, atol):
                out.append(
                    Violation(
                        V.V_SPAN_CONSERVATION,
                        f"sum of Tinf(q) = {measured_span} != Tinf = "
                        f"{exp.total_span} (B-Greedy measures span exactly)",
                        job_id=jid,
                        measured=measured_span,
                        bound=exp.total_span,
                    )
                )
        elif measured_span < exp.total_span - atol:
            out.append(
                Violation(
                    V.V_SPAN_CONSERVATION,
                    f"sum of Tinf(q) = {measured_span} < Tinf = {exp.total_span}"
                    " (any greedy schedule advances at least the critical path)",
                    job_id=jid,
                    measured=measured_span,
                    bound=exp.total_span,
                )
            )

    # --- A-Control recurrence (Equation 3) --------------------------------
    if exp.convergence_rate is not None:
        checks.append(V.V_ACONTROL_RECURRENCE)
        r = exp.convergence_rate
        for prev, cur in zip(records, records[1:]):
            a_prev = prev.avg_parallelism
            # An empty quantum carries no parallelism signal; the policy holds.
            expected = prev.request if a_prev <= 0.0 else r * prev.request + (1.0 - r) * a_prev
            if not _rel_close(cur.request, expected, rtol, atol):
                out.append(
                    Violation(
                        V.V_ACONTROL_RECURRENCE,
                        f"d({cur.index})={cur.request!r} != r*d(q-1)+(1-r)*A(q-1)"
                        f"={expected!r} with r={r}",
                        job_id=jid,
                        quantum=cur.index,
                        measured=cur.request,
                        bound=expected,
                    )
                )

    # --- Theorem 3 / 4 bound satisfaction ---------------------------------
    if (
        exp.check_bounds
        and exp.completed
        and exp.convergence_rate is not None
        and exp.total_work is not None
        and exp.total_span is not None
    ):
        r = exp.convergence_rate
        c = (
            exp.transition_factor
            if exp.transition_factor is not None
            else trace.measured_transition_factor()
        )
        checks.append(V.V_THEOREM3_TIME_BOUND)
        t3 = theorem3_time_bound(
            trace,
            exp.total_work,
            exp.total_span,
            r,
            transition_factor=c,
        )
        if not t3.holds:
            out.append(
                Violation(
                    V.V_THEOREM3_TIME_BOUND,
                    f"running time {t3.running_time} exceeds Theorem 3 bound "
                    f"{t3.bound:.6g} (CL={c:.6g}, r={r})",
                    job_id=jid,
                    measured=float(t3.running_time),
                    bound=t3.bound,
                )
            )
        if r * c < 1.0 and exp.processors is not None:
            checks.append(V.V_THEOREM4_WASTE_BOUND)
            w_bound = theorem4_waste_bound(
                exp.total_work,
                exp.processors,
                trace.quantum_length,
                c,
                r,
            )
            waste = trace.total_waste
            if waste > w_bound * (1.0 + rtol):
                out.append(
                    Violation(
                        V.V_THEOREM4_WASTE_BOUND,
                        f"waste {waste} exceeds Theorem 4 bound {w_bound:.6g} "
                        f"(CL={c:.6g}, r={r})",
                        job_id=jid,
                        measured=float(waste),
                        bound=w_bound,
                    )
                )

    return AuditReport(violations=tuple(out), checks=tuple(checks))


def audit_multi_result(
    result: MultiJobResult,
    *,
    expectations: Mapping[int, TraceExpectations] | None = None,
    fair: bool = True,
    non_reserving: bool = True,
    rtol: float = 1e-9,
    atol: float = 1e-6,
) -> AuditReport:
    """Audit a multiprogrammed run: every per-job trace plus the machine-wide
    allocation invariants at every quantum boundary.

    ``fair`` / ``non_reserving`` enable the DEQ-specific checks of Theorem 5
    (equal shares among deprived jobs; no idle processor while a job is
    deprived) — disable them when auditing a run under an allocator that does
    not promise those properties (e.g. round-robin).
    """
    P = result.processors
    L = result.quantum_length
    reports: list[AuditReport] = []
    for jid, trace in sorted(result.traces.items()):
        exp = expectations.get(jid) if expectations is not None else None
        reports.append(audit_trace(trace, exp, rtol=rtol, atol=atol))

    out: list[Violation] = []
    checks: list[str] = [
        V.V_CAPACITY_EXCEEDED,
        V.V_RELEASE_ORDER,
        V.V_BOUNDARY_ALIGNMENT,
    ]
    if fair:
        checks.append(V.V_DEQ_UNFAIR)
    if non_reserving:
        checks.append(V.V_RESERVATION)

    # Reconstruct machine-wide boundaries from the per-job records.
    boundaries: dict[int, list[tuple[int, int, int]]] = {}
    for jid, trace in result.traces.items():
        release = result.released.get(jid, trace.release_time)
        if trace.records and trace.records[0].start_step < release:
            out.append(
                Violation(
                    V.V_RELEASE_ORDER,
                    f"first quantum starts at {trace.records[0].start_step} "
                    f"before release at {release}",
                    job_id=jid,
                    quantum=1,
                )
            )
        for rec in trace.records:
            if rec.start_step % L != 0:
                out.append(
                    Violation(
                        V.V_BOUNDARY_ALIGNMENT,
                        f"quantum starts at {rec.start_step}, not a multiple "
                        f"of L={L} (machine-wide quanta are synchronized)",
                        job_id=jid,
                        quantum=rec.index,
                    )
                )
            boundaries.setdefault(rec.start_step, []).append(
                (jid, rec.allotment, rec.request_int)
            )

    for start, entries in sorted(boundaries.items()):
        q = start // L + 1
        allotted = sum(a for _, a, _ in entries)
        if allotted > P:
            out.append(
                Violation(
                    V.V_CAPACITY_EXCEEDED,
                    f"boundary t={start}: total allotment {allotted} > P={P}",
                    quantum=q,
                    measured=float(allotted),
                    bound=float(P),
                )
            )
        deprived = [(j, a) for j, a, d in entries if a < d]
        satisfied = [(j, a) for j, a, d in entries if a >= d]
        if fair and deprived:
            allots = [a for _, a in deprived]
            if max(allots) - min(allots) > 1:
                out.append(
                    Violation(
                        V.V_DEQ_UNFAIR,
                        f"boundary t={start}: deprived jobs' allotments "
                        f"{sorted(allots)} differ by more than one",
                        quantum=q,
                    )
                )
            if satisfied:
                worst = min(allots)
                best_satisfied = max(a for _, a in satisfied)
                if best_satisfied > worst:
                    out.append(
                        Violation(
                            V.V_DEQ_UNFAIR,
                            f"boundary t={start}: a satisfied job holds "
                            f"{best_satisfied} processors while a deprived job "
                            f"holds only {worst}",
                            quantum=q,
                        )
                    )
        if non_reserving and deprived and allotted < P:
            out.append(
                Violation(
                    V.V_RESERVATION,
                    f"boundary t={start}: {P - allotted} processor(s) idle "
                    "while a job is deprived (allocator must be non-reserving)",
                    quantum=q,
                    measured=float(allotted),
                    bound=float(P),
                )
            )

    reports.append(AuditReport(violations=tuple(out), checks=tuple(checks)))
    return V.merge_reports(reports)


def audit_dag_schedule(
    dag: Dag,
    schedule: Sequence[tuple[int, Sequence[int]]],
    *,
    breadth_first: bool = False,
    require_completion: bool = True,
) -> AuditReport:
    """Replay a step-level schedule against its dag.

    ``schedule`` is a sequence of ``(allotment, tasks)`` pairs, one per time
    step, as recorded by ``ExplicitExecutor(..., record_schedule=True)``.
    Checks, per step: every scheduled task exists, runs exactly once, and has
    all predecessors already executed (precedence); no more than
    ``min(allotment, ready)`` tasks run (capacity) and no fewer (greedy
    non-idling); under ``breadth_first``, scheduled tasks are drawn from the
    lowest ready levels (B-Greedy's priority rule).  Finally, with
    ``require_completion``, every task must have executed.
    """
    n = dag.num_tasks
    indegree = [dag.in_degree(t) for t in range(n)]
    done = [False] * n
    ready = {t for t in range(n) if indegree[t] == 0}
    out: list[Violation] = []
    checks = [
        V.V_PRECEDENCE,
        V.V_DOUBLE_EXECUTION,
        V.V_OVERSCHEDULED_STEP,
        V.V_IDLE_WITH_READY_TASKS,
    ]
    if breadth_first:
        checks.append(V.V_NOT_LOWEST_LEVEL_FIRST)
    if require_completion:
        checks.append(V.V_INCOMPLETE_DAG)

    for step, (allotment, tasks) in enumerate(schedule, start=1):
        expected = min(allotment, len(ready))
        if len(tasks) > expected:
            out.append(
                Violation(
                    V.V_OVERSCHEDULED_STEP,
                    f"step {step}: scheduled {len(tasks)} tasks, capacity is "
                    f"min(a={allotment}, ready={len(ready)})={expected}",
                    quantum=step,
                    measured=float(len(tasks)),
                    bound=float(expected),
                )
            )
        elif len(tasks) < expected:
            out.append(
                Violation(
                    V.V_IDLE_WITH_READY_TASKS,
                    f"step {step}: scheduled {len(tasks)} tasks while "
                    f"min(a={allotment}, ready={len(ready)})={expected} were "
                    "runnable (greedy non-idling)",
                    quantum=step,
                    measured=float(len(tasks)),
                    bound=float(expected),
                )
            )
        if breadth_first and tasks:
            valid_scheduled = [t for t in tasks if t in ready]
            unscheduled_ready = ready.difference(tasks)
            if valid_scheduled and unscheduled_ready:
                deepest_scheduled = max(dag.level_of(t) for t in valid_scheduled)
                shallowest_waiting = min(
                    dag.level_of(t) for t in unscheduled_ready
                )
                if shallowest_waiting < deepest_scheduled:
                    out.append(
                        Violation(
                            V.V_NOT_LOWEST_LEVEL_FIRST,
                            f"step {step}: scheduled a level-"
                            f"{deepest_scheduled} task while a level-"
                            f"{shallowest_waiting} task was ready "
                            "(B-Greedy is lowest-level-first)",
                            quantum=step,
                        )
                    )
        for t in tasks:
            if t < 0 or t >= n:
                out.append(
                    Violation(
                        V.V_PRECEDENCE,
                        f"step {step}: task {t} does not exist",
                        quantum=step,
                    )
                )
                continue
            if done[t]:
                out.append(
                    Violation(
                        V.V_DOUBLE_EXECUTION,
                        f"step {step}: task {t} executed twice",
                        quantum=step,
                    )
                )
                continue
            if t not in ready:
                missing = [
                    p for p in range(n) if not done[p] and t in dag.successors(p)
                ]
                out.append(
                    Violation(
                        V.V_PRECEDENCE,
                        f"step {step}: task {t} ran before predecessor(s) "
                        f"{missing[:4]} completed",
                        quantum=step,
                    )
                )
                continue
        # Commit the step's completions after validating all of them.
        for t in tasks:
            if 0 <= t < n and not done[t] and t in ready:
                done[t] = True
                ready.discard(t)
                for child in dag.successors(t):
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        ready.add(child)

    if require_completion:
        remaining = sum(1 for d in done if not d)
        if remaining:
            out.append(
                Violation(
                    V.V_INCOMPLETE_DAG,
                    f"{remaining} of {n} tasks never executed",
                    measured=float(n - remaining),
                    bound=float(n),
                )
            )
    return AuditReport(violations=tuple(out), checks=tuple(checks))
