"""Kernel-parity and numerical-determinism passes (the ABG3xx family).

PR 5 split the hot path into dual implementations — scalar reference
methods (``Allocator.allocate``, ``FeedbackPolicy.next_request``) and
batched numpy counterparts (``allocate_batch``, ``next_request_batch``)
— whose bit-identity the runtime cross-validation tests prove only for
the inputs they happen to exercise.  These passes enforce the contract
*statically*:

**API-parity pass** (`parity_findings`, over the class hierarchy)

- ``ABG301`` — a policy class overrides the scalar method but defines no
  batched counterpart and carries no explicit ``batch_fallback`` marker:
  the batched engine silently falls back to the base's ``None`` path for
  this one policy, so scalar and batched runs exercise different code
  with nothing recording that this is intentional.
- ``ABG302`` — a class overrides the scalar method while *inheriting* an
  ancestor's batched counterpart: the batched path computes the
  ancestor's semantics, the scalar path the subclass's — the worst kind
  of drift because both paths exist and disagree.
- ``ABG303`` — parameter-list or default-value drift between a method
  override and the base declaration: keyword calls and fallback
  invocation break asymmetrically between the scalar and batched sides.
- ``ABG304`` (*advisory*) — a class defines both ``x`` and ``x_batch``
  but the pair is not registered in :data:`PARITY_CONTRACTS`: the naming
  convention says the two are scalar/batched twins, yet none of the
  parity rules above watch them.  Register a contract (when subclasses
  are expected to keep the pair in sync) or suppress with a reason
  (when the suffix is a coincidence or the pair is sealed).

**Numerical-determinism pass** (`numeric_findings`, fresh AST per kernel
file — never served from the summary cache, so a stale cache can never
mask a finding)

- ``ABG311`` — ``argsort`` without ``kind="stable"``.  An *indirect*
  sort's permutation is observable wherever keys tie (equal deadlines,
  equal allotments), and the default introsort breaks ties by memory
  layout.  Plain value sorts are deterministic under any algorithm and
  are deliberately not flagged.
- ``ABG312`` — a float reduction (``sum``/``fsum``/``np.sum``/``np.dot``
  /``mean``/``std``) fed from a dict view: float addition is not
  associative, so hash-iteration order changes the result in the last
  ulps — exactly the drift the convergence tests chase.  Wrapping the
  view in ``sorted(...)`` canonicalizes the order and silences the rule.
- ``ABG313`` — ``np.arange``/``array``/``asarray``/``fromiter``/``full``
  without an explicit ``dtype=``: integer results default to the
  platform C long, so index arithmetic widens differently across
  platforms.  (``zeros``/``empty``/``ones`` default to float64
  everywhere and are not flagged.)
- ``ABG314`` — shared-arena aliasing: a ufunc ``out=`` that aliases one
  of its inputs, or a module-level array sentinel stored onto an
  instance without ``.copy()`` (every instance would then share — and
  potentially mutate — one buffer).
- ``ABG315`` — a columnar array built directly from a dict view
  (``np.array(list(d.values()))``): record order follows insertion
  order, which nothing canonicalized.

Both passes report through the shared :class:`LintFinding` model and
honor ``# abg: allow[CODE] reason=...`` suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Mapping, Sequence

from ..findings import LintFinding, is_suppressed, rule_severity
from .callgraph import ModuleIndex
from .model import function_id

__all__ = [
    "ParityContract",
    "PARITY_CONTRACTS",
    "DEFAULT_KERNEL_PATTERNS",
    "is_kernel_path",
    "parity_findings",
    "inferred_pair_findings",
    "numeric_findings",
]


@dataclass(frozen=True, slots=True)
class ParityContract:
    """One scalar/batched method pair rooted at a base class.

    ``marker`` names the class attribute that *explicitly* opts a
    subclass out of the batched side (``batch_fallback = True``) — the
    annotation ABG301 demands instead of a silent missing override.
    """

    module: str
    cls: str
    scalar: str
    batch: str
    marker: str = "batch_fallback"

    @property
    def base_id(self) -> str:
        return function_id(self.module, self.cls)


#: The repo's two scalar↔batched kernel contracts.
PARITY_CONTRACTS: tuple[ParityContract, ...] = (
    ParityContract(
        module="repro.allocators.base",
        cls="Allocator",
        scalar="allocate",
        batch="allocate_batch",
    ),
    ParityContract(
        module="repro.core.feedback",
        cls="FeedbackPolicy",
        scalar="next_request",
        batch="next_request_batch",
    ),
)

#: Path globs of the array-kernel modules the numeric pass covers.
DEFAULT_KERNEL_PATTERNS: tuple[str, ...] = (
    "*/sim/multi_batched.py",
    "*/sim/superstep.py",
    "*/engine/batched.py",
    "*/allocators/*.py",
    "*/dag/structure.py",
    "*/core/types.py",
    "*/core/columnar.py",
)


def is_kernel_path(path: str, patterns: Sequence[str] = DEFAULT_KERNEL_PATTERNS) -> bool:
    """Whether ``path`` names an array-kernel module."""
    normalized = path.replace("\\", "/")
    return any(fnmatchcase(normalized, pat) for pat in patterns)


# -- API-parity pass ---------------------------------------------------------


def _ancestry(index: ModuleIndex, cls_id: str, stop: str) -> tuple[str, ...]:
    """Ancestor ids of ``cls_id`` in method-resolution order (BFS over the
    resolved base lists), up to but *excluding* ``stop`` (the contract's
    base, whose batched method is the fallback, not an implementation)."""
    out: list[str] = []
    queue = list(index.base_classes_of(cls_id))
    seen = {cls_id}
    while queue:
        current = queue.pop(0)
        if current in seen or current == stop:
            seen.add(current)
            continue
        seen.add(current)
        out.append(current)
        queue.extend(index.base_classes_of(current))
    return tuple(out)


def _has_marker(index: ModuleIndex, cls_id: str, contract: ParityContract) -> bool:
    """Marker on the class or any ancestor below the contract base."""
    for candidate in (cls_id, *_ancestry(index, cls_id, contract.base_id)):
        if contract.marker in index.class_attr_names(candidate):
            return True
    return False


def parity_findings(
    index: ModuleIndex,
    sources: Mapping[str, Sequence[str]],
    contracts: Sequence[ParityContract] = PARITY_CONTRACTS,
) -> list[LintFinding]:
    """ABG301/302/303 over every subclass of each contract's base."""
    out: list[LintFinding] = []

    def emit(cls_id: str, line: int, code: str, message: str) -> None:
        module = cls_id.partition("::")[0]
        info = index.modules[module]
        if is_suppressed(sources.get(info.path, []), line, code):
            return
        out.append(
            LintFinding(
                path=info.path,
                line=line,
                col=0,
                code=code,
                message=message,
                severity=rule_severity(code),
            )
        )

    for contract in contracts:
        base_scalar = index.method_summary(contract.base_id, contract.scalar)
        if base_scalar is None:
            continue  # contract base not in the analyzed tree
        base_batch = index.method_summary(contract.base_id, contract.batch)
        base_decl = {contract.scalar: base_scalar, contract.batch: base_batch}
        for cls_id in index.subclasses_of(contract.base_id):
            cls_name = cls_id.partition("::")[2]
            scalar = index.method_summary(cls_id, contract.scalar)
            batch = index.method_summary(cls_id, contract.batch)

            # signature/default drift of whichever side the class defines
            for method_name, override in (
                (contract.scalar, scalar),
                (contract.batch, batch),
            ):
                declared = base_decl[method_name]
                if override is None or declared is None:
                    continue
                if override.params != declared.params:
                    emit(
                        cls_id,
                        override.line,
                        "ABG303",
                        f"{cls_name}.{method_name} parameters "
                        f"{list(override.params)} drift from the "
                        f"{contract.cls} declaration {list(declared.params)}; "
                        "keyword calls and the scalar<->batched fallback "
                        "break asymmetrically",
                    )
                elif override.defaults != declared.defaults:
                    emit(
                        cls_id,
                        override.line,
                        "ABG303",
                        f"{cls_name}.{method_name} default values drift from "
                        f"the {contract.cls} declaration; the two kernel "
                        "sides disagree when the argument is omitted",
                    )

            if scalar is None or batch is not None:
                continue  # no scalar override, or the pair is complete
            if _has_marker(index, cls_id, contract):
                continue  # explicit opt-out: scalar-only by design
            inherited_from = next(
                (
                    ancestor
                    for ancestor in _ancestry(index, cls_id, contract.base_id)
                    if index.method_summary(ancestor, contract.batch) is not None
                ),
                None,
            )
            if inherited_from is not None:
                emit(
                    cls_id,
                    scalar.line,
                    "ABG302",
                    f"{cls_name}.{contract.scalar} overrides the scalar "
                    f"kernel but inherits {contract.batch} from "
                    f"{inherited_from.partition('::')[2]}: the batched path "
                    "computes the ancestor's semantics — override "
                    f"{contract.batch} too, or mark the class "
                    f"{contract.marker} = True",
                )
            else:
                emit(
                    cls_id,
                    scalar.line,
                    "ABG301",
                    f"{cls_name} defines {contract.scalar} without a "
                    f"{contract.batch} counterpart; the batched engine "
                    "silently falls back to the scalar loop for this policy "
                    f"— add {contract.batch} or declare "
                    f"{contract.marker} = True",
                )
    return out


def inferred_pair_findings(
    index: ModuleIndex,
    sources: Mapping[str, Sequence[str]],
    contracts: Sequence[ParityContract] = PARITY_CONTRACTS,
) -> list[LintFinding]:
    """ABG304: classes defining an unregistered ``x`` / ``x_batch`` twin.

    The contract registry is the ground truth the parity rules enforce;
    this advisory pass closes the loop from the other side by *inferring*
    candidate pairs from the repo's ``*_batch`` naming convention and
    flagging any that no contract covers — the pattern that let a
    scalar/batched pair drift would otherwise be invisible until a
    subclass broke it.
    """
    covered = {(c.scalar, c.batch) for c in contracts}
    out: list[LintFinding] = []
    for info in index.modules.values():
        lines = sources.get(info.path, [])
        for qualname, summary in sorted(info.functions.items()):
            cls, dot, method = qualname.rpartition(".")
            if not dot or not method.endswith("_batch"):
                continue
            scalar_name = method[: -len("_batch")]
            if (scalar_name, method) in covered:
                continue
            if f"{cls}.{scalar_name}" not in info.functions:
                continue
            if is_suppressed(lines, summary.line, "ABG304"):
                continue
            out.append(
                LintFinding(
                    path=info.path,
                    line=summary.line,
                    col=0,
                    code="ABG304",
                    message=f"{cls}.{method} pairs with {cls}.{scalar_name} "
                    "by naming but no ParityContract registers the pair; "
                    "the ABG301-303 parity rules are not watching it — "
                    "register a contract or suppress with a reason",
                    severity=rule_severity("ABG304"),
                )
            )
    out.sort(key=lambda f: (f.path, f.line))
    return out


# -- numerical-determinism pass ----------------------------------------------

#: numpy constructors whose integer results default to the platform C long.
_DTYPE_REQUIRED = frozenset({"arange", "array", "asarray", "fromiter", "full"})

#: reduction callables whose result depends on float summation order.
_FLOAT_REDUCTIONS = frozenset({"sum", "fsum", "dot", "mean", "std", "nansum"})

#: constructors that materialize a columnar array from an iterable.
_ARRAY_BUILDERS = frozenset({"array", "asarray", "fromiter"})

_DICT_VIEWS = frozenset({"values", "keys", "items"})

_STABLE_KINDS = frozenset({"stable", "mergesort"})


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Names bound to the numpy module by this file's imports."""
    aliases: set[str] = set()
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def _call_tail(node: ast.Call) -> str | None:
    """Last segment of the callee (``np.argsort`` -> ``argsort``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_numpy_call(node: ast.Call, np_names: set[str]) -> bool:
    """Whether the callee is rooted at a numpy alias (``np.x``, ``np.x.y``)."""
    func = node.func
    while isinstance(func, ast.Attribute):
        func = func.value
    return isinstance(func, ast.Name) and func.id in np_names


def _keyword(node: ast.Call, name: str) -> ast.keyword | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw
    return None


def _contains_dict_view(node: ast.expr) -> bool:
    """Whether a dict ``.values()``/``.items()``/``.keys()`` call appears in
    the expression without a canonicalizing ``sorted(...)`` above it."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    ):
        return False
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _DICT_VIEWS and not node.args and not node.keywords:
            return True
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr) and _contains_dict_view(child):
            return True
        if isinstance(child, ast.comprehension) and _contains_dict_view(child.iter):
            return True
    return False


class _KernelScanner(ast.NodeVisitor):
    """One pass over a kernel module collecting ABG311–ABG315 sites."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.np_names = _numpy_aliases(tree)
        self.sites: list[tuple[int, str, str]] = []
        #: module-level names bound to numpy-constructed arrays (shared
        #: sentinels such as ``_EMPTY_I64``) — storing one onto an instance
        #: without ``.copy()`` aliases every instance to one buffer
        self.array_globals: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                if _is_numpy_call(stmt.value, self.np_names):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.array_globals.add(target.id)

    # -- ABG311 / ABG312 / ABG313 / ABG315 at call sites ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        tail = _call_tail(node)
        numpy_call = _is_numpy_call(node, self.np_names)
        method_call = isinstance(node.func, ast.Attribute) and not numpy_call

        if tail == "argsort" and (numpy_call or method_call):
            kind = _keyword(node, "kind")
            stable = (
                kind is not None
                and isinstance(kind.value, ast.Constant)
                and kind.value.value in _STABLE_KINDS
            )
            if not stable:
                self.sites.append(
                    (
                        node.lineno,
                        "ABG311",
                        'argsort without kind="stable": tie order follows '
                        "memory layout under the default introsort, so equal "
                        "keys permute nondeterministically — pass "
                        'kind="stable"',
                    )
                )

        if tail in _FLOAT_REDUCTIONS and (
            numpy_call or isinstance(node.func, ast.Name)
        ):
            if any(_contains_dict_view(arg) for arg in node.args):
                self.sites.append(
                    (
                        node.lineno,
                        "ABG312",
                        f"float reduction {tail}() over a dict view: float "
                        "addition is order-sensitive and dict order is "
                        "insertion order — reduce over sorted(...) or a "
                        "canonical array instead",
                    )
                )

        if numpy_call and tail in _DTYPE_REQUIRED:
            if _keyword(node, "dtype") is None and not (
                tail == "asarray" and self._array_typed_arg(node)
            ):
                self.sites.append(
                    (
                        node.lineno,
                        "ABG313",
                        f"np.{tail} without an explicit dtype=: integer "
                        "results default to the platform C long, so index "
                        "arithmetic widens differently across platforms — "
                        "pin the dtype",
                    )
                )

        if numpy_call and tail in _ARRAY_BUILDERS:
            if any(_contains_dict_view(arg) for arg in node.args):
                self.sites.append(
                    (
                        node.lineno,
                        "ABG315",
                        f"np.{tail} built directly from a dict view: column "
                        "order follows dict insertion order, which nothing "
                        "canonicalized — build from an explicitly ordered "
                        "sequence",
                    )
                )

        out_kw = _keyword(node, "out")
        if numpy_call and out_kw is not None:
            out_dump = ast.dump(out_kw.value)
            if any(ast.dump(arg) == out_dump for arg in node.args):
                self.sites.append(
                    (
                        node.lineno,
                        "ABG314",
                        "ufunc out= aliases one of its inputs: partial "
                        "results overwrite operands still being read when "
                        "the buffer is shared — write into a distinct array",
                    )
                )

        self.generic_visit(node)

    def _array_typed_arg(self, node: ast.Call) -> bool:
        """``np.asarray(x)`` where ``x`` is itself a numpy call already
        carrying a dtype — no widening ambiguity to pin."""
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Call):
            return False
        inner = node.args[0]
        return (
            _is_numpy_call(inner, self.np_names)
            and _keyword(inner, "dtype") is not None
        )

    # -- ABG314: shared module sentinels stored without .copy() ---------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Name) and node.value.id in self.array_globals:
            if any(isinstance(t, ast.Attribute) for t in node.targets):
                self.sites.append(
                    (
                        node.lineno,
                        "ABG314",
                        f"module-level array {node.value.id!r} stored onto an "
                        "instance without .copy(): every instance aliases one "
                        "shared buffer, so any in-place write corrupts them "
                        "all — store a .copy()",
                    )
                )
        self.generic_visit(node)


def numeric_findings(
    path: str, source_lines: Sequence[str], tree: ast.Module
) -> list[LintFinding]:
    """ABG311–ABG315 findings for one kernel module.

    Callers pass a *freshly parsed* ``tree`` — the numeric pass never
    reads the summary cache, so stale cached summaries cannot mask a
    kernel finding.
    """
    scanner = _KernelScanner(path, tree)
    scanner.visit(tree)
    out: list[LintFinding] = []
    for line, code, message in scanner.sites:
        if is_suppressed(source_lines, line, code):
            continue
        out.append(
            LintFinding(
                path=path,
                line=line,
                col=0,
                code=code,
                message=message,
                severity=rule_severity(code),
            )
        )
    out.sort(key=lambda f: (f.line, f.code))
    return out
