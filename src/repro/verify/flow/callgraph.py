"""Module index, class hierarchy, and call-graph construction.

The :class:`ModuleIndex` resolves dotted names *globally*: a callee
recorded as ``exp.run_fig5`` in one module is expanded through that
module's import table to ``repro.experiments.run_fig5``, then chased
through the ``repro.experiments`` package ``__init__``'s re-export to the
defining module — so the call graph follows the package's public API
exactly as the interpreter would.

Method calls use class-hierarchy analysis: a call through a base
annotation (``policy: FeedbackPolicy`` → ``policy.next_request()``)
produces edges to the base method *and every override in an analyzed
subclass*, which is what makes reachability a sound over-approximation of
"can run inside a worker" for protocol-driven code like the engines and
feedback policies.

Resolution of calls that leave the analyzed tree (numpy, stdlib) or are
genuinely dynamic (``driver(**kw)`` through a registry) yields no edge;
registry dispatch is covered by the analysis' declared root patterns.
"""

from __future__ import annotations

from .model import FunctionSummary, ModuleInfo, function_id
from .summarize import expand_name

__all__ = ["ModuleIndex", "build_call_graph"]


class ModuleIndex:
    """All summarized modules keyed by dotted module name, plus global
    symbol and class-hierarchy resolution across import chains."""

    def __init__(self, modules: dict[str, ModuleInfo]):
        self.modules = modules
        self._subclasses = self._build_hierarchy()

    # -- class hierarchy -----------------------------------------------------

    def _build_hierarchy(self) -> dict[str, set[str]]:
        """``class id -> all (transitive) subclass ids`` over the tree."""
        direct: dict[str, set[str]] = {}
        for module, info in self.modules.items():
            for cls, bases in info.classes.items():
                cls_id = function_id(module, cls)
                for base in bases:
                    base_id = self._class_ref(info, base)
                    if base_id is not None:
                        direct.setdefault(base_id, set()).add(cls_id)
        closed: dict[str, set[str]] = {}

        def descendants(cls_id: str, seen: set[str]) -> set[str]:
            if cls_id in closed:
                return closed[cls_id]
            out: set[str] = set()
            for sub in direct.get(cls_id, ()):
                if sub in seen:
                    continue
                out.add(sub)
                out |= descendants(sub, seen | {sub})
            closed[cls_id] = out
            return out

        return {cls_id: descendants(cls_id, {cls_id}) for cls_id in direct}

    def resolve_class(self, dotted: str, _seen: set[str] | None = None) -> str | None:
        """Resolve an absolute dotted name to a ``module::Class`` id."""
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            info = self.modules.get(module)
            if info is None:
                continue
            remainder = ".".join(parts[cut:])
            if remainder in info.classes:
                return function_id(module, remainder)
            head = remainder.split(".")[0]
            chained = info.aliases.get(head) or info.imports.get(head)
            if chained is not None:
                rest = remainder.partition(".")[2]
                return self.resolve_class(
                    f"{chained}.{rest}" if rest else chained, seen
                )
            return None
        return None

    def subclasses_of(self, cls_id: str) -> tuple[str, ...]:
        """All transitive subclass ids of ``cls_id`` found in the tree."""
        return tuple(sorted(self._subclasses.get(cls_id, ())))

    def base_classes_of(self, cls_id: str) -> tuple[str, ...]:
        """Direct base-class ids of ``cls_id`` (resolved; out-of-tree bases
        are dropped)."""
        module, _, cls = cls_id.partition("::")
        info = self.modules.get(module)
        if info is None:
            return ()
        out: list[str] = []
        for base in info.classes.get(cls, ()):
            ref = self._class_ref(info, base)
            if ref is not None and ref not in out:
                out.append(ref)
        return tuple(out)

    def method_summary(self, cls_id: str, method: str) -> FunctionSummary | None:
        """The summary of ``method`` defined *directly on* ``cls_id``."""
        module, _, cls = cls_id.partition("::")
        info = self.modules.get(module)
        if info is None:
            return None
        return info.functions.get(f"{cls}.{method}")

    def class_attr_names(self, cls_id: str) -> tuple[str, ...]:
        """Names assigned at class level directly on ``cls_id``."""
        module, _, cls = cls_id.partition("::")
        info = self.modules.get(module)
        if info is None:
            return ()
        return info.class_attrs.get(cls, ())

    def _class_ref(self, info: ModuleInfo, ref: str) -> str | None:
        """A class reference as written in ``info``'s module: a bare name
        defined there, or a dotted/imported name resolved globally."""
        if ref in info.classes:
            return function_id(info.module, ref)
        return self.resolve_class(expand_name(ref, info))

    def _method_targets(self, cls_id: str, method: str) -> tuple[str, ...]:
        """``cls.method`` plus every analyzed subclass override."""
        out: list[str] = []
        for candidate in (cls_id, *sorted(self._subclasses.get(cls_id, ()))):
            module, _, cls = candidate.partition("::")
            info = self.modules.get(module)
            if info is None:
                continue
            target = f"{cls}.{method}"
            if target in info.functions:
                out.append(function_id(module, target))
        return tuple(out)

    def _constructor_targets(self, cls_id: str) -> tuple[str, ...]:
        module, _, cls = cls_id.partition("::")
        info = self.modules.get(module)
        if info is None:
            return ()
        return tuple(
            function_id(module, f"{cls}.{name}")
            for name in ("__init__", "__post_init__")
            if f"{cls}.{name}" in info.functions
        )

    # -- function resolution -------------------------------------------------

    def functions(self) -> dict[str, FunctionSummary]:
        """Every function in the tree keyed by ``module::qualname`` id."""
        out: dict[str, FunctionSummary] = {}
        for name, info in self.modules.items():
            for qualname, summary in info.functions.items():
                out[function_id(name, qualname)] = summary
        return out

    def info_for(self, func_id: str) -> ModuleInfo:
        module, _, _ = func_id.partition("::")
        return self.modules[module]

    def resolve(self, dotted: str, _seen: set[str] | None = None) -> str | None:
        """Resolve an absolute dotted name to a plain-function id,
        following re-export chains; ``None`` when it leaves the tree."""
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            info = self.modules.get(module)
            if info is None:
                continue
            remainder = ".".join(parts[cut:])
            if remainder in info.functions:
                return function_id(module, remainder)
            head = remainder.split(".")[0]
            chained = info.aliases.get(head) or info.imports.get(head)
            if chained is not None:
                rest = remainder.partition(".")[2]
                return self.resolve(f"{chained}.{rest}" if rest else chained, seen)
            return None
        return None

    def resolve_call(
        self, info: ModuleInfo, callee: str, qualname: str
    ) -> tuple[str, ...]:
        """Resolve one recorded call site from inside ``qualname`` of the
        module described by ``info`` to zero or more callee ids."""
        head, _, rest = callee.partition(".")
        if head == "self":
            if "." in qualname and rest and "." not in rest:
                cls_id = function_id(info.module, qualname.split(".")[0])
                return self._method_targets(cls_id, rest)
            return ()
        if "." not in callee and callee in info.functions:
            return (function_id(info.module, callee),)
        # class reference: instantiation or (possibly inherited) method call
        class_part, _, method = callee.rpartition(".")
        cls_id = self._class_ref(info, class_part) if class_part else None
        if cls_id is not None and method:
            return self._method_targets(cls_id, method)
        whole_cls = self._class_ref(info, callee)
        if whole_cls is not None:
            return self._constructor_targets(whole_cls)
        expanded = expand_name(callee, info)
        resolved = self.resolve(expanded)
        return (resolved,) if resolved is not None else ()


def build_call_graph(index: ModuleIndex) -> dict[str, tuple[str, ...]]:
    """``caller id -> callee ids`` over every summarized function."""
    graph: dict[str, tuple[str, ...]] = {}
    for module, info in index.modules.items():
        for qualname, summary in info.functions.items():
            callees: list[str] = []
            for site in summary.calls:
                for resolved in index.resolve_call(info, site.callee, qualname):
                    if resolved not in callees:
                        callees.append(resolved)
            graph[function_id(module, qualname)] = tuple(callees)
    return graph
