"""Per-function effect-summary extraction.

One pass over a module's AST produces a :class:`~repro.verify.flow.model.ModuleInfo`:
the import/alias tables, the module-level constant and mutable-global
names, and an effect summary per function/method.  Extraction is strictly
file-local (summaries are cacheable by content hash); cross-function
reasoning happens later in :mod:`repro.verify.flow.analysis`.

What the summarizer records, per function:

- **calls** — every call whose callee is a dotted chain of names
  (``f(...)``, ``mod.f(...)``, ``self.m(...)``, ``Cls(...)``), kept as
  written; the call graph resolves them against the module index;
- **global writes** — ``global``/``nonlocal`` rebinding, plus in-place
  mutation of module-level objects (item/attribute assignment, augmented
  assignment, mutating method calls such as ``.append``/``.update``);
- **RNG uses** — ``numpy.random.default_rng`` calls classified by a local
  seed dataflow (seedless / seed not derived from parameters, literals, or
  module constants), and ambient global-state randomness;
- **set iterations** — ``for``/comprehension iteration over expressions
  *inferred* to be sets (displays, ``set()``/``frozenset()`` calls, set
  algebra, set-annotated names and locals assigned from set expressions)
  with no ``sorted(...)`` wrapper — the interprocedural upgrade of the
  file-local ABG104, which only sees syntactic set displays;
- **pool dispatches** — first arguments of ``map_deterministic`` /
  ``run_supervised`` / ``pool.submit`` / ``pool.map`` (these become
  analysis roots) and payload risks at those sites (lambdas, nested
  functions, ``open(...)`` handles).
"""

from __future__ import annotations

import ast

from .model import (
    AttrWrite,
    BufferEscape,
    BufferRebind,
    BufferReturn,
    BufferWrite,
    CallArgBuffers,
    CallSite,
    DispatchSite,
    FunctionSummary,
    GlobalWrite,
    ModuleInfo,
    MutableDefault,
    OutCall,
    PayloadRisk,
    RngUse,
    SetIteration,
)

__all__ = ["summarize_module", "expand_name", "module_name_for_path"]

#: numpy.random attributes that never touch global state.
_SAFE_NP_RANDOM = frozenset(
    {"Generator", "SeedSequence", "default_rng", "BitGenerator", "PCG64"}
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)

_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard", "sort", "reverse",
        "appendleft", "extendleft",
    }
)

#: Builtins that keep a seed expression deterministic.
_PURE_BUILTINS = frozenset(
    {"int", "float", "abs", "min", "max", "sum", "len", "tuple", "list", "range", "divmod", "round"}
)

#: Callables that unwrap to their first argument when scanning iterables.
_ITER_WRAPPERS = frozenset({"list", "tuple", "reversed", "enumerate", "iter"})

# -- buffer-provenance vocabulary (flow v3) ----------------------------------

#: numpy functions whose result may *alias* their first argument.
_VIEW_FUNCS = frozenset(
    {
        "asarray", "ascontiguousarray", "asfortranarray", "ravel", "reshape",
        "broadcast_to", "atleast_1d", "atleast_2d", "squeeze", "transpose",
        "swapaxes", "moveaxis", "expand_dims",
    }
)

#: array methods whose result is a view of the receiver.
_VIEW_METHODS = frozenset(
    {"reshape", "view", "ravel", "transpose", "swapaxes", "squeeze"}
)

#: numpy functions whose result shares no memory with the inputs.
_COPY_FUNCS = frozenset({"array", "copy", "fromiter", "concatenate", "stack", "repeat", "tile"})

#: array methods whose result shares no memory with the receiver.
_COPY_METHODS = frozenset({"copy", "astype", "flatten", "tolist"})

#: array methods that write the receiver in place.
_ARRAY_MUTATORS = frozenset({"fill", "sort", "put", "partition", "itemset"})

#: container methods whose arguments are *stored* (reference escape).
_STORING_METHODS = frozenset({"append", "extend", "insert", "add", "appendleft"})


def _combine_kind(inner: str, op: str) -> str:
    """view-of-view stays a view; any copy breaks aliasing with the root."""
    return "copy" if (inner == "copy" or op == "copy") else "view"


def _is_pure_slice(node: ast.expr) -> bool:
    """Whether a subscript index yields a numpy *view* (slices only —
    scalar and fancy indexing materialize or reduce instead)."""
    if isinstance(node, ast.Slice):
        return True
    if isinstance(node, ast.Tuple):
        return bool(node.elts) and all(_is_pure_slice(e) for e in node.elts)
    return False


def module_name_for_path(path: str) -> str:
    """Infer a module's dotted name by walking up through ``__init__.py``s."""
    from pathlib import Path

    p = Path(path).resolve()
    parts = [p.stem] if p.stem != "__init__" else []
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else p.stem


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string when ``node`` is a pure Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def expand_name(dotted: str, info: ModuleInfo) -> str:
    """Expand the head of a dotted name through the module's import tables.

    ``np.random.default_rng`` -> ``numpy.random.default_rng`` given
    ``import numpy as np``; ``map_deterministic`` ->
    ``repro.experiments.parallel.map_deterministic`` given the from-import.
    """
    head, _, rest = dotted.partition(".")
    target = info.aliases.get(head) or info.imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _resolve_from_import(module: str, is_package: bool, node: ast.ImportFrom) -> str:
    """Absolute module a ``from ... import`` statement refers to."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = node.level - 1
    base = parts[: len(parts) - drop] if drop else parts
    if node.module:
        return ".".join([*base, node.module])
    return ".".join(base)


def _literal_value(node: ast.expr) -> bool:
    """Whether a module-level assignment value is an immutable literal."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_literal_value(e) for e in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _literal_value(node.operand)
    if isinstance(node, ast.BinOp):
        return _literal_value(node.left) and _literal_value(node.right)
    return False


def _mutable_value(node: ast.expr) -> bool:
    """Whether a module-level assignment value is a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def _annotation_classes(node: ast.expr | None) -> tuple[str, ...]:
    """Class names referenced by an annotation (splits ``A | B`` unions and
    ``Optional[...]``-style subscripts down to their dotted names)."""
    if node is None:
        return ()
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (*_annotation_classes(node.left), *_annotation_classes(node.right))
    if isinstance(node, ast.Subscript):
        base = _dotted_name(node.value)
        if base is not None and base.split(".")[-1] in ("Optional", "Union"):
            if isinstance(node.slice, ast.Tuple):
                out: list[str] = []
                for elt in node.slice.elts:
                    out.extend(_annotation_classes(elt))
                return tuple(out)
            return _annotation_classes(node.slice)
        return _annotation_classes(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.split("[")[0].strip()
        return (name,) if name.isidentifier() or "." in name else ()
    dotted = _dotted_name(node)
    if dotted is not None and dotted.split(".")[-1][:1].isupper():
        return (dotted,)
    return ()


def _default_sources(args: ast.arguments, params: tuple[str, ...]) -> tuple[str, ...]:
    """Default-value source text aligned to ``params`` (``""`` = none).

    Positional defaults right-align onto ``posonlyargs + args``; keyword-only
    defaults align onto ``kwonlyargs`` positionally.  Kept as ``ast.unparse``
    text so the kernel-parity pass can compare an override's defaults against
    the base declaration's without evaluating anything.
    """
    by_name: dict[str, str] = {}
    positional = [*args.posonlyargs, *args.args]
    for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
        by_name[arg.arg] = ast.unparse(default)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None:
            by_name[arg.arg] = ast.unparse(kw_default)
    return tuple(by_name.get(name, "") for name in params)


def _chain_root(node: ast.expr) -> tuple[str, str] | None:
    """``(root name, dotted path below it)`` of an attribute/subscript chain.

    ``cfg.limits.max`` -> ``("cfg", "limits.max")``; subscripts along the
    chain contribute a ``[]`` segment (``table[k].count`` ->
    ``("table", "[].count")``).  ``None`` when the chain does not bottom out
    in a plain name.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.append("[]")
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id, ".".join(reversed(parts))
        else:
            return None


def _is_set_annotation(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "MutableSet", "AbstractSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].strip() in ("set", "frozenset")
    return False


class _FunctionScanner(ast.NodeVisitor):
    """Extract one function's effect summary (nested defs are inlined)."""

    def __init__(
        self,
        info: ModuleInfo,
        qualname: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.info = info
        self.qualname = qualname
        self.node = node
        args = node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg:
            all_args.append(args.vararg)
        if args.kwarg:
            all_args.append(args.kwarg)
        self.params = tuple(a.arg for a in all_args)
        self.defaults = _default_sources(args, self.params)

        self.calls: list[CallSite] = []
        self.global_writes: list[GlobalWrite] = []
        self.rng_uses: list[RngUse] = []
        self.set_iterations: list[SetIteration] = []
        self.payload_risks: list[PayloadRisk] = []
        self.mutable_defaults: list[MutableDefault] = []
        self.dispatches: list[DispatchSite] = []
        self.attr_writes: list[AttrWrite] = []
        self.raises: list[int] = []

        self.declared_globals: set[str] = set()
        self.declared_nonlocals: set[str] = set()
        #: names bound locally anywhere in the body (shadowing module globals)
        self.local_bindings: set[str] = set(self.params)
        #: names whose value is deterministic w.r.t. parameters/constants
        self.det_names: set[str] = set(self.params) | set(info.constants)
        #: names inferred to hold sets
        self.set_names: set[str] = {
            a.arg
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if _is_set_annotation(a.annotation)
        }
        #: names bound to ProcessPoolExecutor instances
        self.pool_names: set[str] = set()
        #: nested function names defined inside this body
        self.nested_functions: set[str] = set()
        #: function-local imports overlaying the module tables (the repo
        #: imports heavy/optional modules inside functions routinely)
        self.local_aliases: dict[str, str] = {}
        #: local name -> candidate class refs (from annotations and
        #: constructor assignments); lets `obj.meth()` become a typed call
        self.var_types: dict[str, tuple[str, ...]] = {}
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            refs = _annotation_classes(a.annotation)
            if refs:
                self.var_types[a.arg] = refs

        # -- buffer-provenance state (flow v3) --
        #: local name -> (root, kind); params start as their own base buffer
        self.buf_prov: dict[str, tuple[str, str]] = {
            p: (f"param:{p}", "base") for p in self.params if p not in ("self", "cls")
        }
        #: ctor-assigned local -> aliasing (root, kind) pairs it captured
        self.captures: dict[str, tuple[tuple[str, str], ...]] = {}
        self.buffer_writes: list[BufferWrite] = []
        self.buffer_rebinds: list[BufferRebind] = []
        self.buffer_escapes: list[BufferEscape] = []
        self.buffer_returns: list[BufferReturn] = []
        self.out_calls: list[OutCall] = []
        self.call_buffers: list[CallArgBuffers] = []
        #: ``self.ATTR = Ctor(...)`` / ``self.ATTR = np.<fn>(...)`` sightings,
        #: merged into ModuleInfo.attr_ctors / array_attrs by summarize_module
        self.self_attr_ctors: dict[str, str] = {}
        self.self_array_attrs: set[str] = set()

        self._collect_local_bindings(node)
        self._check_defaults(node.args)

    # -- setup ---------------------------------------------------------------

    def _collect_local_bindings(self, root: ast.AST) -> None:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
                self.local_bindings.add(sub.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not root:
                    self.local_bindings.add(sub.name)
                    self.nested_functions.add(sub.name)
            elif isinstance(sub, ast.Global):
                self.declared_globals.update(sub.names)
            elif isinstance(sub, ast.Nonlocal):
                self.declared_nonlocals.update(sub.names)
            elif isinstance(sub, ast.Import):
                for alias in sub.names:
                    if alias.asname:
                        self.local_aliases[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.local_aliases[top] = top
            elif isinstance(sub, ast.ImportFrom):
                base = _resolve_from_import(
                    self.info.module,
                    self.info.path.endswith("__init__.py"),
                    sub,
                )
                for alias in sub.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.local_aliases[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        # names declared global/nonlocal are *not* local bindings
        self.local_bindings -= self.declared_globals
        self.local_bindings -= self.declared_nonlocals

    def _check_defaults(self, args: ast.arguments) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and _mutable_value(default):
                self.mutable_defaults.append(MutableDefault(line=default.lineno))

    # -- helpers -------------------------------------------------------------

    def _expand(self, dotted: str) -> str:
        """``expand_name`` with the function-local import overlay."""
        head, _, rest = dotted.partition(".")
        target = self.local_aliases.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        return expand_name(dotted, self.info)

    def _expanded(self, node: ast.expr) -> str | None:
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        return self._expand(dotted)

    def _is_module_global(self, name: str) -> bool:
        """Whether a bare name refers to module-level state (not shadowed)."""
        if name in self.declared_globals:
            return True
        if name in self.local_bindings:
            return False
        return name in self.info.mutable_globals

    def _deterministic(self, node: ast.expr) -> bool:
        """Whether an expression derives only from parameters, literals, and
        module-level constants (the seed-dataflow check)."""
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.det_names
        if isinstance(node, ast.Attribute):
            return self._deterministic(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return all(self._deterministic(e) for e in node.elts)
        if isinstance(node, ast.UnaryOp):
            return self._deterministic(node.operand)
        if isinstance(node, ast.BinOp):
            return self._deterministic(node.left) and self._deterministic(node.right)
        if isinstance(node, ast.BoolOp):
            return all(self._deterministic(v) for v in node.values)
        if isinstance(node, ast.Compare):
            return self._deterministic(node.left) and all(
                self._deterministic(c) for c in node.comparators
            )
        if isinstance(node, ast.IfExp):
            return (
                self._deterministic(node.test)
                and self._deterministic(node.body)
                and self._deterministic(node.orelse)
            )
        if isinstance(node, ast.Subscript):
            return self._deterministic(node.value) and self._deterministic(node.slice)
        if isinstance(node, ast.Starred):
            return self._deterministic(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            return (
                isinstance(func, ast.Name)
                and func.id in _PURE_BUILTINS
                and all(self._deterministic(a) for a in node.args)
                and all(self._deterministic(k.value) for k in node.keywords)
            )
        return False

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union", "intersection", "difference", "symmetric_difference"
            ):
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_iteration(self, iter_node: ast.expr) -> None:
        node = iter_node
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ITER_WRAPPERS
            and node.args
        ):
            node = node.args[0]
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and (
            node.func.id == "sorted"
        ):
            return
        if self._is_set_expr(node):
            detail = _dotted_name(node) or type(node).__name__
            self.set_iterations.append(
                SetIteration(line=iter_node.lineno, detail=detail)
            )

    # -- buffer provenance (flow v3) -----------------------------------------

    def _buffer_provenance(self, node: ast.expr) -> tuple[str, str] | None:
        """``(root, kind)`` the expression may alias, or ``None`` when no
        tracked buffer stands behind it.  Roots and kinds follow the
        conventions documented in :mod:`repro.verify.flow.model`."""
        if isinstance(node, ast.Name):
            entry = self.buf_prov.get(node.id)
            if entry is not None:
                return entry
            if node.id not in self.local_bindings and (
                self._is_module_global(node.id)
                or node.id in self.info.instance_globals
            ):
                return (f"global:{node.id}", "base")
            return None
        if isinstance(node, ast.Attribute):
            if node.attr == "T":
                inner = self._buffer_provenance(node.value)
                return (inner[0], _combine_kind(inner[1], "view")) if inner else None
            chain = _chain_root(node)
            if chain is None:
                return None
            root, path = chain
            if "[]" in path.split("."):
                return None
            if root in ("self", "cls"):
                return (f"self.{path}", "base")
            if root in self.var_types and root in self.local_bindings:
                return (f"typed:{self.var_types[root][0]}.{path}", "base")
            entry = self.buf_prov.get(root)
            if (
                entry is not None
                and entry[1] == "base"
                and not entry[0].startswith("param:")
            ):
                # attribute chain through a tracked alias (arena = self._arena)
                return (f"{entry[0]}.{path}", "base")
            return None
        if isinstance(node, ast.Subscript):
            inner = self._buffer_provenance(node.value)
            if inner is None:
                return None
            if _is_pure_slice(node.slice):
                return (inner[0], _combine_kind(inner[1], "view"))
            return None  # scalar/fancy indexing: no aliasing survives
        if isinstance(node, ast.IfExp):
            return self._buffer_provenance(node.body) or self._buffer_provenance(
                node.orelse
            )
        if isinstance(node, ast.NamedExpr):
            return self._buffer_provenance(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if (
                    func.id == "getattr"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == "self"
                ):
                    attr = node.args[1] if len(node.args) > 1 else None
                    if isinstance(attr, ast.Constant) and isinstance(attr.value, str):
                        return (f"self.{attr.value}", "base")
                    return ("self.*", "base")
                return None
            if isinstance(func, ast.Attribute):
                if func.attr in _COPY_METHODS or func.attr in _VIEW_METHODS:
                    inner = self._buffer_provenance(func.value)
                    if inner is None:
                        return None
                    op = "copy" if func.attr in _COPY_METHODS else "view"
                    return (inner[0], _combine_kind(inner[1], op))
                expanded = self._expanded(func)
                if expanded is not None and node.args:
                    parts = expanded.split(".")
                    if parts[0] == "numpy":
                        name = parts[-1]
                        inner = self._buffer_provenance(node.args[0])
                        if inner is None:
                            return None
                        if name in _VIEW_FUNCS:
                            return (inner[0], _combine_kind(inner[1], "view"))
                        if name in _COPY_FUNCS:
                            return (inner[0], "copy")
            return None
        return None

    def _aliasing_args(self, call: ast.Call) -> tuple[tuple[str, str], ...]:
        """Aliasing ``(root, kind)`` pairs among a call's arguments."""
        out: list[tuple[str, str]] = []
        for arg in [*call.args, *[k.value for k in call.keywords]]:
            prov = self._buffer_provenance(arg)
            if prov is not None and prov[1] != "copy":
                out.append(prov)
        return tuple(out)

    def _record_escapes(self, value: ast.expr, *, via: str, line: int) -> None:
        """Escape facts for storing ``value`` beyond the current frame."""
        prov = self._buffer_provenance(value)
        if prov is not None and prov[1] != "copy":
            self.buffer_escapes.append(
                BufferEscape(root=prov[0], kind=prov[1], via=via, line=line)
            )
        if isinstance(value, ast.Name):
            for root, kind in self.captures.get(value.id, ()):
                self.buffer_escapes.append(
                    BufferEscape(root=root, kind=kind, via=via, line=line)
                )
        elif isinstance(value, (ast.Tuple, ast.List)):
            for elt in value.elts:
                self._record_escapes(elt, via=via, line=line)

    # -- statement-order dataflow --------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_assignment(node.targets, node.value)
        self._check_store_targets(node.targets, node.lineno, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._track_assignment([node.target], node.value)
            if isinstance(node.target, ast.Name):
                if _is_set_annotation(node.annotation):
                    self.set_names.add(node.target.id)
                refs = _annotation_classes(node.annotation)
                if refs:
                    self.var_types[node.target.id] = refs
            self._check_store_targets([node.target], node.lineno, node.value)
        self.generic_visit(node)

    def _track_assignment(self, targets: list[ast.expr], value: ast.expr) -> None:
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            name = targets[0].id
            if self._deterministic(value):
                self.det_names.add(name)
            else:
                self.det_names.discard(name)
            if self._is_set_expr(value):
                self.set_names.add(name)
            else:
                self.set_names.discard(name)
            expanded = (
                self._expanded(value.func)
                if isinstance(value, ast.Call)
                else None
            )
            if expanded is not None and expanded.split(".")[-1] == "ProcessPoolExecutor":
                self.pool_names.add(name)
            prov = self._buffer_provenance(value)
            if prov is not None:
                self.buf_prov[name] = prov
            else:
                self.buf_prov.pop(name, None)
            # `x = Ctor(...) if cond else None` still types/captures x
            ctor_value = value
            if isinstance(value, ast.IfExp):
                for branch in (value.body, value.orelse):
                    if isinstance(branch, ast.Call):
                        ctor_value = branch
                        break
            if isinstance(ctor_value, ast.Call):
                ctor = _dotted_name(ctor_value.func)
                if ctor is not None and ctor.split(".")[-1][:1].isupper():
                    self.var_types[name] = (ctor,)
                    captured = self._aliasing_args(ctor_value)
                    if captured:
                        self.captures[name] = captured
                    else:
                        self.captures.pop(name, None)
                else:
                    self.var_types.pop(name, None)
                    self.captures.pop(name, None)
            elif not isinstance(value, ast.Name):
                self.var_types.pop(name, None)
                self.captures.pop(name, None)

    def _check_store_targets(
        self, targets: list[ast.expr], line: int, value: ast.expr | None = None
    ) -> None:
        """Item/attribute stores and rebinds that hit module-global state."""
        for target in targets:
            self._record_buffer_store(target, line, value)
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    if sub.id in self.declared_globals:
                        self.global_writes.append(
                            GlobalWrite(name=sub.id, line=line, kind="rebind")
                        )
                    elif sub.id in self.declared_nonlocals:
                        self.global_writes.append(
                            GlobalWrite(name=sub.id, line=line, kind="rebind")
                        )
                elif isinstance(sub, ast.Subscript) and isinstance(sub.ctx, ast.Store):
                    base = sub.value
                    if isinstance(base, ast.Name) and self._is_module_global(base.id):
                        self.global_writes.append(
                            GlobalWrite(name=base.id, line=line, kind="mutation")
                        )
                    else:
                        self._record_attr_write(sub, line)
                elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Store):
                    base = sub.value
                    if isinstance(base, ast.Name) and base.id != "self" and (
                        self._is_module_global(base.id)
                        or base.id in self.info.classes
                    ):
                        self.global_writes.append(
                            GlobalWrite(name=base.id, line=line, kind="mutation")
                        )
                    else:
                        self._record_attr_write(sub, line)

    def _record_buffer_store(
        self, target: ast.expr, line: int, value: ast.expr | None
    ) -> None:
        """Buffer-provenance facts of one store target (flow v3): in-place
        writes into tracked buffers, reference escapes into containers and
        attributes, and reallocation points (``self.ATTR`` rebound to a
        fresh array outside ``__init__``)."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_buffer_store(elt, line, None)
            return
        if isinstance(target, ast.Name):
            if value is None:  # for-loop / unpacking target: provenance gone
                self.buf_prov.pop(target.id, None)
                self.captures.pop(target.id, None)
            return
        if isinstance(target, ast.Subscript):
            base = self._buffer_provenance(target.value)
            if base is not None and base[1] != "copy":
                self.buffer_writes.append(
                    BufferWrite(target=base[0], line=line, kind="index")
                )
                # keyed stores hold a reference (container semantics); slice
                # stores copy element-wise (array semantics) and do not
                if value is not None and not _is_pure_slice(target.slice):
                    self._record_escapes(value, via="container", line=line)
            return
        if not isinstance(target, ast.Attribute):
            return
        chain = _chain_root(target)
        if chain is None:
            return
        root, path = chain
        if "[]" in path.split("."):
            return
        if root in ("self", "cls"):
            via = f"self.{path}"
        elif root in self.var_types and root in self.local_bindings:
            via = f"typed:{self.var_types[root][0]}.{path}"
        else:
            entry = self.buf_prov.get(root)
            if (
                entry is not None
                and entry[1] == "base"
                and not entry[0].startswith("param:")
            ):
                via = f"{entry[0]}.{path}"
            else:
                return
        if value is None:
            return
        value_prov = self._buffer_provenance(value)
        if value_prov == (via, "base"):
            return  # writing a value back into its own slot: no new aliasing
        self._record_escapes(value, via=via, line=line)
        if root not in ("self", "cls") or "." in path:
            return
        attr = path
        is_array_value = False
        if isinstance(value, ast.Call):
            ctor = _dotted_name(value.func)
            if ctor is not None and ctor.split(".")[-1][:1].isupper():
                self.self_attr_ctors.setdefault(attr, ctor)
            expanded = self._expanded(value.func)
            if expanded is not None and expanded.split(".")[0] == "numpy":
                self.self_array_attrs.add(attr)
                is_array_value = True
        if self._buffer_provenance(value) is not None:
            is_array_value = True
        if is_array_value and not self.qualname.endswith("__init__"):
            self.buffer_rebinds.append(BufferRebind(attr=attr, line=line))

    def _record_attr_write(self, node: ast.expr, line: int, suffix: str = "") -> None:
        """Attribute-level mutation tracking (flow v2): resolve the chain's
        root name and classify it as shared module state or a parameter.

        Catches what the direct base-``Name`` checks cannot: mutations
        through dataclass fields of module-level instances
        (``CONFIG.limits.max = 1``, ``CONFIG.items.append(x)``) and
        mutations of caller-visible state through parameters (the
        exception-path retry-replay hazard's ingredient).
        """
        chain = _chain_root(node)
        if chain is None:
            return
        root, attr = chain
        if root in ("self", "cls"):
            return
        if suffix:
            attr = f"{attr}.{suffix}" if attr else suffix
        if root in self.params:
            kind = "param"
        elif root not in self.local_bindings and (
            root in self.info.mutable_globals
            or root in self.info.instance_globals
            or root in self.declared_globals
        ):
            kind = "global"
        else:
            return
        self.attr_writes.append(
            AttrWrite(root=root, attr=attr, line=line, root_kind=kind)
        )

    def visit_Raise(self, node: ast.Raise) -> None:
        self.raises.append(node.lineno)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._record_returns(node.value, node.lineno)
        self.generic_visit(node)

    def _record_returns(self, value: ast.expr, line: int) -> None:
        """Borrow facts: what a caller of this function ends up holding."""
        prov = self._buffer_provenance(value)
        if prov is not None and prov[1] != "copy":
            self.buffer_returns.append(
                BufferReturn(root=prov[0], kind=prov[1], line=line)
            )
        if isinstance(value, ast.Name):
            for root, kind in self.captures.get(value.id, ()):
                self.buffer_returns.append(
                    BufferReturn(root=root, kind=kind, line=line)
                )
        elif isinstance(value, (ast.Tuple, ast.List)):
            for elt in value.elts:
                self._record_returns(elt, line)
        elif isinstance(value, ast.Call):
            # returning a freshly built object hands out its captured aliases
            ctor = _dotted_name(value.func)
            if ctor is not None and ctor.split(".")[-1][:1].isupper():
                for root, kind in self._aliasing_args(value):
                    self.buffer_returns.append(
                        BufferReturn(root=root, kind=kind, line=line)
                    )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals or target.id in self.declared_nonlocals:
                self.global_writes.append(
                    GlobalWrite(name=target.id, line=node.lineno, kind="rebind")
                )
            self.det_names.discard(target.id)
        else:
            self._check_store_targets([target], node.lineno)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        if isinstance(node.target, ast.Name) and self._deterministic(node.iter):
            self.det_names.add(node.target.id)
        self._check_store_targets([node.target], node.lineno)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._track_with_items(node.items)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._track_with_items(node.items)
        self.generic_visit(node)

    def _track_with_items(self, items: list[ast.withitem]) -> None:
        for item in items:
            if isinstance(item.optional_vars, ast.Name) and isinstance(
                item.context_expr, ast.Call
            ):
                expanded = self._expanded(item.context_expr.func)
                if expanded is not None and (
                    expanded.split(".")[-1] == "ProcessPoolExecutor"
                ):
                    self.pool_names.add(item.optional_vars.id)

    # -- calls: graph edges, RNG, dispatch -----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            self.calls.append(CallSite(callee=dotted, line=node.lineno))
            # typed method call: `obj.meth()` where obj's class is known
            # from an annotation or constructor assignment
            head, _, rest = dotted.partition(".")
            if rest and "." not in rest and head in self.var_types:
                for ref in self.var_types[head]:
                    self.calls.append(
                        CallSite(callee=f"{ref}.{rest}", line=node.lineno)
                    )
            expanded = self._expand(dotted)
            self._check_rng(node, expanded)
            self._check_dispatch(node, expanded)
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _MUTATING_METHODS
        ):
            base = node.func.value
            if isinstance(base, ast.Name) and self._is_module_global(base.id):
                self.global_writes.append(
                    GlobalWrite(name=base.id, line=node.lineno, kind="mutation")
                )
            else:
                self._record_attr_write(
                    base, node.lineno, suffix=f"{node.func.attr}()"
                )
        self._record_call_buffers(node, dotted)
        self.generic_visit(node)

    def _record_call_buffers(self, node: ast.Call, dotted: str | None) -> None:
        """Buffer-provenance facts at one call site (flow v3)."""
        line = node.lineno
        func = node.func
        if isinstance(func, ast.Name) and func.id == "setattr" and node.args:
            if isinstance(node.args[0], ast.Name) and node.args[0].id == "self":
                name = node.args[1] if len(node.args) > 1 else None
                attr = (
                    name.value
                    if isinstance(name, ast.Constant) and isinstance(name.value, str)
                    else "*"
                )
                self.buffer_rebinds.append(BufferRebind(attr=attr, line=line))
                if len(node.args) > 2:
                    self._record_escapes(
                        node.args[2], via=f"self.{attr}", line=line
                    )
            return
        if isinstance(func, ast.Attribute):
            base_prov = self._buffer_provenance(func.value)
            if base_prov is not None and base_prov[1] != "copy":
                base_root = base_prov[0]
                if func.attr in _ARRAY_MUTATORS:
                    self.buffer_writes.append(
                        BufferWrite(target=base_root, line=line, kind="method")
                    )
                elif func.attr == "resize":
                    if base_root.startswith("self.") and (
                        "." not in base_root[len("self."):]
                    ):
                        self.buffer_rebinds.append(
                            BufferRebind(attr=base_root[len("self."):], line=line)
                        )
                elif func.attr in _MUTATING_METHODS and not base_root.startswith(
                    "param:"
                ):
                    self.buffer_writes.append(
                        BufferWrite(target=base_root, line=line, kind="method")
                    )
                    if func.attr in _STORING_METHODS:
                        for arg in node.args:
                            self._record_escapes(arg, via="container", line=line)
        out_kw = next((k for k in node.keywords if k.arg == "out"), None)
        if out_kw is not None:
            out_prov = self._buffer_provenance(out_kw.value)
            if out_prov is not None and out_prov[1] != "copy":
                self.buffer_writes.append(
                    BufferWrite(target=out_prov[0], line=line, kind="out")
                )
                # an input that is *textually* the out= expression is the
                # file-local ABG314's case; record only distinct expressions
                out_dump = ast.dump(out_kw.value)
                inputs = [
                    prov[0]
                    for arg in node.args
                    if ast.dump(arg) != out_dump
                    and (prov := self._buffer_provenance(arg)) is not None
                    and prov[1] != "copy"
                ]
                if inputs:
                    self.out_calls.append(
                        OutCall(
                            out_root=out_prov[0],
                            out_kind=out_prov[1],
                            inputs=",".join(inputs),
                            line=line,
                        )
                    )
        if dotted is None:
            return
        expanded = self._expand(dotted)
        if expanded.split(".")[0] in ("numpy", "math", "builtins"):
            return
        # rewrite `obj.meth` to `Cls.meth` when obj's class is known, the
        # same typed-call trick the CallSite edges use — the provenance pass
        # resolves callees by name only
        head, _, rest = dotted.partition(".")
        if rest and "." not in rest and head in self.var_types:
            dotted = f"{self.var_types[head][0]}.{rest}"
        args_enc = tuple(
            f"{prov[0]}@{prov[1]}"
            if (prov := self._buffer_provenance(arg)) is not None
            and prov[1] != "copy"
            else ""
            for arg in node.args
        )
        kwargs_enc = tuple(
            f"{k.arg}={prov[0]}@{prov[1]}"
            for k in node.keywords
            if k.arg is not None
            and (prov := self._buffer_provenance(k.value)) is not None
            and prov[1] != "copy"
        )
        if any(args_enc) or kwargs_enc:
            self.call_buffers.append(
                CallArgBuffers(
                    callee=dotted, line=line, args=args_enc, kwargs=kwargs_enc
                )
            )

    def _check_rng(self, node: ast.Call, expanded: str) -> None:
        if expanded == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self.rng_uses.append(
                    RngUse(line=node.lineno, kind="seedless", detail="default_rng()")
                )
            else:
                seed_exprs = [*node.args, *[k.value for k in node.keywords]]
                if not all(self._deterministic(e) for e in seed_exprs):
                    self.rng_uses.append(
                        RngUse(
                            line=node.lineno,
                            kind="unseeded-seed",
                            detail="seed expression not derived from a seed "
                            "parameter or module constant",
                        )
                    )
            return
        parts = expanded.split(".")
        if (
            len(parts) >= 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] not in _SAFE_NP_RANDOM
        ):
            self.rng_uses.append(
                RngUse(line=node.lineno, kind="ambient", detail=expanded)
            )
        elif parts[0] == "random" and len(parts) > 1:
            self.rng_uses.append(
                RngUse(line=node.lineno, kind="ambient", detail=expanded)
            )

    def _payload_expr(self, node: ast.expr) -> ast.expr:
        """Unwrap ``functools.partial(fn, ...)`` to the inner callable."""
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted is not None and dotted.split(".")[-1] == "partial" and node.args:
                return node.args[0]
        return node

    def _check_dispatch(self, node: ast.Call, expanded: str) -> None:
        tail = expanded.split(".")[-1]
        is_map_det = tail in ("map_deterministic", "run_supervised")
        is_pool_method = False
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("submit", "map"):
            base = node.func.value
            is_pool_method = isinstance(base, ast.Name) and base.id in self.pool_names
        if not (is_map_det or is_pool_method):
            return
        if not node.args:
            return
        payload = self._payload_expr(node.args[0])
        if isinstance(payload, ast.Lambda):
            self.payload_risks.append(
                PayloadRisk(line=node.lineno, kind="lambda", detail="lambda payload")
            )
        else:
            dotted = _dotted_name(payload)
            if dotted is not None and dotted in self.nested_functions:
                self.payload_risks.append(
                    PayloadRisk(
                        line=node.lineno,
                        kind="nested-function",
                        detail=f"nested function {dotted!r} is not picklable",
                    )
                )
            elif dotted is not None:
                self.dispatches.append(DispatchSite(callee=dotted, line=node.lineno))
            else:
                # dynamic payload (computed callable, subscript, call result):
                # unresolvable by name — --strict-roots refuses these (ABG333)
                self.dispatches.append(DispatchSite(callee="", line=node.lineno))
        for arg in [*node.args[1:], *[k.value for k in node.keywords]]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    self.payload_risks.append(
                        PayloadRisk(
                            line=sub.lineno,
                            kind="lambda",
                            detail="lambda in pool arguments",
                        )
                    )
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "open"
                ):
                    self.payload_risks.append(
                        PayloadRisk(
                            line=sub.lineno,
                            kind="open-handle",
                            detail="open file handle in pool arguments",
                        )
                    )

    # don't descend into nested defs twice for defaults
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.node:
            self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node is not self.node:
            self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def summary(self) -> FunctionSummary:
        self.visit(self.node)
        is_property = any(
            (name := _dotted_name(dec)) is not None
            and name.split(".")[-1] in ("property", "cached_property")
            for dec in self.node.decorator_list
        )
        return FunctionSummary(
            qualname=self.qualname,
            line=self.node.lineno,
            params=self.params,
            defaults=self.defaults,
            is_property=is_property,
            calls=tuple(self.calls),
            global_writes=tuple(self.global_writes),
            rng_uses=tuple(self.rng_uses),
            set_iterations=tuple(self.set_iterations),
            payload_risks=tuple(self.payload_risks),
            mutable_defaults=tuple(self.mutable_defaults),
            dispatches=tuple(self.dispatches),
            attr_writes=tuple(self.attr_writes),
            raises=tuple(self.raises),
            buffer_writes=tuple(self.buffer_writes),
            buffer_rebinds=tuple(self.buffer_rebinds),
            buffer_escapes=tuple(self.buffer_escapes),
            buffer_returns=tuple(self.buffer_returns),
            out_calls=tuple(self.out_calls),
            call_buffers=tuple(self.call_buffers),
        )


def summarize_module(source: str, path: str, module: str | None = None) -> ModuleInfo:
    """Parse one file and extract its :class:`ModuleInfo`.

    Raises :class:`SyntaxError` when the file does not parse — callers
    (the analysis driver) convert that into an ``ABG100`` finding.
    """
    if module is None:
        module = module_name_for_path(path)
    is_package = path.endswith("__init__.py")
    tree = ast.parse(source, filename=path)
    info = ModuleInfo(module=module, path=path)

    constants: list[str] = []
    mutables: list[str] = []
    instance_globals: list[str] = []
    classes: dict[str, tuple[str, ...]] = {}
    class_attrs: dict[str, tuple[str, ...]] = {}

    def _is_instance_ctor(value: ast.expr) -> bool:
        """``NAME = Ctor(...)`` at module level: shared instance state."""
        if not isinstance(value, ast.Call):
            return False
        ctor = _dotted_name(value.func)
        return ctor is not None and ctor.split(".")[-1][:1].isupper()

    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    info.imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    info.imports[top] = top
        elif isinstance(stmt, ast.ImportFrom):
            base = _resolve_from_import(module, is_package, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                info.aliases[bound] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    if _literal_value(value):
                        constants.append(target.id)
                    elif _mutable_value(value):
                        mutables.append(target.id)
                    elif _is_instance_ctor(value):
                        instance_globals.append(target.id)
        elif isinstance(stmt, ast.ClassDef):
            bases = tuple(
                name
                for base in stmt.bases
                if (name := _dotted_name(base)) is not None
            )
            classes[stmt.name] = bases
            attrs: list[str] = []
            for sub in stmt.body:
                if isinstance(sub, ast.Assign):
                    attrs.extend(
                        t.id for t in sub.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    attrs.append(sub.target.id)
            class_attrs[stmt.name] = tuple(attrs)

    info.constants = tuple(constants)
    info.mutable_globals = tuple(mutables)
    info.instance_globals = tuple(instance_globals)
    info.classes = classes
    info.class_attrs = class_attrs

    def _scan(
        node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> _FunctionScanner:
        scanner = _FunctionScanner(info, qualname, node)
        info.functions[qualname] = scanner.summary()
        return scanner

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _scan(stmt, stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            ctors: dict[str, str] = {}
            arrays: list[str] = []
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{stmt.name}.{sub.name}"
                    # a property setter/deleter shares the getter's dotted
                    # name; key it separately so the getter's summary (and
                    # its borrow facts) survives the collision
                    if any(
                        isinstance(dec, ast.Attribute)
                        and dec.attr in ("setter", "deleter")
                        for dec in sub.decorator_list
                    ):
                        qualname = f"{qualname}.setter"
                    scanner = _scan(sub, qualname)
                    for attr, ctor in scanner.self_attr_ctors.items():
                        ctors.setdefault(attr, ctor)
                    for attr in sorted(scanner.self_array_attrs):
                        if attr not in arrays:
                            arrays.append(attr)
            if ctors:
                info.attr_ctors[stmt.name] = ctors
            if arrays:
                info.array_attrs[stmt.name] = tuple(arrays)

    return info
