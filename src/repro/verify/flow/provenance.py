"""Interprocedural buffer-provenance rules (flow v3): ABG341–ABG344.

The summarizer (:mod:`repro.verify.flow.summarize`) records file-local
points-to facts per function — in-place writes (:class:`BufferWrite`),
reallocation points (:class:`BufferRebind`), reference escapes
(:class:`BufferEscape`), borrow-outs (:class:`BufferReturn`), ``out=``
aliasing (:class:`OutCall`), and buffer-rooted call arguments
(:class:`CallArgBuffers`).  This pass joins those facts across the module
index:

1. **Class buffer facts** — for every class, which array attributes are
   *mutation-managed* (some method writes them in place) and which are
   *reallocation-managed* (some method rebinds them to a fresh array, or a
   dynamic ``setattr``/``.resize`` makes every array attribute suspect —
   the doubling-arena growth pattern).  Write targets recorded against
   nested chains (``self._arena.rem``) and property aliases (``self._rem``
   → the getter's ``self._arena.rem`` view) are resolved onto the class
   that owns the buffer.

2. **Root resolution** — a provenance root from one function's summary
   (``"self._arena.request"``, ``"typed:MultiBatchKernel.next_q"``) is
   resolved to the owning ``(class, attribute)`` by chasing constructor
   assignments (``attr_ctors``) and property borrow facts, combining
   view/copy kinds along the way.

3. **Rules** (tree-wide, not restricted to the worker-reachable set):

   - ``ABG341`` — a caller passes an alias of a *mutation-managed* buffer
     into a callee parameter that escapes (is stored beyond the call
     frame) without an intervening copy: the stored alias observes every
     later in-place write.
   - ``ABG342`` — ``out=`` target aliases an input: across a call
     boundary (caller passes the same resolved buffer for a parameter
     used as ``out=`` and a parameter used as input), or locally with
     distinct expressions over the same root (the identical-expression
     case stays with the file-local ABG314).
   - ``ABG343`` — write-after-borrow inside a class: a method stores an
     alias of a buffer its own class mutates in place.
   - ``ABG344`` — a stored alias of a *reallocation-managed* buffer: the
     store outlives a potential doubling/``resize``, after which the view
     observes the dead buffer.  Takes precedence over ABG341/343 when a
     buffer is both realloc- and mutation-managed.

Assignments through a property **setter** (``self.request = values``
where ``request.setter`` copies element-wise) are not escapes or
reallocations; the setter's own summary carries its true effects, so
facts shadowed by a non-aliasing setter are dropped.  Parameter-rooted
arguments at call sites are never flagged (no transitive propagation —
the conservative cut that keeps the pass one fixpoint deep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..findings import LintFinding, is_suppressed, rule_severity
from .callgraph import ModuleIndex
from .model import FunctionSummary, ModuleInfo, function_id
from .summarize import expand_name

__all__ = [
    "ClassBufferFacts",
    "class_buffer_facts",
    "resolve_buffer_root",
    "provenance_findings",
]

#: Maximum attribute-chain / property hops while resolving a root.
_MAX_CHAIN_DEPTH = 4


def _combine(a: str, b: str) -> str:
    """Kind algebra: any copy kills aliasing; any view demotes base."""
    if "copy" in (a, b):
        return "copy"
    return "view" if "view" in (a, b) else "base"


@dataclass(frozen=True, slots=True)
class ClassBufferFacts:
    """What one class does to its own (array) attributes."""

    array_attrs: frozenset[str] = frozenset()
    #: attributes some method writes in place (``"*"`` = dynamic target)
    mutated: frozenset[str] = frozenset()
    #: attributes some method rebinds to a fresh array (``"*"`` = dynamic
    #: ``setattr`` — the doubling-arena growth loop)
    rebound: frozenset[str] = frozenset()
    #: attributes with a property setter (assignment is a copy, not a bind)
    setters: frozenset[str] = frozenset()

    def is_mutated(self, attr: str) -> bool:
        if attr == "*":
            return bool(self.mutated)
        return attr in self.mutated or ("*" in self.mutated and attr in self.array_attrs)

    def is_realloc(self, attr: str) -> bool:
        if attr == "*":
            return bool(self.rebound)
        return attr in self.rebound or ("*" in self.rebound and attr in self.array_attrs)


def _class_ref(index: ModuleIndex, info: ModuleInfo, ref: str) -> str | None:
    """Resolve a class reference as written in ``info``'s module."""
    if ref in info.classes:
        return function_id(info.module, ref)
    return index.resolve_class(expand_name(ref, info))


def _ctx_class(info: ModuleInfo, qualname: str) -> str | None:
    """The ``module::Class`` id a method's ``self`` refers to."""
    if "." not in qualname:
        return None
    return function_id(info.module, qualname.split(".")[0])


def _setter_is_aliasing(setter: FunctionSummary | None) -> bool:
    """Whether a property setter lets its value parameter escape."""
    if setter is None:
        return False
    return any(
        e.root.startswith("param:") and e.kind != "copy"
        for e in setter.buffer_escapes
    )


def _setter_shadowed(info: ModuleInfo, qualname: str, attr_path: str) -> bool:
    """Whether ``self.<attr_path>`` inside ``qualname`` hits a property
    setter that copies in place (so no bind/escape actually happens)."""
    if "." in attr_path or "." not in qualname:
        return False
    cls = qualname.split(".")[0]
    setter = info.functions.get(f"{cls}.{attr_path}.setter")
    if setter is None:
        return False
    return not _setter_is_aliasing(setter)


def _resolve_chain(
    index: ModuleIndex, cls_id: str, path: str, kind: str, depth: int
) -> tuple[str, str, str] | None:
    """Resolve an attribute path in the context of ``cls_id`` to the
    owning ``(class id, attribute, kind)``."""
    if depth > _MAX_CHAIN_DEPTH or not path:
        return None
    module, _, cls = cls_id.partition("::")
    info = index.modules.get(module)
    if info is None:
        return None
    head, _, rest = path.partition(".")
    getter = info.functions.get(f"{cls}.{head}")
    if getter is not None and getter.is_property:
        # property access: follow the getter's borrow facts
        for ret in getter.buffer_returns:
            if ret.kind == "copy" or not ret.root.startswith("self."):
                continue
            sub_path = ret.root[len("self."):]
            if rest:
                sub_path = f"{sub_path}.{rest}"
            resolved = _resolve_chain(
                index, cls_id, sub_path, _combine(kind, ret.kind), depth + 1
            )
            if resolved is not None:
                return resolved
        return None
    if not rest:
        return (cls_id, head, kind)
    ctor = info.attr_ctors.get(cls, {}).get(head)
    if ctor is None:
        return None
    target = _class_ref(index, info, ctor)
    if target is None:
        return None
    return _resolve_chain(index, target, rest, kind, depth + 1)


def resolve_buffer_root(
    index: ModuleIndex,
    info: ModuleInfo,
    cls_ctx: str | None,
    root: str,
    kind: str = "base",
) -> tuple[str, str, str] | None:
    """Resolve a provenance root to ``(class id, attribute, kind)``.

    ``param:``/``global:`` roots resolve to ``None`` — the former are the
    callee's business (no transitive propagation), the latter are covered
    by the file-local sentinel rule ABG314.
    """
    if root.startswith("self."):
        if cls_ctx is None:
            return None
        return _resolve_chain(index, cls_ctx, root[len("self."):], kind, 0)
    if root.startswith("typed:"):
        path = root[len("typed:"):]
        parts = path.split(".")
        # the class reference may itself be dotted (mod.Cls.attr): take the
        # longest prefix that resolves to an analyzed class
        for cut in range(len(parts) - 1, 0, -1):
            cls_id = _class_ref(index, info, ".".join(parts[:cut]))
            if cls_id is not None:
                return _resolve_chain(
                    index, cls_id, ".".join(parts[cut:]), kind, 0
                )
        return None
    return None


def class_buffer_facts(index: ModuleIndex) -> dict[str, ClassBufferFacts]:
    """Aggregate per-class buffer facts over the whole module index."""
    arrays: dict[str, set[str]] = {}
    mutated: dict[str, set[str]] = {}
    rebound: dict[str, set[str]] = {}
    setters: dict[str, set[str]] = {}

    for module, info in index.modules.items():
        for cls, attrs in info.array_attrs.items():
            arrays.setdefault(function_id(module, cls), set()).update(attrs)
        for qualname in info.functions:
            parts = qualname.split(".")
            if len(parts) == 3 and parts[2] == "setter":
                setters.setdefault(function_id(module, parts[0]), set()).add(parts[1])

    for module, info in index.modules.items():
        for qualname, summary in info.functions.items():
            cls_ctx = _ctx_class(info, qualname)
            for write in summary.buffer_writes:
                resolved = resolve_buffer_root(index, info, cls_ctx, write.target)
                if resolved is not None:
                    mutated.setdefault(resolved[0], set()).add(resolved[1])
            for rebind in summary.buffer_rebinds:
                if cls_ctx is None:
                    continue
                # assignment through a copying property setter is a write,
                # not a reallocation — the setter's own summary has the write
                if rebind.attr != "*" and rebind.attr in setters.get(cls_ctx, ()):
                    setter = info.functions.get(
                        f"{qualname.split('.')[0]}.{rebind.attr}.setter"
                    )
                    if not _setter_is_aliasing(setter):
                        continue
                rebound.setdefault(cls_ctx, set()).add(rebind.attr)

    out: dict[str, ClassBufferFacts] = {}
    for cls_id in sorted({*arrays, *mutated, *rebound, *setters}):
        out[cls_id] = ClassBufferFacts(
            array_attrs=frozenset(arrays.get(cls_id, ())),
            mutated=frozenset(mutated.get(cls_id, ())),
            rebound=frozenset(rebound.get(cls_id, ())),
            setters=frozenset(setters.get(cls_id, ())),
        )
    return out


def _display_buffer(cls_id: str, attr: str) -> str:
    _, _, cls = cls_id.partition("::")
    return f"{cls}.{attr}"


def provenance_findings(
    index: ModuleIndex, sources: Mapping[str, Sequence[str]]
) -> list[LintFinding]:
    """ABG341–ABG344 findings over the whole module index."""
    facts = class_buffer_facts(index)
    functions = index.functions()
    findings: list[LintFinding] = []

    def emit(info: ModuleInfo, line: int, code: str, message: str) -> None:
        lines = sources.get(info.path, [])
        if is_suppressed(lines, line, code):
            return
        findings.append(
            LintFinding(
                path=info.path,
                line=line,
                col=0,
                code=code,
                message=message,
                severity=rule_severity(code),
            )
        )

    def managed(resolved: tuple[str, str, str]) -> tuple[bool, bool]:
        cls_id, attr, _ = resolved
        f = facts.get(cls_id)
        if f is None:
            return (False, False)
        return (f.is_realloc(attr), f.is_mutated(attr))

    for module, info in index.modules.items():
        for qualname, summary in info.functions.items():
            cls_ctx = _ctx_class(info, qualname)

            # -- ABG343 / ABG344: aliases stored by this function itself --
            for esc in summary.buffer_escapes:
                if esc.kind == "copy" or esc.root.startswith(("param:", "global:")):
                    continue
                if esc.via.startswith("self.") and _setter_shadowed(
                    info, qualname, esc.via[len("self."):]
                ):
                    continue
                resolved = resolve_buffer_root(
                    index, info, cls_ctx, esc.root, esc.kind
                )
                if resolved is None or resolved[2] == "copy":
                    continue
                realloc, mut = managed(resolved)
                buffer = _display_buffer(resolved[0], resolved[1])
                if realloc:
                    emit(
                        info,
                        esc.line,
                        "ABG344",
                        f"stores an alias of reallocation-managed buffer "
                        f"{buffer} (via {esc.via}); after the next doubling/"
                        "resize the stored view observes the dead buffer — "
                        "store a copy, or re-derive the view after growth",
                    )
                elif mut:
                    emit(
                        info,
                        esc.line,
                        "ABG343",
                        f"stores an alias of {buffer} (via {esc.via}) while "
                        "the owning class keeps mutating it in place "
                        "(write-after-borrow); the stored value changes "
                        "retroactively — store a copy at the boundary",
                    )

            # -- ABG342 (local): out= aliases an input root ----------------
            for oc in summary.out_calls:
                inputs = [r for r in oc.inputs.split(",") if r]
                if oc.out_root in inputs:
                    emit(
                        info,
                        oc.line,
                        "ABG342",
                        f"out= target aliases input buffer {oc.out_root!r} "
                        "through a different expression; the ufunc reads "
                        "elements the same call already overwrote — use a "
                        "fresh output buffer",
                    )

            # -- call-boundary rules over buffer-rooted arguments ----------
            for cb in summary.call_buffers:
                bindings: list[tuple[str, str, str]] = []
                callee_ids = index.resolve_call(info, cb.callee, qualname)
                for callee_id in callee_ids:
                    callee = functions.get(callee_id)
                    if callee is None:
                        continue
                    params = list(callee.params)
                    if params and params[0] in ("self", "cls") and (
                        "." in callee_id.rpartition("::")[2]
                    ):
                        params = params[1:]
                    bindings = []
                    for pos, enc in enumerate(cb.args):
                        if enc and pos < len(params):
                            root, _, kind = enc.rpartition("@")
                            bindings.append((params[pos], root, kind))
                    for enc in cb.kwargs:
                        name, _, root_kind = enc.partition("=")
                        root, _, kind = root_kind.rpartition("@")
                        if name in callee.params:
                            bindings.append((name, root, kind))
                    if not bindings:
                        continue
                    callee_info = index.info_for(callee_id)
                    callee_qual = callee_id.rpartition("::")[2]

                    # ABG341/ABG344: managed alias into an escaping param
                    for param, root, kind in bindings:
                        if root.startswith(("param:", "global:")) or kind == "copy":
                            continue
                        resolved = resolve_buffer_root(
                            index, info, cls_ctx, root, kind
                        )
                        if resolved is None or resolved[2] == "copy":
                            continue
                        realloc, mut = managed(resolved)
                        if not (realloc or mut):
                            continue
                        escapes = any(
                            e.root == f"param:{param}"
                            and e.kind != "copy"
                            and not (
                                e.via.startswith("self.")
                                and _setter_shadowed(
                                    callee_info,
                                    callee_qual,
                                    e.via[len("self."):],
                                )
                            )
                            for e in callee.buffer_escapes
                        )
                        if not escapes:
                            continue
                        buffer = _display_buffer(resolved[0], resolved[1])
                        callee_name = callee_qual
                        if realloc:
                            emit(
                                info,
                                cb.line,
                                "ABG344",
                                f"passes an alias of reallocation-managed "
                                f"buffer {buffer} to {callee_name}(), which "
                                f"stores parameter {param!r}; the stored "
                                "view goes stale at the next doubling/resize "
                                "— pass a copy across this boundary",
                            )
                        else:
                            emit(
                                info,
                                cb.line,
                                "ABG341",
                                f"passes an alias of mutated arena buffer "
                                f"{buffer} to {callee_name}(), which stores "
                                f"parameter {param!r}; later in-place writes "
                                "rewrite the stored value — pass a copy "
                                "across this boundary",
                            )

                    # ABG342 (call boundary): same buffer bound to an out=
                    # param and an input param of the callee
                    for oc in callee.out_calls:
                        if not oc.out_root.startswith("param:"):
                            continue
                        out_param = oc.out_root[len("param:"):]
                        in_params = [
                            r[len("param:"):]
                            for r in oc.inputs.split(",")
                            if r.startswith("param:")
                        ]
                        out_binding = next(
                            (b for b in bindings if b[0] == out_param), None
                        )
                        if out_binding is None:
                            continue
                        for b in bindings:
                            if b[0] == out_param or b[0] not in in_params:
                                continue
                            same_raw = b[1] == out_binding[1]
                            r_out = resolve_buffer_root(
                                index, info, cls_ctx, out_binding[1]
                            )
                            r_in = resolve_buffer_root(index, info, cls_ctx, b[1])
                            same_resolved = (
                                r_out is not None
                                and r_in is not None
                                and r_out[:2] == r_in[:2]
                            )
                            if same_raw or same_resolved:
                                emit(
                                    info,
                                    cb.line,
                                    "ABG342",
                                    f"{callee_qual}() writes parameter "
                                    f"{out_param!r} via out= while reading "
                                    f"parameter {b[0]!r}, and this call binds "
                                    "both to the same underlying buffer "
                                    f"({out_binding[1]}); the in-place write "
                                    "clobbers the input mid-call — pass "
                                    "disjoint buffers",
                                )
    return findings
