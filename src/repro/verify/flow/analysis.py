"""Fixpoint analysis: prove the fan-out determinism contract statically.

``analyze_paths`` summarizes every file (through the content-hash cache),
builds the call graph, determines the *worker-dispatched* root set, and
propagates reachability to a fixpoint.  Every function reachable from a
root executes inside a ``ProcessPoolExecutor`` worker under ``repro all
--jobs`` / ``fig5``/``fig6 --workers`` — so on those functions the ABG2xx
rules apply:

- ``ABG201`` — writes to module-global or closure state (a worker's
  globals are per-process: any such write silently diverges between serial
  and parallel runs);
- ``ABG202`` — mutable default arguments (call-to-call aliasing inside a
  worker);
- ``ABG211`` — ambient randomness: seedless ``default_rng()``, stdlib
  ``random``, numpy global state;
- ``ABG212`` — a ``default_rng(seed)`` whose seed expression is not
  data-flow-derived from a parameter, literal, or module constant;
- ``ABG221`` — hash-order set iteration without ``sorted(...)``;
- ``ABG231`` — unpicklable or handle-bearing payloads at the dispatch
  sites themselves (reported wherever they occur).

Flow-analyzer v2 adds attribute-level and exception-path rules on the
same reachable set:

- ``ABG331`` — attribute-level mutation of shared module state reached
  through a chain (``CONFIG.limits.max = 1``, ``TABLE[k].bump()``) —
  what ABG201's direct-base check cannot see;
- ``ABG332`` — a parameter mutated before a later explicit ``raise`` in
  the same worker-reachable function: the supervised pool *retries*
  failed units, so the replay sees the half-mutated argument;
- ``ABG333`` (``strict_roots=True`` only) — a pool-dispatch site whose
  payload cannot be resolved to an analyzed function (computed callables
  and names that leave the tree); forwarding a function-typed *parameter*
  is exempt, since the concrete callee is resolved at the outer call.

The kernel passes (``ABG3xx`` parity + numeric rules,
:mod:`repro.verify.flow.kernel`) also run here: parity over the cached
module index, numeric over a fresh parse of each kernel file.

Roots come from two sources: **discovered** dispatch sites (any function
handed by name to ``map_deterministic`` / ``run_supervised`` /
``pool.submit`` / ``pool.map``) and the **declared** patterns in
:data:`DEFAULT_ROOT_PATTERNS` covering registry-driven dispatch the
resolver cannot see through (the bench scenario table, the
experiment-runner registry, the engine protocol surface the workers
drive, and the supervised pool's worker entrypoint).

Suppression uses the shared ``# abg: allow[CODE] reason=...`` syntax from
:mod:`repro.verify.findings`; a reason is mandatory.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..findings import LintFinding, is_suppressed, rule_severity
from .cache import SummaryCache, source_digest
from .callgraph import ModuleIndex, build_call_graph
from .kernel import (
    DEFAULT_KERNEL_PATTERNS,
    inferred_pair_findings,
    PARITY_CONTRACTS,
    ParityContract,
    is_kernel_path,
    numeric_findings,
    parity_findings,
)
from .model import FunctionSummary, ModuleInfo
from .provenance import provenance_findings
from .summarize import summarize_module

__all__ = ["FlowReport", "analyze_paths", "DEFAULT_ROOT_PATTERNS"]

#: Declared roots (``module-glob::qualname-glob``) for dispatch the call
#: graph cannot follow because the callee travels through a data registry:
#: the bench scenario table (``SCENARIOS``), the experiment-runner registry
#: (``_experiments()``), the engine protocol surface workers drive (which
#: includes the multi-job batched kernel's quantum entry point), and the
#: supervised pool's picklable worker entrypoint (every ``pool.submit``
#: funnels through it, so everything it calls runs inside a worker).
DEFAULT_ROOT_PATTERNS: tuple[str, ...] = (
    "repro.bench.scenarios::_*",
    "repro.engine.*::*.execute_quantum",
    "repro.sim.multi_batched::*.execute_quantum",
    "repro.sim.multi_batched::*.superstep_plan",
    "repro.sim.multi_batched::*.apply_superstep",
    "repro.sim.superstep::*.build_traces",
    "repro.experiments.*::run_*",
    "repro.runtime.supervisor::_invoke_unit",
    # The sharded executor's per-group window unit: dispatched through
    # run_supervised, so inside a worker it is a root of its own.
    "repro.sim.sharded::run_group_window",
)


@dataclass(slots=True)
class FlowReport:
    """Outcome of one deep analysis run."""

    findings: list[LintFinding] = field(default_factory=list)
    roots: tuple[str, ...] = ()
    reachable: frozenset[str] = frozenset()
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings


def _iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.exists():
            files.append(p)
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
    return files


def _display(func_id: str) -> str:
    return func_id.replace("::", ".")


def _matches(func_id: str, pattern: str) -> bool:
    module, _, qualname = func_id.partition("::")
    pat_module, sep, pat_qual = pattern.partition("::")
    if not sep:
        return fnmatchcase(_display(func_id), pattern)
    return fnmatchcase(module, pat_module) and fnmatchcase(qualname, pat_qual)


def _function_findings(
    summary: FunctionSummary,
    info: ModuleInfo,
    lines: Sequence[str],
    trace: tuple[str, ...],
) -> list[LintFinding]:
    """The ABG2xx findings of one worker-reachable function."""
    out: list[LintFinding] = []

    def emit(line: int, code: str, message: str) -> None:
        if is_suppressed(lines, line, code):
            return
        out.append(
            LintFinding(
                path=info.path,
                line=line,
                col=0,
                code=code,
                message=message,
                severity=rule_severity(code),
                trace=trace,
            )
        )

    for write in summary.global_writes:
        verb = "rebinds" if write.kind == "rebind" else "mutates"
        emit(
            write.line,
            "ABG201",
            f"worker-dispatched path {verb} module-global/closure state "
            f"{write.name!r}; workers each see their own copy, so results "
            "depend on the worker count — pass state through the task instead",
        )
    for default in summary.mutable_defaults:
        emit(
            default.line,
            "ABG202",
            "mutable default argument on a worker-reachable function aliases "
            "state across calls within a worker; default to None",
        )
    for rng in summary.rng_uses:
        if rng.kind == "seedless":
            emit(
                rng.line,
                "ABG211",
                "default_rng() without a seed on a parallel path draws "
                "OS entropy per process; derive the stream from the task "
                "(e.g. default_rng([seed, key]))",
            )
        elif rng.kind == "ambient":
            emit(
                rng.line,
                "ABG211",
                f"ambient randomness ({rng.detail}) on a parallel path; "
                "every worker shares no state — pass an explicitly seeded "
                "Generator instead",
            )
        else:
            emit(
                rng.line,
                "ABG212",
                "RNG seed on a parallel path is not derived from a seed "
                "parameter, literal, or module constant; thread the seed "
                "through the task arguments",
            )
    for it in summary.set_iterations:
        emit(
            it.line,
            "ABG221",
            f"hash-order iteration over set {it.detail!r} on a parallel "
            "path; wrap in sorted(...) before the elements can reach a "
            "recorded schedule or artifact",
        )
    for write in summary.attr_writes:
        if write.root_kind == "global":
            emit(
                write.line,
                "ABG331",
                f"worker-dispatched path mutates shared instance state "
                f"{write.root}.{write.attr}: attribute-level writes through "
                "module-level objects diverge per worker process just like "
                "direct global writes — pass state through the task instead",
            )
        elif write.root_kind == "param" and any(
            r > write.line for r in summary.raises
        ):
            emit(
                write.line,
                "ABG332",
                f"parameter {write.root!r} mutated ({write.attr}) before a "
                "possible raise later in this worker function: the "
                "supervised pool retries failed units, so the replay sees "
                "the half-mutated argument — mutate only after the last "
                "raise, or work on a copy",
            )
    return out


def _payload_findings(
    summary: FunctionSummary, info: ModuleInfo, lines: Sequence[str]
) -> list[LintFinding]:
    """ABG231 findings at dispatch sites (reported wherever they occur)."""
    out: list[LintFinding] = []
    for risk in summary.payload_risks:
        if is_suppressed(lines, risk.line, "ABG231"):
            continue
        out.append(
            LintFinding(
                path=info.path,
                line=risk.line,
                col=0,
                code="ABG231",
                message=f"process-pool payload is not safely picklable: "
                f"{risk.detail}; ship a module-level function and plain data",
                severity=rule_severity("ABG231"),
            )
        )
    return out


def analyze_paths(
    paths: Iterable[Path | str],
    *,
    root_patterns: Sequence[str] = DEFAULT_ROOT_PATTERNS,
    extra_roots: Sequence[str] = (),
    cache: SummaryCache | None = None,
    overrides: Mapping[str, str] | None = None,
    strict_roots: bool = False,
    kernel_patterns: Sequence[str] = DEFAULT_KERNEL_PATTERNS,
    parity_contracts: Sequence[ParityContract] = PARITY_CONTRACTS,
) -> FlowReport:
    """Run the interprocedural analysis over files and directories.

    ``root_patterns`` add declared roots (``module-glob::qualname-glob``)
    on top of the discovered dispatch sites; ``extra_roots`` add exact
    function ids.  ``cache`` (a :class:`SummaryCache`) reuses summaries of
    unchanged files; ``overrides`` maps absolute path strings to
    replacement source text — the hook the mutation tests use to inject a
    violation without touching the tree.  ``strict_roots`` turns
    unresolvable pool-dispatch payloads into ``ABG333`` findings instead
    of silently trusting the declared root patterns to cover them.
    ``kernel_patterns``/``parity_contracts`` configure the ABG3xx passes
    (the numeric pass re-parses matching files fresh; the summary cache
    is never consulted for it).
    """
    report = FlowReport()
    modules: dict[str, ModuleInfo] = {}
    sources: dict[str, list[str]] = {}

    for file_path in _iter_python_files(paths):
        path_str = str(file_path)
        if overrides is not None and path_str in overrides:
            source = overrides[path_str]
        else:
            source = file_path.read_text(encoding="utf-8")
        sources[path_str] = source.splitlines()
        digest = source_digest(source)
        info = cache.get(path_str, digest) if cache is not None else None
        if info is None:
            try:
                info = summarize_module(source, path_str)
            except SyntaxError as exc:
                report.findings.append(
                    LintFinding(
                        path=path_str,
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        code="ABG100",
                        message=f"syntax error: {exc.msg}",
                        severity=rule_severity("ABG100"),
                    )
                )
                continue
            if cache is not None:
                cache.put(path_str, digest, info)
        modules[info.module] = info
    if cache is not None:
        cache.save()

    index = ModuleIndex(modules)
    graph = build_call_graph(index)
    functions = index.functions()

    # -- root set: discovered dispatch sites + declared patterns -------------
    roots: list[str] = []
    for module, info in index.modules.items():
        for qualname, summary in info.functions.items():
            for dispatch in summary.dispatches:
                resolved_ids = (
                    index.resolve_call(info, dispatch.callee, qualname)
                    if dispatch.callee
                    else ()
                )
                for resolved in resolved_ids:
                    if resolved not in roots:
                        roots.append(resolved)
                if strict_roots and not resolved_ids:
                    # a function-typed *parameter* forwarded to the pool is
                    # resolved at the outer call site — not a strict-roots
                    # violation (map_deterministic forwarding its fn)
                    if dispatch.callee and dispatch.callee in summary.params:
                        continue
                    lines = sources.get(info.path, [])
                    if is_suppressed(lines, dispatch.line, "ABG333"):
                        continue
                    detail = (
                        f"payload {dispatch.callee!r} does not resolve to an "
                        "analyzed function"
                        if dispatch.callee
                        else "payload is a computed callable"
                    )
                    report.findings.append(
                        LintFinding(
                            path=info.path,
                            line=dispatch.line,
                            col=0,
                            code="ABG333",
                            message=f"pool-dispatch callee unresolvable in "
                            f"strict-roots mode: {detail}; the analysis "
                            "cannot prove the worker-side effects — dispatch "
                            "a module-level function by name",
                            severity=rule_severity("ABG333"),
                        )
                    )
    for func_id in functions:
        if any(_matches(func_id, p) for p in root_patterns) and func_id not in roots:
            roots.append(func_id)
    for root in extra_roots:
        if root in functions and root not in roots:
            roots.append(root)
    report.roots = tuple(sorted(roots))

    # -- reachability fixpoint ------------------------------------------------
    # Property getters are invoked by attribute access (no call site), so
    # once any method of a class is reachable its properties are too.
    class_properties: dict[str, list[str]] = {}
    for func_id, summary in functions.items():
        if summary.is_property and "." in summary.qualname:
            cls_id = func_id.rsplit(".", 1)[0]
            class_properties.setdefault(cls_id, []).append(func_id)

    parent: dict[str, str | None] = {r: None for r in roots}
    queue: deque[str] = deque(roots)
    while queue:
        current = queue.popleft()
        successors = list(graph.get(current, ()))
        if "." in current.rpartition("::")[2]:
            successors.extend(class_properties.get(current.rsplit(".", 1)[0], ()))
        for callee in successors:
            if callee not in parent:
                parent[callee] = current
                queue.append(callee)
    report.reachable = frozenset(parent)

    def trace_of(func_id: str) -> tuple[str, ...]:
        chain: list[str] = []
        cursor: str | None = func_id
        while cursor is not None:
            chain.append(_display(cursor))
            cursor = parent[cursor]
        return tuple(reversed(chain))

    # -- findings -------------------------------------------------------------
    for func_id, summary in functions.items():
        info = index.info_for(func_id)
        lines = sources.get(info.path, [])
        report.findings.extend(_payload_findings(summary, info, lines))
        if func_id in parent:
            report.findings.extend(
                _function_findings(summary, info, lines, trace_of(func_id))
            )

    # -- kernel passes (ABG3xx) ----------------------------------------------
    report.findings.extend(parity_findings(index, sources, parity_contracts))
    report.findings.extend(inferred_pair_findings(index, sources, parity_contracts))
    # buffer-provenance rules (ABG34x) run tree-wide like the parity pass:
    # aliasing hazards corrupt recorded traces wherever they occur, not
    # only on worker-dispatched paths
    report.findings.extend(provenance_findings(index, sources))
    kernel_files = 0
    for path_str, lines in sources.items():
        if not is_kernel_path(path_str, kernel_patterns):
            continue
        kernel_files += 1
        try:
            tree = ast.parse("\n".join(lines), filename=path_str)
        except SyntaxError:
            continue  # already reported as ABG100 above
        report.findings.extend(numeric_findings(path_str, lines, tree))

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    report.stats = {
        "modules": len(modules),
        "functions": len(functions),
        "roots": len(roots),
        "reachable": len(parent),
        "kernel_files": kernel_files,
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
    }
    return report
