"""Content-hash effect-summary cache.

Summaries are file-local facts (see :mod:`repro.verify.flow.summarize`),
so caching them keyed on the sha256 of each file's source is sound: edit a
file and only that file re-summarizes; the (cheap) call-graph resolution
and fixpoint always run fresh.  This keeps ``python -m repro lint --deep``
fast enough for CI and pre-commit.

The cache lives in ``.abg_cache/flow-summaries.json`` by default
(git-ignored); a missing, corrupt, or schema-mismatched file is treated as
empty, never an error.

Invalidation is two-keyed: the payload ``schema`` (bumped whenever the
summary *shape* changes) **and** the :func:`analyzer_version` fingerprint,
derived from the sorted rule registry — so merely *adding* a rule, which
changes no summary shape, still discards every cached summary.  Without
the second key an upgraded linter could serve pre-upgrade summaries that
never recorded the facts the new rules need, silently masking findings.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from ...runtime import write_atomic
from ..findings import RULES
from .model import ModuleInfo, module_from_payload, module_payload

__all__ = [
    "SummaryCache",
    "DEFAULT_CACHE_PATH",
    "source_digest",
    "analyzer_version",
]

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_PATH = Path(".abg_cache") / "flow-summaries.json"

_SCHEMA = 5  # 5: flow v3 buffer-provenance summaries (points-to facts, ABG34x)


def analyzer_version() -> str:
    """Fingerprint of the active rule set (codes + severities + summaries).

    Any rule addition, removal, or redefinition changes this string, which
    invalidates every cached summary — the rule-set key of the cache.
    """
    canon = json.dumps(sorted(RULES.items()), separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def source_digest(source: str) -> str:
    """sha256 hex digest of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Load/store :class:`ModuleInfo` summaries keyed by path + digest."""

    def __init__(self, path: str | Path = DEFAULT_CACHE_PATH):
        self.path = Path(path)
        self._entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("schema") != _SCHEMA:
            return
        if data.get("analyzer") != analyzer_version():
            return  # rule set changed since this cache was written
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, file_path: str, digest: str) -> ModuleInfo | None:
        """The cached summary for ``file_path`` when its digest matches."""
        entry = self._entries.get(file_path)
        if entry is None or entry.get("sha256") != digest:
            self.misses += 1
            return None
        try:
            info = module_from_payload(entry["module"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return info

    def put(self, file_path: str, digest: str, info: ModuleInfo) -> None:
        self._entries[file_path] = {
            "sha256": digest,
            "module": module_payload(info),
        }

    def save(self) -> None:
        """Persist the cache (creates the parent directory)."""
        payload = {
            "schema": _SCHEMA,
            "analyzer": analyzer_version(),
            "entries": self._entries,
        }
        write_atomic(self.path, json.dumps(payload))
