"""Data model of the interprocedural flow analysis.

A :class:`FunctionSummary` is the per-function *effect summary* the
analysis propagates: which functions it calls, which module-global or
closure state it writes, where it introduces randomness, where it iterates
hash-ordered containers, and what it ships to a process pool.  Summaries
are purely syntactic facts about one function body — extracting them never
needs other files — which is what makes the content-hash summary cache
(:mod:`repro.verify.flow.cache`) sound: a file's summaries depend only on
its own bytes.

Everything here round-trips through plain JSON (``to_payload`` /
``from_payload``) so the cache can persist summaries between runs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

__all__ = [
    "CallSite",
    "GlobalWrite",
    "RngUse",
    "SetIteration",
    "PayloadRisk",
    "MutableDefault",
    "DispatchSite",
    "AttrWrite",
    "BufferWrite",
    "BufferRebind",
    "BufferEscape",
    "BufferReturn",
    "OutCall",
    "CallArgBuffers",
    "FunctionSummary",
    "ModuleInfo",
    "function_id",
    "module_payload",
    "module_from_payload",
]

#: Separator between module name and function qualname in a function id.
_SEP = "::"


def function_id(module: str, qualname: str) -> str:
    """Unambiguous id of a function: ``module::qualname``."""
    return f"{module}{_SEP}{qualname}"


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call expression: the dotted callee name as written, e.g.
    ``"simulate_job"``, ``"exp.run_fig5"``, ``"self.helper"``."""

    callee: str
    line: int


@dataclass(frozen=True, slots=True)
class GlobalWrite:
    """A write to module-global or closure state.

    ``kind`` is ``"rebind"`` (``global``/``nonlocal`` + assignment) or
    ``"mutation"`` (in-place mutation of a module-level object: item/attr
    assignment, augmented assignment, or a mutating method call).
    """

    name: str
    line: int
    kind: str


@dataclass(frozen=True, slots=True)
class RngUse:
    """A randomness introduction.

    ``kind``: ``"seedless"`` (``default_rng()`` with no argument),
    ``"unseeded-seed"`` (a seed expression not derived from parameters,
    literals, or module constants), or ``"ambient"`` (stdlib ``random`` /
    numpy global-state use).
    """

    line: int
    kind: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class SetIteration:
    """Iteration over an expression inferred to be a ``set`` with no
    intervening ``sorted(...)``."""

    line: int
    detail: str = ""


@dataclass(frozen=True, slots=True)
class PayloadRisk:
    """A non-picklable or handle-bearing argument at a pool dispatch site.

    ``kind``: ``"lambda"``, ``"nested-function"``, or ``"open-handle"``.
    """

    line: int
    kind: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class MutableDefault:
    """A mutable default argument (interprocedural counterpart of ABG103)."""

    line: int


@dataclass(frozen=True, slots=True)
class DispatchSite:
    """A function value handed to a process pool (``map_deterministic``,
    ``pool.submit``, ``pool.map``); ``callee`` is the dotted name as
    written, empty when the payload is not a plain name."""

    callee: str
    line: int


@dataclass(frozen=True, slots=True)
class AttrWrite:
    """An attribute-level (or item-level) mutation reached through a name.

    ``root`` is the chain's base name (``cfg`` for ``cfg.limits.max = 1``),
    ``attr`` the dotted path written below it (``"limits.max"``, or ``"[]"``
    for an item store, or ``"<method>"`` for a mutating method call), and
    ``root_kind`` whether the root is module-level shared state
    (``"global"``) or a function parameter (``"param"``).
    """

    root: str
    attr: str
    line: int
    root_kind: str


# -- buffer-provenance facts (flow v3) ---------------------------------------
#
# Provenance *roots* are canonical strings naming the buffer an expression
# aliases:
#
# - ``"param:NAME"``     — a function parameter's buffer
# - ``"self.PATH"``      — an attribute chain rooted at ``self`` (dots only;
#   ``"self.*"`` when the attribute is dynamic, e.g. ``getattr(self, name)``)
# - ``"typed:Ref.PATH"`` — an attribute chain rooted at a local whose class
#   is known from an annotation or constructor assignment (``Ref`` is the
#   class reference as written; the analysis expands it through imports)
# - ``"global:NAME"``    — a module-level binding
#
# Provenance *kinds* say how the value relates to the root buffer:
# ``"base"`` (the buffer itself), ``"view"`` (a numpy view of it —
# slicing, ``reshape``, ``.view``, ``np.asarray``, broadcast, transpose),
# ``"copy"`` (``.copy()``, ``np.array``, ``.astype``, fancy indexing —
# no aliasing survives).  Only ``base``/``view`` alias the root.


@dataclass(frozen=True, slots=True)
class BufferWrite:
    """An in-place write into a buffer: item/slice store (``kind="index"``),
    a mutating method (``"method"`` — ``.sort()``, ``.fill()``,
    ``.append()`` on a container attribute), or a ufunc ``out=`` target
    (``"out"``)."""

    target: str
    line: int
    kind: str


@dataclass(frozen=True, slots=True)
class BufferRebind:
    """A potential reallocation point: ``self.ATTR`` rebound to a fresh
    array outside ``__init__``, a dynamic ``setattr(self, name, ...)``
    (``attr="*"``), or an in-place ``.resize()``.  Views taken before the
    rebind go stale — the doubling-arena hazard ABG344 tracks."""

    attr: str
    line: int


@dataclass(frozen=True, slots=True)
class BufferEscape:
    """A buffer value stored beyond the call frame: onto ``self``
    (``via="self.ATTR"``), into a container reached from ``self`` or module
    state (``via="container"``), onto another object (``via="typed:..."``),
    or into module state (``via="global:NAME"``)."""

    root: str
    kind: str
    via: str
    line: int


@dataclass(frozen=True, slots=True)
class BufferReturn:
    """Provenance of a returned expression (the *borrow* a caller holds)."""

    root: str
    kind: str
    line: int


@dataclass(frozen=True, slots=True)
class OutCall:
    """A ufunc call with ``out=`` whose operands are buffer-rooted;
    ``inputs`` is a comma-joined list of the input roots."""

    out_root: str
    out_kind: str
    inputs: str
    line: int


@dataclass(frozen=True, slots=True)
class CallArgBuffers:
    """Buffer-rooted arguments at one call site.  Each entry is
    ``"root@kind"`` (``""`` for a non-buffer argument); keyword entries are
    ``"name=root@kind"``."""

    callee: str
    line: int
    args: tuple[str, ...] = ()
    kwargs: tuple[str, ...] = ()


@dataclass(slots=True)
class FunctionSummary:
    """The effect summary of one function or method."""

    qualname: str
    line: int
    params: tuple[str, ...] = ()
    #: default-value expressions aligned to ``params`` (``""`` = no default),
    #: kept as source text so the parity pass can flag default drift
    defaults: tuple[str, ...] = ()
    #: decorated ``@property`` / ``@cached_property`` — invoked by attribute
    #: access, so reachability pulls it in with the rest of its class
    is_property: bool = False
    calls: tuple[CallSite, ...] = ()
    global_writes: tuple[GlobalWrite, ...] = ()
    rng_uses: tuple[RngUse, ...] = ()
    set_iterations: tuple[SetIteration, ...] = ()
    payload_risks: tuple[PayloadRisk, ...] = ()
    mutable_defaults: tuple[MutableDefault, ...] = ()
    dispatches: tuple[DispatchSite, ...] = ()
    attr_writes: tuple[AttrWrite, ...] = ()
    #: lines of explicit ``raise`` statements (exception-path effect model)
    raises: tuple[int, ...] = ()
    #: buffer-provenance facts (flow v3) — see the root/kind conventions above
    buffer_writes: tuple[BufferWrite, ...] = ()
    buffer_rebinds: tuple[BufferRebind, ...] = ()
    buffer_escapes: tuple[BufferEscape, ...] = ()
    buffer_returns: tuple[BufferReturn, ...] = ()
    out_calls: tuple[OutCall, ...] = ()
    call_buffers: tuple[CallArgBuffers, ...] = ()


@dataclass(slots=True)
class ModuleInfo:
    """Everything the analysis knows about one source file."""

    module: str
    path: str
    #: ``import numpy as np`` -> ``{"np": "numpy"}``
    imports: dict[str, str] = field(default_factory=dict)
    #: ``from .parallel import map_deterministic`` ->
    #: ``{"map_deterministic": "repro.experiments.parallel.map_deterministic"}``
    aliases: dict[str, str] = field(default_factory=dict)
    #: module-level names bound to literal (immutable) values
    constants: tuple[str, ...] = ()
    #: module-level names bound to mutable containers
    mutable_globals: tuple[str, ...] = ()
    #: class name -> base-class dotted names as written (for hierarchy
    #: analysis: calls through a base annotation reach every override)
    classes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: class name -> names assigned at class level (marker attributes such
    #: as ``batch_fallback`` for the kernel-parity pass)
    class_attrs: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: module-level names bound to constructed class instances — shared
    #: state the attribute-mutation tracking (ABG331) watches
    instance_globals: tuple[str, ...] = ()
    #: class name -> {attr -> constructor dotted name} for ``self.ATTR =
    #: Ctor(...)`` assignments in methods — the type table the provenance
    #: pass uses to resolve ``self.X.Y`` chains across objects
    attr_ctors: dict[str, dict[str, str]] = field(default_factory=dict)
    #: class name -> attributes ever assigned a numpy-call result — the
    #: buffers the wildcard (``"*"``) write/rebind facts range over
    array_attrs: dict[str, tuple[str, ...]] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)


_TUPLE_FIELDS: dict[str, type] = {
    "calls": CallSite,
    "global_writes": GlobalWrite,
    "rng_uses": RngUse,
    "set_iterations": SetIteration,
    "payload_risks": PayloadRisk,
    "mutable_defaults": MutableDefault,
    "dispatches": DispatchSite,
    "attr_writes": AttrWrite,
    "buffer_writes": BufferWrite,
    "buffer_rebinds": BufferRebind,
    "buffer_escapes": BufferEscape,
    "buffer_returns": BufferReturn,
    "out_calls": OutCall,
    "call_buffers": CallArgBuffers,
}


def module_payload(info: ModuleInfo) -> dict[str, Any]:
    """JSON-serializable form of a :class:`ModuleInfo` (for the cache)."""
    return {
        "module": info.module,
        "path": info.path,
        "imports": dict(info.imports),
        "aliases": dict(info.aliases),
        "constants": list(info.constants),
        "mutable_globals": list(info.mutable_globals),
        "classes": {name: list(bases) for name, bases in info.classes.items()},
        "class_attrs": {
            name: list(attrs) for name, attrs in info.class_attrs.items()
        },
        "instance_globals": list(info.instance_globals),
        "attr_ctors": {
            name: dict(attrs) for name, attrs in info.attr_ctors.items()
        },
        "array_attrs": {
            name: list(attrs) for name, attrs in info.array_attrs.items()
        },
        "functions": {
            name: {
                "qualname": fn.qualname,
                "line": fn.line,
                "params": list(fn.params),
                "defaults": list(fn.defaults),
                "is_property": fn.is_property,
                "raises": list(fn.raises),
                **{
                    fname: [asdict(item) for item in getattr(fn, fname)]
                    for fname in _TUPLE_FIELDS
                },
            }
            for name, fn in info.functions.items()
        },
    }


def module_from_payload(payload: Mapping[str, Any]) -> ModuleInfo:
    """Inverse of :func:`module_payload`."""
    functions: dict[str, FunctionSummary] = {}
    for name, raw in payload["functions"].items():
        kwargs: dict[str, Any] = {
            "qualname": str(raw["qualname"]),
            "line": int(raw["line"]),
            "params": tuple(raw["params"]),
            "defaults": tuple(raw.get("defaults", ())),
            "is_property": bool(raw.get("is_property", False)),
            "raises": tuple(int(r) for r in raw.get("raises", ())),
        }
        for fname, cls in _TUPLE_FIELDS.items():
            kwargs[fname] = tuple(
                cls(
                    **{
                        key: tuple(value) if isinstance(value, list) else value
                        for key, value in item.items()
                    }
                )
                for item in raw.get(fname, ())
            )
        functions[name] = FunctionSummary(**kwargs)
    return ModuleInfo(
        module=str(payload["module"]),
        path=str(payload["path"]),
        imports=dict(payload["imports"]),
        aliases=dict(payload["aliases"]),
        constants=tuple(payload["constants"]),
        mutable_globals=tuple(payload["mutable_globals"]),
        classes={
            name: tuple(bases) for name, bases in payload["classes"].items()
        },
        class_attrs={
            name: tuple(attrs)
            for name, attrs in payload.get("class_attrs", {}).items()
        },
        instance_globals=tuple(payload.get("instance_globals", ())),
        attr_ctors={
            name: dict(attrs)
            for name, attrs in payload.get("attr_ctors", {}).items()
        },
        array_attrs={
            name: tuple(attrs)
            for name, attrs in payload.get("array_attrs", {}).items()
        },
        functions=functions,
    )
