"""Interprocedural purity & parallel-safety analysis (rules ``ABG2xx``).

The file-local lint (:mod:`repro.verify.lint`) can only see one function
at a time; this package *proves* the repo's fan-out determinism contract —
"``--jobs``/``--workers`` never changes a number" — by building a call
graph over ``src/repro``, extracting per-function effect summaries, and
propagating reachability from the worker-dispatched entry points to a
fixpoint.  See :mod:`repro.verify.flow.analysis` for the rule families and
docs/STATIC_ANALYSIS.md for the full catalogue.

Entry points::

    python -m repro lint --deep            # unified ABG1xx + ABG2xx report
    from repro.verify.flow import analyze_paths
    report = analyze_paths(["src/repro"])
"""

from __future__ import annotations

from .analysis import DEFAULT_ROOT_PATTERNS, FlowReport, analyze_paths
from .cache import DEFAULT_CACHE_PATH, SummaryCache
from .callgraph import ModuleIndex, build_call_graph
from .model import FunctionSummary, ModuleInfo
from .summarize import summarize_module

__all__ = [
    "DEFAULT_CACHE_PATH",
    "DEFAULT_ROOT_PATTERNS",
    "FlowReport",
    "FunctionSummary",
    "ModuleIndex",
    "ModuleInfo",
    "SummaryCache",
    "analyze_paths",
    "build_call_graph",
    "summarize_module",
]
