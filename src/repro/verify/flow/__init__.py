"""Interprocedural purity & parallel-safety analysis (``ABG2xx``/``ABG3xx``).

The file-local lint (:mod:`repro.verify.lint`) can only see one function
at a time; this package *proves* the repo's fan-out determinism contract —
"``--jobs``/``--workers`` never changes a number" — by building a call
graph over ``src/repro``, extracting per-function effect summaries, and
propagating reachability from the worker-dispatched entry points to a
fixpoint.  The ``ABG3xx`` family adds the scalar↔batched kernel contract:
an API-parity pass over the ``Allocator``/``FeedbackPolicy`` hierarchies
and a numerical-determinism pass over the array-kernel modules
(:mod:`repro.verify.flow.kernel`).  Flow v3 extends the summaries with
buffer points-to facts and proves the arena aliasing contract — no view
of an in-place-mutated or doubling-growth buffer stored past a write or
reallocation (:mod:`repro.verify.flow.provenance`, rules
``ABG341``–``ABG344``).  See :mod:`repro.verify.flow.analysis` for the
rule families and docs/STATIC_ANALYSIS.md for the full catalogue.

Entry points::

    python -m repro lint --deep            # unified ABG1xx/2xx/3xx report
    python -m repro lint --deep --strict-roots
    from repro.verify.flow import analyze_paths
    report = analyze_paths(["src/repro"])
"""

from __future__ import annotations

from .analysis import DEFAULT_ROOT_PATTERNS, FlowReport, analyze_paths
from .cache import DEFAULT_CACHE_PATH, SummaryCache, analyzer_version
from .callgraph import ModuleIndex, build_call_graph
from .kernel import (
    DEFAULT_KERNEL_PATTERNS,
    PARITY_CONTRACTS,
    ParityContract,
    is_kernel_path,
    numeric_findings,
    parity_findings,
)
from .model import (
    AttrWrite,
    BufferEscape,
    BufferRebind,
    BufferReturn,
    BufferWrite,
    CallArgBuffers,
    FunctionSummary,
    ModuleInfo,
    OutCall,
)
from .provenance import (
    ClassBufferFacts,
    class_buffer_facts,
    provenance_findings,
    resolve_buffer_root,
)
from .summarize import summarize_module

__all__ = [
    "AttrWrite",
    "BufferEscape",
    "BufferRebind",
    "BufferReturn",
    "BufferWrite",
    "CallArgBuffers",
    "ClassBufferFacts",
    "OutCall",
    "DEFAULT_CACHE_PATH",
    "DEFAULT_KERNEL_PATTERNS",
    "DEFAULT_ROOT_PATTERNS",
    "FlowReport",
    "FunctionSummary",
    "ModuleIndex",
    "ModuleInfo",
    "PARITY_CONTRACTS",
    "ParityContract",
    "SummaryCache",
    "analyze_paths",
    "analyzer_version",
    "build_call_graph",
    "class_buffer_facts",
    "is_kernel_path",
    "numeric_findings",
    "parity_findings",
    "provenance_findings",
    "resolve_buffer_root",
    "summarize_module",
]
