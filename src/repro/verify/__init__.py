"""Static-analysis and verification layer.

Two mechanically-checkable guarantees back this reproduction:

- the **invariant auditor** (:mod:`repro.verify.auditor`) replays recorded
  traces against the paper's model invariants — conservative allocation,
  greedy non-idling, exact ``A(q)`` accounting, DAG precedence, the
  A-Control recurrence, DEQ fairness, and the Theorem 3/4 bounds — and
  reports structured violations;
- the **lint pass** (:mod:`repro.verify.lint`) enforces repo-specific
  determinism rules (no unseeded randomness, no float equality, no
  hash-order iteration, ``__all__`` consistency) over the source tree;
- the **flow analysis** (:mod:`repro.verify.flow`) proves the fan-out
  determinism contract interprocedurally: it builds a call graph from the
  worker-dispatched entry points and checks every reachable function for
  purity, explicit seed flow, ordered iteration, and picklable pool
  payloads (rules ``ABG2xx``, ``python -m repro lint --deep``).

See docs/ARCHITECTURE.md ("Verification layer") for the invariant-to-theorem
map, and CONTRIBUTING.md for how to run both locally.

All exports resolve lazily: the engines import
:mod:`repro.verify.violations` for their strict mode, so this package
``__init__`` must not (transitively) import the engines back, and
``python -m repro.verify.lint`` must not import the audit stack at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .auditor import (
        TraceExpectations,
        audit_dag_schedule,
        audit_multi_result,
        audit_trace,
    )
    from .findings import exit_code, findings_payload, render_findings
    from .flow import FlowReport, analyze_paths
    from .lint import LintFinding, check_file, check_source, lint_paths
    from .scenarios import (
        AuditScenario,
        audit_scenarios,
        format_suite,
        run_audit_suite,
    )
    from .violations import AuditReport, InvariantError, Violation, merge_reports

__all__ = [
    "AuditReport",
    "AuditScenario",
    "FlowReport",
    "InvariantError",
    "LintFinding",
    "TraceExpectations",
    "Violation",
    "analyze_paths",
    "audit_dag_schedule",
    "audit_multi_result",
    "audit_scenarios",
    "audit_trace",
    "check_file",
    "check_source",
    "exit_code",
    "findings_payload",
    "format_suite",
    "lint_paths",
    "merge_reports",
    "render_findings",
    "run_audit_suite",
]

_EXPORT_MODULE = {
    "AuditReport": "violations",
    "InvariantError": "violations",
    "Violation": "violations",
    "merge_reports": "violations",
    "TraceExpectations": "auditor",
    "audit_dag_schedule": "auditor",
    "audit_multi_result": "auditor",
    "audit_trace": "auditor",
    "AuditScenario": "scenarios",
    "audit_scenarios": "scenarios",
    "format_suite": "scenarios",
    "run_audit_suite": "scenarios",
    "LintFinding": "lint",
    "check_file": "lint",
    "check_source": "lint",
    "lint_paths": "lint",
    "exit_code": "findings",
    "findings_payload": "findings",
    "render_findings": "findings",
    "FlowReport": "flow",
    "analyze_paths": "flow",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORT_MODULE.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)


def __dir__() -> list[str]:
    return sorted(__all__)
