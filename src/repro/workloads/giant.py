"""Giant-scale hierarchical workloads: thousands of jobs, P in the tens of
thousands.

The shape is engineered so sharded execution has something real to win:
group 0 holds *churners* — jobs alternating between a narrow and a wide
phase every few hundred levels, so every quantum crosses a phase boundary,
the batched kernel can never certify a superstep for them, and the group
executes quantum by quantum.  Every other group holds long single-phase
*stable* jobs whose A-Control requests reach their bitwise fixed point
within a few quanta, after which whole windows collapse into supersteps.

Under the flat loop one churning group pins the entire machine to
per-quantum execution (a machine-wide superstep needs *every* slot at a
fixed point).  Under sharded execution the stable groups fast-forward
their windows independently while only group 0 pays the per-quantum cost —
the core-count-independent speedup the giant bench scenario measures.

Job ids are assigned so membership is predictable: admission fills groups
round-robin in sorted-id order (equal budgets, ties to the lowest index),
so jobs ``id % groups == 0`` land in group 0 — exactly the churners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..allocators.hierarchical import HierarchicalAllocator
from ..core.abg import AControl
from ..engine.phased import PhasedJob
from ..sim.jobs import JobSpec

if TYPE_CHECKING:
    from ..sim.multi import MultiJobResult

__all__ = ["GiantRow", "GiantScenario", "artifact_rows", "giant_scenario"]

#: Stable jobs' phase width; group budgets are sized so a full group of
#: these is exactly satisfiable.
_STABLE_WIDTH = 4
#: Churners alternate (narrow, levels) / (wide, levels) phases.  The phase
#: length is just under one quantum's worth of levels, so nearly every
#: quantum crosses a phase boundary (blocking supersteps) while keeping the
#: segment count — and with it the kernel arena each window ships to its
#: worker — small.
_CHURN_NARROW = 3
_CHURN_WIDE = 7
_CHURN_PHASE_LEVELS = 900
#: One churner per this many group-0 slots: a single churner already pins
#: its whole group (and, under the flat loop, the whole machine) to
#: per-quantum execution, so most of group 0 can stay stable jobs.
_CHURN_STRIDE = 4


@dataclass(frozen=True, slots=True)
class GiantScenario:
    """One materialized giant-scale run: the job set plus machine shape."""

    specs: tuple[JobSpec, ...]
    processors: int
    group_size: int
    quantum_length: int
    rebalance_interval: int

    def build_allocator(self) -> HierarchicalAllocator:
        """A fresh allocator for one run (allocators are stateful)."""
        return HierarchicalAllocator(
            self.group_size,
            rebalance_interval=self.rebalance_interval,
            # Effectively disable migration: the giant scenario gates the
            # sharded execution machinery, and a churner migrating into a
            # stable group would change what is being measured from run to
            # run of the *parameterization*, not the code.  Migration
            # correctness is covered by the allocator tests and goldens.
            imbalance_threshold=100.0,
        )


def giant_scenario(
    *,
    groups: int = 32,
    jobs_per_group: int = 128,
    stable_quanta: int = 800,
    quantum_length: int = 1000,
    rebalance_interval: int = 800,
) -> GiantScenario:
    """Materialize the giant workload: ``groups * jobs_per_group`` jobs on
    ``P = groups * jobs_per_group * STABLE_WIDTH + 1`` processors.

    The machine size gives every group ``jobs_per_group * STABLE_WIDTH``
    processors (one group gets the +1), so a full group of stable jobs is
    exactly satisfiable, while the +1 lands in group 0 to keep its DEQ
    waterfall's rotating remainder alive.  ``stable_quanta`` sets how many
    quanta a stable job runs; churners carry the same total level count in
    alternating short phases.  Deterministic and RNG-free.
    """
    if groups < 2:
        raise ValueError("giant scenario needs at least two groups")
    if jobs_per_group < 1:
        raise ValueError("need at least one job per group")
    if stable_quanta < 1:
        raise ValueError("need at least one quantum of work")
    budget = jobs_per_group * _STABLE_WIDTH
    processors = groups * budget + 1
    group_size = -(-processors // groups)  # ceil -> exactly `groups` groups
    policy = AControl(0.2)
    stable_levels = stable_quanta * quantum_length
    churn_pairs = -(-stable_levels // (2 * _CHURN_PHASE_LEVELS))
    churn_phases = [
        (_CHURN_NARROW, _CHURN_PHASE_LEVELS),
        (_CHURN_WIDE, _CHURN_PHASE_LEVELS),
    ] * churn_pairs
    stable_job = PhasedJob([(_STABLE_WIDTH, stable_levels)])
    churn_job = PhasedJob(churn_phases)

    def is_churner(jid: int) -> bool:
        return jid % groups == 0 and (jid // groups) % _CHURN_STRIDE == 0

    specs = tuple(
        JobSpec(
            job=churn_job if is_churner(jid) else stable_job,
            feedback=policy,
            job_id=jid,
        )
        for jid in range(groups * jobs_per_group)
    )
    return GiantScenario(
        specs=specs,
        processors=processors,
        group_size=group_size,
        quantum_length=quantum_length,
        rebalance_interval=rebalance_interval,
    )


@dataclass(frozen=True, slots=True)
class GiantRow:
    """One job's aggregate outcome — a row of the ``repro giant`` artifact."""

    job_id: int
    release_time: int
    completion_time: float
    running_time: float
    total_work: float
    total_waste: float
    records: int


def artifact_rows(result: "MultiJobResult") -> list[GiantRow]:
    """Deterministic per-job rows of a giant run, sorted by job id.

    This is the byte-comparison surface for the sharding identity check in
    CI: the same scenario run at any shard count must produce the identical
    CSV.
    """
    rows: list[GiantRow] = []
    for jid in sorted(result.traces):
        trace = result.traces[jid]
        rows.append(
            GiantRow(
                job_id=jid,
                release_time=trace.release_time,
                completion_time=float(trace.completion_time),
                running_time=float(trace.running_time),
                total_work=float(trace.total_work),
                total_waste=float(trace.total_waste),
                records=len(trace.records),
            )
        )
    return rows
