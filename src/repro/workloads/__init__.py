"""Workload generators: fork-join jobs, multiprogrammed job sets, and
parallelism profiles."""

from .arrivals import (
    poisson_releases,
    staggered_releases,
    trace_releases,
    uniform_releases,
)
from .forkjoin import (
    ForkJoinGenerator,
    constant_parallelism_job,
    fork_join_job,
    ramped_job,
    structural_transition_factor,
)
from .giant import GiantScenario, giant_scenario
from .jobsets import JobSetGenerator, JobSetSample
from .profiles import job_from_profile, profile_of_job, random_profile

__all__ = [
    "poisson_releases",
    "uniform_releases",
    "staggered_releases",
    "trace_releases",
    "ForkJoinGenerator",
    "constant_parallelism_job",
    "fork_join_job",
    "ramped_job",
    "structural_transition_factor",
    "GiantScenario",
    "giant_scenario",
    "JobSetGenerator",
    "JobSetSample",
    "job_from_profile",
    "profile_of_job",
    "random_profile",
]
