"""Fork-join workload generation (paper Section 7.1).

The paper evaluates the schedulers "on data-parallel jobs that have fork-join
structures, which alternate between serial and parallel phases", generating

- different *transition factors* by varying the parallelism of the parallel
  phases, and
- different work / critical-path lengths by varying the lengths of the serial
  and parallel phases.

The exact phase-length distributions are not given in the paper.  We draw
phase lengths uniformly from ranges proportional to the quantum length so
that full quanta fit inside single phases — the regime in which the job's
measured transition factor actually reaches the structural parallelism ratio
(a quantum straddling a phase boundary averages the two phases' parallelism
and softens the transition).  EXPERIMENTS.md records the chosen ranges.
"""

from __future__ import annotations

import numpy as np

from ..engine.phased import Phase, PhasedJob

__all__ = [
    "constant_parallelism_job",
    "fork_join_job",
    "ramped_job",
    "structural_transition_factor",
    "ForkJoinGenerator",
]


def constant_parallelism_job(width: int, levels: int) -> PhasedJob:
    """A single-phase job with constant parallelism ``width`` — the synthetic
    job of Figures 1 and 4."""
    return PhasedJob([Phase(width, levels)])


def fork_join_job(
    widths: list[int] | tuple[int, ...],
    serial_lengths: list[int] | tuple[int, ...],
    parallel_lengths: list[int] | tuple[int, ...],
) -> PhasedJob:
    """Alternate serial and parallel phases: serial[i] then parallel[i] of
    ``widths[i]`` chains, for each iteration ``i``."""
    if not (len(widths) == len(serial_lengths) == len(parallel_lengths)):
        raise ValueError("widths, serial_lengths, parallel_lengths must align")
    phases: list[Phase] = []
    for w, s, k in zip(widths, serial_lengths, parallel_lengths):
        phases.append(Phase(1, s))
        phases.append(Phase(w, k))
    return PhasedJob(phases)


def ramped_job(
    peak_width: int,
    *,
    ramp_factor: float = 2.0,
    levels_per_phase: int = 2000,
    peak_levels: int | None = None,
) -> PhasedJob:
    """A job whose parallelism ramps up geometrically (1, f, f^2, ..., peak)
    and back down — high average parallelism with a *small* transition factor
    of about ``ramp_factor``.

    Fork-join jobs have ``CL`` comparable to their peak width (a serial phase
    sits next to a parallel one), which makes Theorem 3's trim amount
    ``O(CL * Tinf)`` swallow the whole execution.  Ramped jobs are the regime
    where the theorem's nearly-linear-speedup statement is informative, so
    the bound-checking experiments use them.
    """
    if peak_width < 1:
        raise ValueError("peak width must be >= 1")
    if ramp_factor <= 1.0:
        raise ValueError("ramp factor must exceed 1")
    if levels_per_phase < 1:
        raise ValueError("levels per phase must be >= 1")
    up: list[int] = []
    w = 1.0
    while round(w) < peak_width:
        up.append(int(round(w)))
        w *= ramp_factor
    phases = [Phase(width, levels_per_phase) for width in up]
    phases.append(Phase(peak_width, peak_levels or levels_per_phase))
    phases.extend(Phase(width, levels_per_phase) for width in reversed(up))
    return PhasedJob(phases)


def structural_transition_factor(job: PhasedJob) -> float:
    """The worst-case transition factor of a phased job: the maximal
    parallelism ratio between adjacent phases, including the initial
    ``A(0) = 1`` transition.

    This is the ``CL`` a schedule exhibits when full quanta align inside
    phases (footnote 2 of the paper: the transition factor "can usually be
    derived based on the worst case schedule"); the measured value can be
    smaller when quanta straddle phase boundaries.
    """
    widths = [p.width for p in job.phases]
    c = float(widths[0])  # vs A(0) = 1
    for a, b in zip(widths, widths[1:]):
        c = max(c, a / b, b / a)
    return max(c, 1.0)


class ForkJoinGenerator:
    """Random fork-join jobs with a prescribed transition factor.

    Parameters
    ----------
    quantum_length:
        The machine's ``L``; phase-length ranges scale with it.
    iterations:
        Inclusive range for the number of serial+parallel iterations.
    serial_levels:
        Inclusive range of serial-phase lengths, in units of ``L``.
    parallel_levels:
        Inclusive range of parallel-phase lengths (levels), in units of ``L``.
    """

    def __init__(
        self,
        quantum_length: int = 1000,
        *,
        iterations: tuple[int, int] = (3, 6),
        serial_levels: tuple[float, float] = (1.5, 3.0),
        parallel_levels: tuple[float, float] = (1.5, 3.0),
    ):
        if quantum_length < 1:
            raise ValueError("quantum length must be >= 1")
        if iterations[0] < 1 or iterations[0] > iterations[1]:
            raise ValueError("invalid iterations range")
        for lo, hi in (serial_levels, parallel_levels):
            if lo <= 0 or lo > hi:
                raise ValueError("phase-length ranges must be positive and ordered")
        self.quantum_length = int(quantum_length)
        self.iterations = iterations
        self.serial_levels = serial_levels
        self.parallel_levels = parallel_levels

    def generate(self, rng: np.random.Generator, transition_factor: int) -> PhasedJob:
        """One random job whose parallel phases have ``transition_factor``
        chains (so its structural transition factor equals it)."""
        if transition_factor < 1:
            raise ValueError("transition factor must be >= 1")
        L = self.quantum_length
        iters = int(rng.integers(self.iterations[0], self.iterations[1] + 1))
        widths = [int(transition_factor)] * iters
        serial = [
            int(rng.integers(round(self.serial_levels[0] * L), round(self.serial_levels[1] * L) + 1))
            for _ in range(iters)
        ]
        parallel = [
            int(
                rng.integers(
                    round(self.parallel_levels[0] * L), round(self.parallel_levels[1] * L) + 1
                )
            )
            for _ in range(iters)
        ]
        return fork_join_job(widths, serial, parallel)

    def generate_batch(  # abg: allow[ABG304] reason=convenience loop over generate(), not a scalar/batched kernel twin
        self, rng: np.random.Generator, transition_factor: int, count: int
    ) -> list[PhasedJob]:
        return [self.generate(rng, transition_factor) for _ in range(count)]
