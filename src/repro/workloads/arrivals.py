"""Arrival processes — release times for the arbitrary-release experiments.

Theorem 5's makespan bound holds "for any set of jobs with arbitrary release
times"; the batched restriction applies only to the mean-response-time
bound.  These generators produce release schedules for the open-system
variants of the Figure 6 experiment.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "poisson_releases",
    "uniform_releases",
    "staggered_releases",
    "trace_releases",
]


def poisson_releases(
    rng: np.random.Generator, count: int, mean_interarrival: float
) -> list[int]:
    """Poisson process: exponential inter-arrival times, first job at 0."""
    if count < 1:
        raise ValueError("need at least one job")
    if not math.isfinite(mean_interarrival) or mean_interarrival <= 0:
        raise ValueError(
            f"mean inter-arrival must be a positive finite number, "
            f"got {mean_interarrival!r}"
        )
    gaps = rng.exponential(mean_interarrival, size=count - 1)
    times = np.concatenate([[0.0], np.cumsum(gaps)])
    return [int(round(t)) for t in times]


def uniform_releases(
    rng: np.random.Generator, count: int, horizon: int
) -> list[int]:
    """Release times uniform over ``[0, horizon]`` (first job forced to 0 so
    the system is never trivially empty at the start)."""
    if count < 1:
        raise ValueError("need at least one job")
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    times = sorted(int(rng.integers(0, horizon + 1)) for _ in range(count))
    times[0] = 0
    return times


def staggered_releases(count: int, gap: int) -> list[int]:
    """Deterministic arithmetic arrivals: 0, gap, 2*gap, ..."""
    if count < 1:
        raise ValueError("need at least one job")
    if gap < 0:
        raise ValueError("gap must be non-negative")
    return [i * gap for i in range(count)]


def trace_releases(trace: Sequence[float]) -> list[int]:
    """Release times replayed from a recorded arrival trace.

    The trace must be non-negative and nondecreasing; times are rounded to
    integer quanta and shifted so the first job releases at 0 (the
    open-system experiments measure everything relative to the first
    arrival, matching the other generators).
    """
    if len(trace) == 0:
        raise ValueError("trace contains no release times")
    times: list[int] = []
    for i, raw in enumerate(trace):
        try:
            value = float(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"trace[{i}] must be a number, got {raw!r}"
            ) from None
        if not math.isfinite(value):
            raise ValueError(f"trace[{i}] must be finite, got {value!r}")
        if value < 0:
            raise ValueError(
                f"trace[{i}] must be non-negative, got {value!r}"
            )
        times.append(int(round(value)))
    for i, (a, b) in enumerate(zip(times, times[1:]), start=1):
        if b < a:
            raise ValueError(
                f"trace release times must be nondecreasing, but "
                f"trace[{i}] ({b}) < trace[{i - 1}] ({a})"
            )
    base = times[0]
    return [t - base for t in times]
