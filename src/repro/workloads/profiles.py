"""Parallelism-profile utilities.

A *parallelism profile* is the per-level width sequence of a job.  Profiles
round-trip with :class:`~repro.engine.phased.PhasedJob` (consecutive equal
widths collapse into phases; note the phased model inserts a barrier at every
width change, which is exactly the fork-join reading of a profile), and a
profile can be replayed from any recorded trace of level widths — e.g. a
downstream user's measured application profile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.phased import Phase, PhasedJob

__all__ = ["job_from_profile", "profile_of_job", "random_profile"]


def job_from_profile(widths: Sequence[int]) -> PhasedJob:
    """Build a phased job from a per-level width sequence.

    Runs of equal width become single phases; every width change is a
    barrier (fork/join) — the canonical dag realization of a measured
    parallelism profile.
    """
    if not widths:
        raise ValueError("profile must contain at least one level")
    phases: list[Phase] = []
    run_width = int(widths[0])
    run_len = 0
    for w in widths:
        w = int(w)
        if w < 1:
            raise ValueError("profile widths must be >= 1")
        if w == run_width:
            run_len += 1
        else:
            phases.append(Phase(run_width, run_len))
            run_width, run_len = w, 1
    phases.append(Phase(run_width, run_len))
    return PhasedJob(phases)


def profile_of_job(job: PhasedJob) -> list[int]:
    """Inverse of :func:`job_from_profile` (up to phase-run merging)."""
    return job.parallelism_profile()


def random_profile(
    rng: np.random.Generator,
    num_segments: int,
    *,
    segment_levels: tuple[int, int] = (100, 1000),
    widths: tuple[int, int] = (1, 64),
) -> list[int]:
    """A random piecewise-constant profile: ``num_segments`` runs of uniform
    width — handy for stress-testing feedback policies on irregular jobs."""
    if num_segments < 1:
        raise ValueError("need at least one segment")
    if not (1 <= widths[0] <= widths[1]):
        raise ValueError("invalid width range")
    if not (1 <= segment_levels[0] <= segment_levels[1]):
        raise ValueError("invalid segment-length range")
    out: list[int] = []
    for _ in range(num_segments):
        w = int(rng.integers(widths[0], widths[1] + 1))
        n = int(rng.integers(segment_levels[0], segment_levels[1] + 1))
        out.extend([w] * n)
    return out
