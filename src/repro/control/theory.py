"""Closed-form statements of Theorem 1 and helpers to verify them.

Theorem 1: with controller gain ``K = (1 - r) * A`` for ``r in [0, 1)`` and a
job of constant average parallelism ``A``, the processor requests satisfy

1. BIBO stability              (pole ``p0 = r``, ``|r| < 1``),
2. zero steady-state error     (dc gain 1),
3. zero overshoot              (monotone geometric approach from below when
                                ``d(1) <= A``),
4. convergence rate exactly ``r`` (``|d(q+1)-A| = r * |d(q)-A|``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lti import FirstOrderLoop

__all__ = ["theorem1_gain", "theorem1_loop", "Theorem1Verdict", "verify_theorem1"]


def theorem1_gain(parallelism: float, convergence_rate: float) -> float:
    """``K = (1 - r) * A`` — the pole-placement gain of Theorem 1."""
    if parallelism <= 0:
        raise ValueError("parallelism must be positive")
    if not (0.0 <= convergence_rate < 1.0):
        raise ValueError("convergence rate must lie in [0, 1)")
    return (1.0 - convergence_rate) * parallelism


def theorem1_loop(parallelism: float, convergence_rate: float) -> FirstOrderLoop:
    """The closed loop Theorem 1 analyzes, with its pole placed at ``r``."""
    return FirstOrderLoop(
        parallelism=parallelism,
        gain=theorem1_gain(parallelism, convergence_rate),
    )


@dataclass(frozen=True, slots=True)
class Theorem1Verdict:
    """Outcome of numerically verifying Theorem 1's four properties."""

    bibo_stable: bool
    zero_steady_state_error: bool
    zero_overshoot: bool
    convergence_rate_matches: bool
    measured_rate: float

    @property
    def holds(self) -> bool:
        return (
            self.bibo_stable
            and self.zero_steady_state_error
            and self.zero_overshoot
            and self.convergence_rate_matches
        )


def verify_theorem1(
    parallelism: float,
    convergence_rate: float,
    *,
    num_quanta: int = 64,
    d1: float = 1.0,
    atol: float = 1e-9,
) -> Theorem1Verdict:
    """Numerically check Theorem 1 on the analytic request sequence."""
    loop = theorem1_loop(parallelism, convergence_rate)
    d = loop.request_response(num_quanta, d1=d1)
    err = np.abs(d - parallelism)

    bibo = loop.is_bibo_stable and bool(np.all(np.isfinite(d)))
    # steady-state error: the error must vanish geometrically
    zero_sse = bool(err[-1] <= max(atol, err[0] * convergence_rate ** (num_quanta - 1) + atol))
    # overshoot: starting below A, the request must never exceed A
    zero_overshoot = bool(np.all(d <= parallelism + atol)) if d1 <= parallelism else True
    # rate: adjacent error ratio equals r exactly (until the error is so
    # small that float rounding dominates the ratio)
    meaningful = err[:-1] > max(atol, 1e-9 * parallelism)
    if np.any(meaningful):
        ratios = err[1:][meaningful] / err[:-1][meaningful]
        measured = float(ratios.mean())
        rate_ok = bool(np.allclose(ratios, convergence_rate, atol=1e-5))
    else:
        measured = convergence_rate
        rate_ok = True
    return Theorem1Verdict(
        bibo_stable=bibo,
        zero_steady_state_error=zero_sse,
        zero_overshoot=zero_overshoot,
        convergence_rate_matches=rate_ok,
        measured_rate=measured,
    )
