"""Discrete-time first-order closed-loop model of ABG (paper Section 4).

With a job of constant average parallelism ``A``, ABG's loop (Figure 3)
consists of the integral controller ``G(z) = K / (z - 1)`` and the B-Greedy
"plant" ``S(z) = 1 / A``, closing to the first-order system

    T(z) = Y(z)/R(z) = (K/A) / (z - (1 - K/A)),

a single pole at ``p0 = 1 - K/A``.  This module gives the closed loop both as
a transfer-function object (pole, dc gain, impulse/step responses) and as the
time-domain recurrence actually executed, so the control-theoretic analysis
in :mod:`repro.control.analysis` can be checked against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FirstOrderLoop", "step_response_of_requests"]


@dataclass(frozen=True, slots=True)
class FirstOrderLoop:
    """ABG's closed loop for a constant-parallelism job.

    Parameters
    ----------
    parallelism:
        The job's constant average parallelism ``A > 0``.
    gain:
        The controller gain ``K``; Theorem 1 sets ``K = (1 - r) * A``.
    """

    parallelism: float
    gain: float

    def __post_init__(self) -> None:
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")

    # -- z-domain quantities ------------------------------------------------

    @property
    def pole(self) -> float:
        """``p0 = 1 - K/A``; the system is BIBO stable iff ``|p0| < 1``."""
        return 1.0 - self.gain / self.parallelism

    @property
    def is_bibo_stable(self) -> bool:
        return abs(self.pole) < 1.0

    @property
    def dc_gain(self) -> float:
        """Steady-state output for a unit-step reference, ``T(1)``.

        For the stable loop this is always 1 (zero steady-state error): the
        request converges to the parallelism."""
        denom = 1.0 - self.pole
        # The dc gain is genuinely infinite only at an exactly-unit pole
        # (gain == 0); a near-unit pole has a finite, meaningful dc gain.
        if denom == 0.0:  # noqa: ABG102
            return float("inf")
        return (self.gain / self.parallelism) / denom

    def transfer(self, z: complex) -> complex:
        """Evaluate ``T(z)``."""
        return (self.gain / self.parallelism) / (z - self.pole)

    # -- time domain ---------------------------------------------------------

    def request_response(self, num_quanta: int, d1: float = 1.0) -> np.ndarray:
        """The request sequence ``d(1..n)`` under the control law
        ``d(q+1) = d(q) + K * (1 - d(q)/A)`` from initial request ``d1``.

        This is the closed-form geometric approach to ``A``:
        ``d(q) = A + p0^(q-1) * (d1 - A)``.
        """
        if num_quanta < 1:
            raise ValueError("need at least one quantum")
        q = np.arange(num_quanta, dtype=np.float64)
        return self.parallelism + (self.pole**q) * (d1 - self.parallelism)

    def output_step_response(self, num_quanta: int, d1: float = 1.0) -> np.ndarray:
        """Normalized output ``y(q) = d(q)/A`` for the unit-step reference."""
        return self.request_response(num_quanta, d1) / self.parallelism

    def simulate_requests(self, num_quanta: int, d1: float = 1.0) -> np.ndarray:
        """Same sequence computed by literally iterating the recurrence —
        used in tests to confirm the closed form."""
        if num_quanta < 1:
            raise ValueError("need at least one quantum")
        out = np.empty(num_quanta, dtype=np.float64)
        d = float(d1)
        for i in range(num_quanta):
            out[i] = d
            d = d + self.gain * (1.0 - d / self.parallelism)
        return out


def step_response_of_requests(requests: np.ndarray, parallelism: float) -> np.ndarray:
    """Convert a measured request series into the loop's normalized output
    ``y = d / A`` so simulation traces can be scored with the same metrics as
    analytic responses."""
    if parallelism <= 0:
        raise ValueError("parallelism must be positive")
    return np.asarray(requests, dtype=np.float64) / parallelism
