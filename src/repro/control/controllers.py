"""Alternative request controllers — why A-Control's *adaptive* gain matters.

A-Control is a self-tuning regulator: the integral gain is re-placed every
quantum at ``K(q) = (1-r) * A(q-1)`` (Theorem 1).  A natural question the
paper leaves implicit: what if the gain were fixed, tuned once for an
expected parallelism ``A0``?

The closed loop for actual parallelism ``A`` has pole ``p0 = 1 - K/A``:

- ``A = A0``: pole at ``r`` — behaves exactly like ABG;
- ``A >> A0``: pole near 1 — stable but *sluggish* (the controller barely
  reacts, requests crawl toward the parallelism);
- ``A << A0``: ``K/A > 1 - r``; once ``K/A > 2`` the pole leaves the unit
  circle and the request *oscillates divergently* (clamped in practice by
  the 1-processor floor and the machine size, i.e. a bang-bang limit
  cycle far worse than A-Greedy's).

:class:`FixedGainIntegral` implements that controller as a
:class:`~repro.core.feedback.FeedbackPolicy`; the controller-comparison
experiment quantifies all three regimes against A-Control.
"""

from __future__ import annotations

import numpy as np

from ..core.feedback import FeedbackPolicy
from ..core.types import QuantumRecord

__all__ = ["FixedGainIntegral", "tuned_gain"]


def tuned_gain(expected_parallelism: float, convergence_rate: float = 0.2) -> float:
    """The gain a designer would pick for an expected parallelism ``A0``
    using Theorem 1's placement: ``K = (1 - r) * A0``."""
    if expected_parallelism <= 0:
        raise ValueError("expected parallelism must be positive")
    if not (0.0 <= convergence_rate < 1.0):
        raise ValueError("convergence rate must lie in [0, 1)")
    return (1.0 - convergence_rate) * expected_parallelism


class FixedGainIntegral(FeedbackPolicy):
    """Integral controller with a constant gain (no self-tuning).

    Implements ``d(q+1) = d(q) + K * (1 - d(q) / A(q))`` with fixed ``K`` —
    the same control law as A-Control but without the per-quantum gain
    reset.  Requests are clamped to ``[1, request_cap]`` (real controllers
    saturate at the machine size instead of diverging to infinity).
    """

    def __init__(self, gain: float, *, request_cap: float = 1e6):
        if gain <= 0:
            raise ValueError("gain must be positive")
        if request_cap < 1:
            raise ValueError("request cap must be at least 1")
        self.gain = float(gain)
        self.request_cap = float(request_cap)
        self.name = f"FixedGain(K={self.gain:g})"

    def next_request(self, prev: QuantumRecord) -> float:
        a_prev = prev.avg_parallelism
        if a_prev <= 0.0:
            return prev.request
        error = 1.0 - prev.request / a_prev
        d = prev.request + self.gain * error
        return min(self.request_cap, max(1.0, d))

    def next_request_batch(
        self,
        *,
        request: np.ndarray,
        request_int: np.ndarray,
        allotment: np.ndarray,
        work: np.ndarray,
        span: np.ndarray,
        steps: np.ndarray,
    ) -> np.ndarray | None:
        # Elementwise transcription of next_request: A(q) = T1/Tinf (0 for
        # an empty quantum), hold on A <= 0, else the fixed-gain recurrence
        # clamped to [1, request_cap].  The same IEEE-754 operations run in
        # the same order as the scalar path, so results are bit-identical;
        # held lanes divide by a dummy 1.0 and are discarded by the where.
        a_prev = np.divide(
            work, span, out=np.zeros_like(span, dtype=np.float64), where=span > 0
        )
        hold = a_prev <= 0.0
        safe = np.where(hold, 1.0, a_prev)
        d = request + self.gain * (1.0 - request / safe)
        return np.where(
            hold, request, np.minimum(self.request_cap, np.maximum(1.0, d))
        )

    def closed_loop_pole(self, parallelism: float) -> float:
        """Pole of the loop this controller closes around parallelism ``A``."""
        if parallelism <= 0:
            raise ValueError("parallelism must be positive")
        return 1.0 - self.gain / parallelism

    def is_stable_for(self, parallelism: float) -> bool:
        return abs(self.closed_loop_pole(parallelism)) < 1.0
