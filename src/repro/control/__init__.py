"""Control-theoretic model and metrics (paper Section 4 / Theorem 1)."""

from .analysis import ResponseMetrics, analyze_response
from .controllers import FixedGainIntegral, tuned_gain
from .limit_cycle import AGreedyLimitCycle, agreedy_limit_cycle, iterate_agreedy_requests
from .lti import FirstOrderLoop, step_response_of_requests
from .theory import Theorem1Verdict, theorem1_gain, theorem1_loop, verify_theorem1

__all__ = [
    "FirstOrderLoop",
    "FixedGainIntegral",
    "tuned_gain",
    "step_response_of_requests",
    "AGreedyLimitCycle",
    "agreedy_limit_cycle",
    "iterate_agreedy_requests",
    "ResponseMetrics",
    "analyze_response",
    "theorem1_gain",
    "theorem1_loop",
    "verify_theorem1",
    "Theorem1Verdict",
]
