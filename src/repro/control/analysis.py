"""Transient/steady-state metrics for request sequences (paper Section 4).

The four criteria the paper scores adaptive schedulers on, computed on any
request series (analytic or simulated) against a constant target parallelism:

- **BIBO stability** — bounded reference implies bounded request.
- **Steady-state error** — ``|d(q) - A|`` after sufficiently long time.
- **Maximum overshoot** — max of ``d(q) - d_ss`` over the transient.
- **Convergence rate** — ``r = |d(q+1) - A| / |d(q) - A)|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ResponseMetrics", "analyze_response"]


@dataclass(frozen=True, slots=True)
class ResponseMetrics:
    """Scores of one request sequence against a constant parallelism target."""

    bounded: bool
    """Whether the series stays within a reasonable multiple of the target
    (empirical BIBO check)."""

    steady_state_error: float
    """``|mean of the tail - target|``."""

    overshoot: float
    """``max(0, max(d) - steady state)`` — 0 when the request never exceeds
    its settling value."""

    convergence_rate: float
    """Mean observed ratio ``|d(q+1)-A| / |d(q)-A|`` over the transient
    (NaN if the series starts at the target)."""

    settling_quanta: int
    """First index from which the request stays within ``tolerance`` of the
    target (len(series) if it never settles)."""

    oscillation_amplitude: float
    """Peak-to-peak amplitude over the tail — the instability signature of
    A-Greedy (0 for a converged series)."""


def analyze_response(
    requests: np.ndarray | list[float],
    target: float,
    *,
    tolerance: float = 0.05,
    tail_fraction: float = 0.5,
    bound_factor: float = 100.0,
) -> ResponseMetrics:
    """Score a request series against a constant-parallelism target.

    Parameters
    ----------
    requests:
        The request sequence ``d(1..n)``; needs at least two entries.
    target:
        The job's constant average parallelism ``A``.
    tolerance:
        Relative band around the target that counts as settled.
    tail_fraction:
        Fraction of the series (from the end) treated as steady state.
    bound_factor:
        Empirical BIBO bound: the series counts as bounded if it never
        exceeds ``bound_factor * max(target, d(1))``.
    """
    d = np.asarray(requests, dtype=np.float64)
    if d.ndim != 1 or d.size < 2:
        raise ValueError("need a 1-D request series with at least two quanta")
    if target <= 0:
        raise ValueError("target parallelism must be positive")
    if not (0 < tail_fraction <= 1):
        raise ValueError("tail_fraction must lie in (0, 1]")

    bound = bound_factor * max(target, abs(d[0]))
    bounded = bool(np.all(np.abs(d) <= bound))

    tail_start = max(1, int(np.ceil(d.size * (1 - tail_fraction))))
    tail = d[tail_start:] if tail_start < d.size else d[-1:]
    steady_state = float(tail.mean())
    sse = abs(steady_state - target)

    overshoot = max(0.0, float(d.max()) - steady_state)

    err = np.abs(d - target)
    # Observed convergence rate over the transient: geometric mean of
    # adjacent error ratios while the error is still meaningful.
    meaningful = err[:-1] > tolerance * target
    ratios = err[1:][meaningful] / err[:-1][meaningful]
    if ratios.size:
        positive = ratios[ratios > 0]
        convergence = float(np.exp(np.mean(np.log(positive)))) if positive.size else 0.0
    else:
        convergence = float("nan")

    within = err <= tolerance * target
    settling = int(d.size)
    for i in range(d.size):
        if np.all(within[i:]):
            settling = i
            break

    oscillation = float(tail.max() - tail.min())

    return ResponseMetrics(
        bounded=bounded,
        steady_state_error=sse,
        overshoot=overshoot,
        convergence_rate=convergence,
        settling_quanta=settling,
        oscillation_amplitude=oscillation,
    )
