"""Limit-cycle analysis of A-Greedy's request dynamics.

A-Greedy's request law on a constant-parallelism job is a piecewise
multiplicative map.  Let the job's parallelism be ``A``, the responsiveness
``rho`` and the utilization threshold ``delta``.  On an unconstrained
machine a request ``d <= A`` uses every allotted cycle (utilization 1 >=
delta) and is satisfied, so it multiplies to ``rho * d``; a request
``d > A / delta`` achieves utilization ``A/d < delta`` and divides to
``d / rho``.  Requests in between (``A < d <= A/delta``) are still efficient
and keep multiplying.

Iterating from ``d(1) = 1`` therefore climbs the ``rho``-powers until it
crosses the inefficiency boundary, then falls back — and because crossing
down by one ``rho`` division always re-enters the efficient region, the map
settles into a period-2 orbit.  This module computes that orbit in closed
form, quantifying Figure 1/4(b) analytically (the instability ABG's
Theorem 1 eliminates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AGreedyLimitCycle", "agreedy_limit_cycle", "iterate_agreedy_requests"]


@dataclass(frozen=True, slots=True)
class AGreedyLimitCycle:
    """The period-2 orbit of A-Greedy's request map on constant parallelism."""

    low: float
    high: float
    onset_quantum: int
    """First quantum index (1-based) at which the orbit is entered."""

    @property
    def amplitude(self) -> float:
        return self.high - self.low

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def steady_state_gap(self, parallelism: float) -> float:
        """Worst-case distance of the orbit from the target parallelism —
        A-Greedy's irreducible steady-state error."""
        return max(abs(self.high - parallelism), abs(self.low - parallelism))


def iterate_agreedy_requests(
    parallelism: float,
    num_quanta: int,
    *,
    responsiveness: float = 2.0,
    utilization_threshold: float = 0.8,
    d1: float = 1.0,
) -> list[float]:
    """Iterate the unconstrained-machine request map ``d -> rho*d`` while
    efficient (``A/d >= delta``, including ``d <= A`` where utilization is
    1), ``d -> d/rho`` once inefficient."""
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if num_quanta < 1:
        raise ValueError("need at least one quantum")
    rho, delta = responsiveness, utilization_threshold
    out = []
    d = float(d1)
    for _ in range(num_quanta):
        out.append(d)
        utilization = min(1.0, parallelism / d)
        if utilization < delta:
            d = max(1.0, d / rho)
        else:
            d = d * rho
    return out


def agreedy_limit_cycle(
    parallelism: float,
    *,
    responsiveness: float = 2.0,
    utilization_threshold: float = 0.8,
    d1: float = 1.0,
) -> AGreedyLimitCycle:
    """Closed-form period-2 orbit of the map started at ``d1``.

    Starting from ``d1`` the request multiplies by ``rho`` each quantum
    until it first exceeds ``A / delta``; call that value ``high = d1 *
    rho**k`` with the smallest such ``k``.  From there the orbit alternates
    ``high -> high/rho -> high -> ...`` provided ``high / rho`` is efficient,
    which holds because ``high / rho <= A/delta`` by minimality of ``k``.

    Degenerate case: if ``rho * d1`` is never inefficient the map has no
    finite orbit (cannot happen for finite ``A``).
    """
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    rho, delta = responsiveness, utilization_threshold
    boundary = parallelism / delta  # requests strictly above this halve
    # smallest k with d1 * rho**k > boundary
    k = max(0, math.floor(math.log(boundary / d1, rho)) + 1)
    high = d1 * rho**k
    # guard against float edge: ensure strictly inefficient
    while min(1.0, parallelism / high) >= delta:
        k += 1
        high = d1 * rho**k
    low = high / rho
    return AGreedyLimitCycle(low=low, high=high, onset_quantum=k + 1)
