"""Tabular export of experiment results (CSV / JSON).

File writes go through :func:`repro.runtime.write_atomic`, so an exported
artifact is never observable half-written.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from pathlib import Path
from typing import Any, Sequence

from ..runtime import write_atomic

__all__ = ["rows_to_csv", "rows_to_json", "write_csv", "write_json"]


def _record_of(row: Any) -> dict[str, Any]:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return dict(row)
    raise TypeError(f"cannot export row of type {type(row).__name__}")


def rows_to_csv(rows: Sequence[Any]) -> str:
    """Render experiment rows (dataclasses or dicts) as CSV text."""
    if not rows:
        raise ValueError("no rows to export")
    records = [_record_of(r) for r in rows]
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(records[0].keys()))
    writer.writeheader()
    writer.writerows(records)
    return buf.getvalue()


def rows_to_json(rows: Sequence[Any], *, indent: int = 2) -> str:
    if not rows:
        raise ValueError("no rows to export")
    return json.dumps([_record_of(r) for r in rows], indent=indent)


def write_csv(rows: Sequence[Any], path: str | Path) -> Path:
    return write_atomic(path, rows_to_csv(rows))


def write_json(rows: Sequence[Any], path: str | Path) -> Path:
    return write_atomic(path, rows_to_json(rows))
