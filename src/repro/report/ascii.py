"""ASCII rendering of the paper's figures.

The benchmark harness and CLI regenerate figures as *data*; these helpers
draw them in a terminal so the shapes (who wins, where the crossover falls)
are visible without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["sparkline", "line_chart", "bar_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character sketch of a series."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("empty series")
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _BLOCKS[0] * len(vals)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int(round((v - lo) * scale))] for v in vals)


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi == lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(frac * (cells - 1)))))


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more (x, y) series on a shared ASCII grid.

    Each series gets a marker character (``*``, ``o``, ``+``, ...); axis
    ranges cover all series.  Intended for the coarse shapes of Figures 5
    and 6, not pixel fidelity.
    """
    if not series:
        raise ValueError("no series to plot")
    markers = "*o+x#@%&"
    if len(series) > len(markers):
        raise ValueError(f"at most {len(markers)} series per chart")
    points = [(name, list(pts)) for name, pts in series.items()]
    all_pts = [p for _, pts in points for p in pts]
    if not all_pts:
        raise ValueError("series contain no points")
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(points, markers):
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(f"{'':10}  {x_lo:<10.3g}{x_label:^{max(0, width - 20)}}{x_hi:>10.3g}")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(points, markers)
    )
    lines.append(f"{'':12}{legend}   [y: {y_label}]")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bars, one per label (for ablation tables)."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must align and be non-empty")
    vmax = max(values)
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "█" * (int(round(value / vmax * width)) if vmax > 0 else 0)
        lines.append(f"{label:<{label_w}}  {bar} {value:.3g}")
    return "\n".join(lines)
