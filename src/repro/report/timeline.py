"""Allotment timeline rendering.

Draws a job's execution as a quantum-by-quantum strip: processor request,
allotment, and measured parallelism — the picture behind Figures 1 and 4,
for any trace.
"""

from __future__ import annotations

from ..core.types import JobTrace
from .ascii import sparkline

__all__ = ["timeline", "allotment_strip"]


def allotment_strip(trace: JobTrace, *, max_quanta: int = 60) -> str:
    """One sparkline row each for request, allotment, and parallelism."""
    recs = trace.records[:max_quanta]
    if not recs:
        raise ValueError("empty trace")
    rows = [
        ("request d(q)", [r.request for r in recs]),
        ("allotment a(q)", [float(r.allotment) for r in recs]),
        ("parallelism A(q)", [r.avg_parallelism for r in recs]),
    ]
    label_w = max(len(name) for name, _ in rows)
    lines = []
    for name, series in rows:
        lines.append(
            f"{name:<{label_w}}  {sparkline(series)}"
            f"  [{min(series):.3g}, {max(series):.3g}]"
        )
    if len(trace.records) > max_quanta:
        lines.append(f"({len(trace.records) - max_quanta} more quanta not shown)")
    return "\n".join(lines)


def timeline(trace: JobTrace, *, max_quanta: int = 30) -> str:
    """A per-quantum table with a proportional allotment bar — a compact
    Gantt-style view of how the scheduler tracked the job."""
    recs = trace.records[:max_quanta]
    if not recs:
        raise ValueError("empty trace")
    peak = max(max(r.allotment for r in recs), 1)
    scale = min(1.0, 40.0 / peak)
    lines = [
        f"{'q':>4} {'d(q)':>8} {'a(q)':>5} {'A(q)':>8} {'waste':>8}  allotment"
    ]
    for r in recs:
        bar = "█" * max(1, int(round(r.allotment * scale)))
        lines.append(
            f"{r.index:>4} {r.request:>8.2f} {r.allotment:>5} "
            f"{r.avg_parallelism:>8.2f} {r.waste:>8}  {bar}"
        )
    if len(trace.records) > max_quanta:
        lines.append(f"... ({len(trace.records) - max_quanta} more quanta)")
    return "\n".join(lines)
