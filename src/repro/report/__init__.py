"""Reporting: ASCII figure rendering and CSV/JSON export of experiment
tables."""

from .ascii import bar_chart, line_chart, sparkline
from .export import rows_to_csv, rows_to_json, write_csv, write_json
from .timeline import allotment_strip, timeline

__all__ = [
    "sparkline",
    "line_chart",
    "bar_chart",
    "rows_to_csv",
    "rows_to_json",
    "write_csv",
    "write_json",
    "timeline",
    "allotment_strip",
]
