"""Two-level scheduling simulators and performance metrics."""

from .jobs import ExecutorFactory, JobDescription, JobSpec, make_executor
from .metrics import (
    job_set_load,
    makespan,
    makespan_lower_bound,
    mean_response_time,
    mean_response_time_lower_bound,
)
from .multi import MultiJobResult, simulate_job_set
from .results import SeriesStats, geometric_mean, summarize
from .stats import ConfidenceInterval, bootstrap_ci, ratio_ci
from .single import simulate_job

__all__ = [
    "JobDescription",
    "ExecutorFactory",
    "JobSpec",
    "make_executor",
    "simulate_job",
    "simulate_job_set",
    "MultiJobResult",
    "makespan",
    "mean_response_time",
    "makespan_lower_bound",
    "mean_response_time_lower_bound",
    "job_set_load",
    "SeriesStats",
    "summarize",
    "geometric_mean",
    "ConfidenceInterval",
    "bootstrap_ci",
    "ratio_ci",
]
