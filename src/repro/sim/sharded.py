"""Sharded execution of one multiprogrammed simulation.

:func:`repro.sim.multi.simulate_job_set` advances the whole machine one
quantum at a time: one allocation over every active job, one kernel step,
one feedback pass.  Under a :class:`~repro.allocators.hierarchical.
HierarchicalAllocator` that loop is needlessly synchronous — each group's
waterfall reads and writes only group-local state, and membership can only
change at an admission boundary or a rebalancing boundary.  This module
exploits that: between barriers, every group advances a whole *window* of
quanta independently, one supervised worker dispatch per group
(:func:`repro.runtime.run_supervised` supplies the timeouts, bounded
retries, and fault injection the experiment fan-out already uses), and the
coordinator gathers the evolved group states, merges the emitted columnar
quanta, and runs the membership/rebalancing step before the next window.

Why the results are byte-identical to the flat loop
---------------------------------------------------
Every operation a window worker performs is one the flat loop performs on
the same values in the same order, restricted to the group:

- allocation: the flat path's ``HierarchicalAllocator.allocate_batch``
  gathers each group's members in sorted-id order and runs the group's
  inner waterfall against its fixed budget — exactly the call the worker
  makes directly;
- execution and feedback: the kernel's chunk math and the policies' batch
  recurrences are elementwise per slot, so a group-sized call returns the
  same bits as the group's rows of a machine-wide call;
- supersteps: a worker fast-forwards its group through quanta whose
  group-local allocation is a certified fixed point
  (:meth:`~repro.allocators.base.Allocator.fixed_point_probe`), advancing
  the inner allocator's state exactly as the skipped per-quantum calls
  would.  The flat loop, needing *every* group at a fixed point at once,
  executes those quanta one by one — producing the identical records the
  superstep emits as one repeat-group.  This is also why sharded execution
  wins even on one core: one churning group no longer pins the stable
  groups to per-quantum execution.

Membership changes only at barriers, where the coordinator runs the same
``begin_window`` front half (sync + rebalance) the flat path's per-quantum
calls would run, and migrates whole slots between group kernels
(:meth:`~repro.sim.multi_batched.MultiBatchKernel.export_slots`).  Worker
count is therefore invisible: groups are dispatched and gathered in group
order, ``run_supervised`` preserves it, and retried units re-run pure
inputs (a pool retry re-pickles the coordinator's pristine task; a serial
fault injects before the unit body runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Sequence

import numpy as np

from ..allocators.base import Allocator, validate_allocation_arrays
from ..allocators.hierarchical import HierarchicalAllocator
from ..core.overhead import NO_OVERHEAD, ReallocationOverhead
from ..core.types import JobTrace, integer_request
from ..runtime.checkpoint import unit_key
from ..runtime.supervisor import WorkerPool, resolve_workers, run_supervised
from .jobs import JobSpec
from .multi_batched import MultiBatchKernel, segment_profile
from .superstep import QuantumLog

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .multi import MultiJobResult

__all__ = [
    "GroupWindowTask",
    "GroupWindowResult",
    "run_group_window",
    "simulate_job_set_sharded",
]


@dataclass(slots=True)
class GroupWindowTask:
    """One group's window of quanta: the unit of sharded dispatch."""

    group: int
    kernel: MultiBatchKernel
    allocator: Allocator
    budget: int
    """The group's processor budget (what its waterfall divides)."""
    processors: int
    """Machine-wide ``P`` (caps the records' ``available`` field, exactly
    as the flat loop computes it)."""
    quantum_length: int
    start: int
    """Machine time at the window's first quantum boundary."""
    quanta: int
    """Window length: how many quanta to advance before the barrier."""
    start_quantum: int
    """Machine quanta executed before this window (orders finished traces
    across groups)."""
    superstep: bool
    overhead: ReallocationOverhead


@dataclass(slots=True)
class GroupWindowResult:
    """The evolved group state and everything the window emitted."""

    group: int
    kernel: MultiBatchKernel
    allocator: Allocator
    log: QuantumLog
    finished: list[tuple[int, int, int, JobTrace]]
    """``(machine quantum, admission seq, job id, trace)`` per finished
    job — sorting the union across groups reproduces the flat loop's
    finished-trace insertion order."""
    executed: int
    """Quanta actually executed (< ``quanta`` only if the group emptied)."""


def run_group_window(task: GroupWindowTask) -> GroupWindowResult:
    """Advance one group through its window — the flat loop's per-quantum
    body, restricted to the group (see the module docstring for why that
    restriction is bitwise-invisible).

    Mutates the task's kernel/allocator in place and hands them back: under
    pool dispatch they are this worker's pickled copies, and under serial
    dispatch fault injection fires before this body runs, so a retried unit
    always starts from pristine state.
    """
    # Local import: repro.sim.multi imports this module lazily, so the
    # reverse edge must also be deferred to keep import order free.
    from .multi import _attempt_superstep, _batch_feedback

    kernel = task.kernel
    allocator = task.allocator
    L = task.quantum_length
    log = QuantumLog(L)
    layout_dirty = True
    finished: list[tuple[int, int, int, JobTrace]] = []
    executed = 0
    t = task.start
    while executed < task.quanta and len(kernel) > 0:
        nk = len(kernel)
        req_int = kernel.integer_requests()
        ids_sorted, order = kernel.allocation_order()
        req_sorted = req_int[order]
        grants = allocator.allocate_batch(ids_sorted, req_sorted, task.budget)
        if grants is None:  # guarded at simulate entry; defensive here
            raise ValueError(
                "sharded execution requires an array-native allocator "
                "(allocate_batch returned None)"
            )
        validate_allocation_arrays(ids_sorted, req_sorted, grants, task.budget)
        alloc_arr = np.empty(nk, dtype=np.int64)
        alloc_arr[order] = grants
        batch_out = kernel.execute_quantum(alloc_arr, L, task.overhead)
        avail = np.where(alloc_arr < req_int, alloc_arr, task.processors)
        if layout_dirty:
            log.set_layout(kernel.jids)
            layout_dirty = False
        group = log.append_quantum(
            start_step=t,
            repeat=1,
            index0=kernel.next_q,
            request=kernel.request,
            request_int=req_int,
            available=avail,
            allotment=alloc_arr,
            work=batch_out.work,
            span=batch_out.span,
            steps=batch_out.steps,
        )
        kernel.bump_quantum()
        finished_pos = np.flatnonzero(batch_out.finished).tolist()
        scalar_fb = _batch_feedback(
            kernel, group, req_int, alloc_arr, batch_out, finished_pos, L, t
        )
        for pos in finished_pos:
            slot = kernel.slots[pos]
            finished.append(
                (task.start_quantum + executed, slot.seq, slot.jid, slot.trace)
            )
        if finished_pos:
            kernel.remove(finished_pos)
            layout_dirty = True
        skipped = 0
        if (
            task.superstep
            and not scalar_fb
            and not finished_pos
            and len(kernel) > 0
        ):
            skipped = _attempt_superstep(
                kernel,
                log,
                allocator,
                group,
                req_int,
                avail,
                alloc_arr,
                task.budget,
                L,
                t,
                next_release=None,  # windows end before the next admission
                budget=task.quanta - executed - 1,
            )
        t += (skipped + 1) * L
        executed += skipped + 1
    return GroupWindowResult(
        group=task.group,
        kernel=kernel,
        allocator=allocator,
        log=log,
        finished=finished,
        executed=executed,
    )


def _has_array_path(allocator: Allocator) -> bool:
    return type(allocator).allocate_batch is not Allocator.allocate_batch


def simulate_job_set_sharded(
    specs: Sequence[JobSpec],
    allocator: Allocator,
    processors: int,
    *,
    quantum_length: int = 1000,
    max_quanta: int = 10_000_000,
    overhead: ReallocationOverhead = NO_OVERHEAD,
    strict: bool = False,
    superstep: Literal["auto", "off"] = "auto",
    shards: int | Literal["auto"] = "auto",
    task_timeout: float | None = None,
    retries: int | None = None,
) -> "MultiJobResult":
    """Window-barrier sharded twin of
    :func:`repro.sim.multi.simulate_job_set` (call that with ``shards=`` set
    rather than this directly).  Byte-identical traces at any shard count.

    Requirements beyond the flat loop's: every job must be batchable (the
    per-group windows run on the kernel path only) and the allocator must
    have an array-native ``allocate_batch``.  A
    :class:`HierarchicalAllocator` shards over its groups; any other
    array-native allocator runs as a single group spanning the machine
    (sharding then buys no parallelism, but the windowed path — and its
    group-local supersteps — still applies, which is what the golden-trace
    ``sharded`` replay path exercises on the flat-allocator fixtures).
    """
    from .multi import MultiJobResult

    if processors < 1:
        raise ValueError("need at least one processor")
    if quantum_length < 1:
        raise ValueError("quantum length must be >= 1")
    if not specs:
        raise ValueError("job set is empty")
    if not _has_array_path(allocator):
        raise ValueError(
            "sharded execution requires an array-native allocator "
            f"(no allocate_batch override on {type(allocator).__name__})"
        )
    workers = resolve_workers(0 if shards == "auto" else int(shards))

    pending: list[tuple[int, int, JobSpec]] = []
    seen_ids: set[int] = set()
    profiles: dict[int, tuple[tuple[int, int], ...]] = {}
    interned: dict[
        tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]
    ] = {}
    for i, spec in enumerate(specs):
        jid = spec.job_id if spec.job_id is not None else i
        if jid in seen_ids:
            raise ValueError(f"duplicate job id {jid}")
        seen_ids.add(jid)
        profile = segment_profile(spec, strict=strict)
        if profile is None:
            raise ValueError(
                f"job {jid} is not batchable; sharded execution requires "
                "counts-determined jobs (run with shards=None to use the "
                "fallback path)"
            )
        # Intern by value: giant job sets repeat a handful of shapes, and
        # slots sharing one profile tuple let pickle's memo collapse the
        # per-window worker payload from O(jobs x segments) to O(shapes).
        profiles[jid] = interned.setdefault(profile, profile)
        pending.append((spec.release_time, jid, spec))
    pending.sort(key=lambda item: (item[0], item[1]))
    released = {jid: rel for rel, jid, _ in pending}

    hier = allocator if isinstance(allocator, HierarchicalAllocator) else None
    do_superstep = superstep == "auto"
    L = quantum_length
    log = QuantumLog(L)
    done: dict[int, JobTrace] = {}
    kernels: list[MultiBatchKernel] = []
    budgets: list[int] = []
    if hier is None:
        kernels.append(MultiBatchKernel(strict=strict))
        budgets.append(processors)
    t = 0
    quanta = 0
    seq = 0
    cursor = 0

    # One pool outlives every window barrier: per-window forking would
    # otherwise dominate the dispatch cost on short windows.
    shared_pool = WorkerPool(workers) if workers > 1 else None
    try:
        while cursor < len(pending) or any(len(k) > 0 for k in kernels):
            if quanta >= max_quanta:
                raise RuntimeError(f"job set did not finish within {max_quanta} quanta")
            # Admissions at this boundary (same order the flat loop admits in).
            arrivals: list[tuple[int, JobSpec, int]] = []  # (jid, spec, seq)
            while cursor < len(pending) and pending[cursor][0] <= t:
                _rel, jid, spec = pending[cursor]
                cursor += 1
                arrivals.append((jid, spec, seq))
                seq += 1
            if not arrivals and all(len(k) == 0 for k in kernels):
                next_release = pending[cursor][0]
                t = max(t + L, ((next_release + L - 1) // L) * L)
                continue

            # Barrier front half: membership (sync + rebalance) over the active
            # set including this boundary's arrivals, then slot migration and
            # admission into the per-group kernels.
            if hier is not None:
                id_req: list[tuple[int, int]] = []
                for kernel in kernels:
                    id_req.extend(zip(kernel.jids, kernel.integer_requests().tolist()))
                for jid, spec, _s in arrivals:
                    id_req.append((jid, integer_request(spec.feedback.first_request())))
                id_req.sort()
                ids_arr = np.array([j for j, _ in id_req], dtype=np.int64)
                req_arr = np.array([r for _, r in id_req], dtype=np.int64)
                membership = hier.begin_window(ids_arr, req_arr, processors)
                if not kernels:
                    kernels.extend(
                        MultiBatchKernel(strict=strict)
                        for _ in range(hier.group_count)
                    )
                    budgets.extend(hier.group_budgets())
                for g, kernel in enumerate(kernels):
                    moving = [
                        pos
                        for pos, jid in enumerate(kernel.jids)
                        if membership[jid] != g
                    ]
                    if moving:
                        for state in kernel.export_slots(moving):
                            kernels[membership[state.jid]].import_slot(state)
                group_of = membership
            else:
                group_of = {jid: 0 for jid, _spec, _s in arrivals}
            for jid, spec, s in arrivals:
                kernels[group_of[jid]].admit(
                    jid=jid,
                    seq=s,
                    spec=spec,
                    trace=JobTrace(
                        quantum_length=L, release_time=released[jid], job_id=jid
                    ),
                    profile=profiles[jid],
                    request=spec.feedback.first_request(),
                )

            # Window length: to the next admission boundary, the next
            # rebalancing boundary, and the quantum ceiling — whichever is
            # nearest.  Always >= 1.
            window = max_quanta - quanta
            if hier is not None:
                window = min(window, hier.quanta_to_rebalance())
            if cursor < len(pending):
                next_boundary = ((pending[cursor][0] + L - 1) // L) * L
                window = min(window, (next_boundary - t) // L)

            tasks = [
                GroupWindowTask(
                    group=g,
                    kernel=kernel,
                    allocator=(
                        hier.group_allocator(g) if hier is not None else allocator
                    ),
                    budget=budgets[g],
                    processors=processors,
                    quantum_length=L,
                    start=t,
                    quanta=window,
                    start_quantum=quanta,
                    superstep=do_superstep,
                    overhead=overhead,
                )
                for g, kernel in enumerate(kernels)
                if len(kernel) > 0
            ]
            keys = [
                unit_key(
                    "shard-window",
                    {"group": task.group, "start": task.start, "quanta": task.quanta},
                )
                for task in tasks
            ]
            outcome = run_supervised(
                run_group_window,
                tasks,
                workers=min(workers, len(tasks)),
                keys=keys,
                task_timeout=task_timeout,
                retries=retries,
                pool=shared_pool,
            )
            executed = 0
            window_finished: list[tuple[int, int, int, JobTrace]] = []
            for result in outcome.results:
                kernels[result.group] = result.kernel
                if hier is not None:
                    hier.set_group_allocator(result.group, result.allocator)
                else:
                    allocator = result.allocator
                log.extend(result.log)
                window_finished.extend(result.finished)
                executed = max(executed, result.executed)
            for _q, _s, jid, trace in sorted(window_finished):
                done[jid] = trace
            if hier is not None:
                hier.advance_window(executed)
            t += executed * L
            quanta += executed

    finally:
        if shared_pool is not None:
            shared_pool.close()
    log.build_traces(done)
    return MultiJobResult(
        traces=done,
        processors=processors,
        quantum_length=L,
        quanta_elapsed=quanta,
        released=released,
    )
