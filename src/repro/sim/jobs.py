"""Job specifications: what the simulators accept as "a job".

Either job *description* (a :class:`~repro.engine.phased.PhasedJob`, an
explicit :class:`~repro.dag.graph.Dag`, or a zero-argument *executor
factory* for custom engines such as work stealing) can be handed to the
simulators; a fresh executor is created per run.  A ready-made
:class:`~repro.engine.base.JobExecutor` is also accepted for single runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

from ..core.feedback import FeedbackPolicy
from ..dag.graph import Dag
from ..engine.base import JobExecutor
from ..engine.batched import BatchedDagExecutor, supports_batched
from ..engine.explicit import Discipline, ExplicitExecutor
from ..engine.phased import PhasedExecutor, PhasedJob

__all__ = [
    "JobSpec",
    "make_executor",
    "JobDescription",
    "ExecutorFactory",
    "EngineChoice",
]

ExecutorFactory = Callable[[], JobExecutor]
JobDescription = PhasedJob | Dag | JobExecutor | ExecutorFactory

EngineChoice = Literal["auto", "batched", "reference"]
"""Engine selection for explicit dags: ``"auto"`` picks the batched
level-major kernel whenever the dag's structure permits it (and falls back to
the reference engine otherwise), ``"batched"`` requires it (raising
:class:`~repro.engine.batched.UnsupportedDagStructure` when it does not
apply), and ``"reference"`` forces the step-accurate heap engine."""


def make_executor(
    job: JobDescription,
    discipline: Discipline = "breadth-first",
    *,
    strict: bool = False,
    engine: EngineChoice = "auto",
) -> JobExecutor:
    """Create a fresh executor for a job description.

    Phased jobs always execute with B-Greedy's breadth-first wavefront (for
    which the closed form holds); explicit dags honor ``discipline`` and
    ``engine`` (see :data:`EngineChoice` — by default the batched level-major
    kernel is selected automatically for dags whose structure permits it); a
    zero-argument callable is treated as an executor factory (for custom
    engines such as :class:`~repro.stealing.executor.WorkStealingExecutor`);
    an executor instance is returned as-is (caller owns its freshness).

    ``strict=True`` enables the built-in engines' per-step invariant
    checking (:class:`~repro.verify.violations.InvariantError` on breach);
    with ``engine="auto"`` it also keeps explicit dags on the reference
    engine, whose strict mode re-validates every individual scheduling
    decision rather than per-quantum arithmetic.
    """
    if engine not in ("auto", "batched", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    if isinstance(job, PhasedJob):
        return PhasedExecutor(job, strict=strict)
    if isinstance(job, Dag):
        if engine == "batched" or (
            engine == "auto" and not strict and supports_batched(job, discipline)
        ):
            return BatchedDagExecutor(job, strict=strict)
        return ExplicitExecutor(job, discipline, strict=strict)
    if isinstance(job, JobExecutor):
        return job
    if callable(job):
        executor = job()
        if not isinstance(executor, JobExecutor):
            raise TypeError(
                f"executor factory returned {type(executor).__name__}, "
                "expected a JobExecutor"
            )
        return executor
    raise TypeError(f"not a job description: {job!r}")


@dataclass(slots=True)
class JobSpec:
    """One job in a multiprogrammed simulation.

    ``job`` must be re-instantiable — a :class:`PhasedJob`, a :class:`Dag`,
    or an executor *factory* — so the simulator can create fresh run state.
    """

    job: JobDescription
    feedback: FeedbackPolicy
    release_time: int = 0
    discipline: Discipline = "breadth-first"
    job_id: int | None = field(default=None)
    engine: EngineChoice = "auto"

    def __post_init__(self) -> None:
        if self.release_time < 0:
            raise ValueError("release time must be non-negative")
        if isinstance(self.job, JobExecutor):
            raise TypeError(
                "JobSpec needs a re-instantiable job description "
                "(PhasedJob, Dag, or an executor factory), not an executor"
            )
