"""Bootstrap statistics for experiment summaries.

The paper reports point averages ("an average 20% improvement"); for a
reproduction it is worth knowing how tight those averages are at a given
sample size.  :func:`bootstrap_ci` resamples any per-job/per-set metric and
returns a percentile confidence interval; :func:`ratio_ci` does the same for
the mean of paired ratios (the Figure 5(b)/(d) and 6(b)/(d) quantities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["ConfidenceInterval", "bootstrap_ci", "ratio_ci"]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    point: float
    low: float
    high: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return (
            f"{self.point:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] @ {self.confidence:.0%}"
        )


def bootstrap_ci(
    values: Sequence[float],
    *,
    statistic: Callable[[np.ndarray], float] | None = None,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of ``statistic`` (default: the mean)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must lie in (0, 1)")
    if resamples < 1:
        raise ValueError("need at least one resample")
    stat = statistic or (lambda a: float(a.mean()))
    rng = rng or np.random.default_rng(0)
    point = float(stat(arr))
    if arr.size == 1:
        return ConfidenceInterval(point, point, point, confidence)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    stats = np.array([stat(arr[row]) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return ConfidenceInterval(point, float(low), float(high), confidence)


def ratio_ci(
    numerators: Sequence[float],
    denominators: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> ConfidenceInterval:
    """CI of the mean per-pair ratio (paired resampling)."""
    num = np.asarray(list(numerators), dtype=np.float64)
    den = np.asarray(list(denominators), dtype=np.float64)
    if num.shape != den.shape or num.size == 0:
        raise ValueError("numerators and denominators must align and be non-empty")
    if np.any(den == 0):
        raise ValueError("zero denominator")
    return bootstrap_ci(
        num / den, confidence=confidence, resamples=resamples, rng=rng
    )
