"""Set-level performance metrics and the theoretical lower bounds the paper
normalizes against.

- Makespan lower bound: ``M* >= max(total work / P, max_j (release_j +
  span_j))`` — no schedule can beat the machine's aggregate throughput or any
  single job's critical path from its release.
- Mean response time lower bound for *batched* job sets (all released
  together): ``R* >= max(mean span, squashed-area bound)``.  The squashed-area
  bound runs jobs shortest-work-first on all ``P`` processors with perfect
  efficiency: with works sorted ascending ``w_(1) <= ... <= w_(n)``, job
  ``i``'s completion is at least ``(1/P) * sum_{k<=i} w_(k)``, giving
  ``R* >= (1/(n*P)) * sum_i (n - i + 1) * w_(i)``.

These are the standard bounds used by the paper's references [11, 12] and in
its Figure 6 normalization.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.types import JobTrace

__all__ = [
    "makespan",
    "mean_response_time",
    "makespan_lower_bound",
    "mean_response_time_lower_bound",
    "job_set_load",
]


def makespan(traces: Iterable[JobTrace]) -> int:
    """Completion time of the last job (time 0 = first quantum boundary)."""
    traces = list(traces)
    if not traces:
        raise ValueError("no traces")
    return max(t.completion_time for t in traces)


def mean_response_time(traces: Iterable[JobTrace]) -> float:
    """Average of completion minus release over the job set."""
    times = [t.response_time for t in traces]
    if not times:
        raise ValueError("no traces")
    return float(np.mean(times))


def makespan_lower_bound(
    works: Sequence[int],
    spans: Sequence[int],
    releases: Sequence[int],
    processors: int,
) -> float:
    """``M* = max(sum(T1)/P, max(release + Tinf))``."""
    if not works or len(works) != len(spans) or len(works) != len(releases):
        raise ValueError("works, spans, releases must be equal-length and non-empty")
    if processors < 1:
        raise ValueError("need at least one processor")
    throughput = sum(works) / processors
    critical = max(r + s for r, s in zip(releases, spans))
    return max(throughput, float(critical))


def mean_response_time_lower_bound(
    works: Sequence[int],
    spans: Sequence[int],
    processors: int,
) -> float:
    """Batched mean-response-time lower bound ``R* = max(mean span,
    squashed-area / n)``."""
    if not works or len(works) != len(spans):
        raise ValueError("works and spans must be equal-length and non-empty")
    if processors < 1:
        raise ValueError("need at least one processor")
    n = len(works)
    mean_span = float(np.mean(spans))
    sorted_works = np.sort(np.asarray(works, dtype=np.float64))
    weights = np.arange(n, 0, -1, dtype=np.float64)  # n, n-1, ..., 1
    squashed = float(np.dot(weights, sorted_works)) / processors
    return max(mean_span, squashed / n)


def job_set_load(works: Sequence[int], spans: Sequence[int], processors: int) -> float:
    """The paper's load measure (Section 7.2): total average parallelism of
    the job set normalized by the machine size."""
    if not works or len(works) != len(spans):
        raise ValueError("works and spans must be equal-length and non-empty")
    total_parallelism = sum(w / s for w, s in zip(works, spans))
    return total_parallelism / processors
