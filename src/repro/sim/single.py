"""Single-job two-level scheduling simulation.

Drives the quantum loop of Figure 3 for one job:

    request d(q)  -->  conservative allotment a(q) = min(ceil(d), p(q))
                  -->  task scheduler runs the quantum
                  -->  measurements feed the next request.

Used by the paper's first simulation set (Figure 5: individual jobs on an
unconstrained machine) and by the trim-analysis experiments (adversarial
availability).
"""

from __future__ import annotations

from ..allocators.availability import ConstantAvailability
from ..allocators.base import AvailabilityPolicy
from ..core.feedback import FeedbackPolicy
from ..core.overhead import NO_OVERHEAD, ReallocationOverhead
from ..core.quantum_policy import FixedQuantumLength, QuantumLengthPolicy
from ..core.types import JobTrace, QuantumRecord, integer_request
from ..engine.base import JobExecutor, QuantumExecution
from ..engine.explicit import Discipline
from .jobs import EngineChoice, JobDescription, make_executor

__all__ = ["simulate_job", "run_quantum_with_overhead"]


def run_quantum_with_overhead(
    executor: JobExecutor,
    allotment: int,
    length: int,
    prev_allotment: int | None,
    overhead: ReallocationOverhead,
) -> QuantumExecution:
    """Execute one quantum, charging reallocation overhead at its start.

    The overhead steps hold the allotment but do no work; a quantum fully
    consumed by overhead executes nothing (and, by charging the full quantum,
    guarantees the simulation still terminates: an unchanged allotment next
    quantum costs nothing)."""
    cost = overhead.cost(prev_allotment, allotment, length)
    if cost >= length:
        return QuantumExecution(work=0, span=0.0, steps=length, finished=False)
    ex = executor.execute_quantum(allotment, length - cost)
    return QuantumExecution(
        work=ex.work, span=ex.span, steps=cost + ex.steps, finished=ex.finished
    )


def simulate_job(
    job: JobDescription,
    feedback: FeedbackPolicy,
    availability: AvailabilityPolicy | int,
    *,
    quantum_length: QuantumLengthPolicy | int = 1000,
    discipline: Discipline = "breadth-first",
    max_quanta: int = 10_000_000,
    job_id: int | None = None,
    overhead: ReallocationOverhead = NO_OVERHEAD,
    strict: bool = False,
    engine: EngineChoice = "auto",
) -> JobTrace:
    """Run one job to completion and return its full quantum trace.

    Parameters
    ----------
    job:
        A :class:`PhasedJob`, explicit :class:`Dag`, or fresh executor.
    feedback:
        The processor-request policy (e.g. :class:`~repro.core.abg.AControl`
        for ABG or :class:`~repro.core.agreedy.AGreedy`).
    availability:
        Either an :class:`AvailabilityPolicy` or an integer ``P`` shorthand
        for constant availability.
    quantum_length:
        Either a :class:`QuantumLengthPolicy` or an integer ``L`` shorthand
        for the paper's fixed quantum length.
    max_quanta:
        Safety valve against a mis-configured run that cannot finish.
    overhead:
        Reallocation-overhead model (default: the paper's free
        reallocation); see :class:`~repro.core.overhead.ReallocationOverhead`.
    strict:
        Enable the engines' per-step invariant checking
        (:class:`~repro.verify.violations.InvariantError` on breach).
    engine:
        Executor selection for explicit dags (see
        :data:`~repro.sim.jobs.EngineChoice`); ``"auto"`` uses the batched
        level-major kernel whenever the dag's structure permits it.
    """
    if isinstance(availability, int):
        availability = ConstantAvailability(availability)
    if isinstance(quantum_length, int):
        qlen_policy: QuantumLengthPolicy = FixedQuantumLength(quantum_length)
    else:
        qlen_policy = quantum_length

    executor = make_executor(job, discipline, strict=strict, engine=engine)
    if executor.finished:
        raise ValueError("job is already finished; pass a fresh executor or description")
    records: list[QuantumRecord] = []

    d = feedback.first_request()
    prev: QuantumRecord | None = None
    t = 0
    q = 1
    while not executor.finished:
        if q > max_quanta:
            raise RuntimeError(f"job did not finish within {max_quanta} quanta")
        length = qlen_policy.next_length(prev)
        p = availability.available(q, prev)
        if p < 1:
            raise ValueError("availability policy must offer at least one processor")
        d_int = integer_request(d)
        a = min(d_int, p)
        ex = run_quantum_with_overhead(
            executor, a, length, prev.allotment if prev else None, overhead
        )
        record = QuantumRecord(
            index=q,
            request=d,
            request_int=d_int,
            available=p,
            allotment=a,
            work=ex.work,
            span=ex.span,
            steps=ex.steps,
            quantum_length=length,
            start_step=t,
        )
        records.append(record)
        t += ex.steps
        d = feedback.next_request(record)
        prev = record
        q += 1

    trace = JobTrace(quantum_length=records[0].quantum_length, job_id=job_id)
    for record in records:
        trace.append(record)
    return trace
