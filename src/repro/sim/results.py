"""Small aggregation helpers for experiment result series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SeriesStats", "summarize", "geometric_mean"]


@dataclass(frozen=True, slots=True)
class SeriesStats:
    """Mean / spread summary of one measured series."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.count})"


def summarize(values: Sequence[float]) -> SeriesStats:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty series")
    return SeriesStats(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def geometric_mean(values: Sequence[float]) -> float:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot average an empty series")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
