"""Execution-path replay hooks for the golden-trace harness.

The multiprogrammed simulator has four execution paths that are
bit-identical by contract: the serial per-job reference loop, the batched
numpy kernel, the kernel with multi-quantum superstep fast-forwarding on
top, and the windowed sharded executor dispatching per-group windows
through supervised workers.  :func:`replay_path` pins one of them
explicitly — including ``superstep`` — so a replay can never be perturbed
by the ambient :data:`~repro.sim.multi.SUPERSTEP_ENV_VAR` override.  One
golden fixture replayed through all four paths therefore proves four-way
identity against the recorded reference run.
"""

from __future__ import annotations

from typing import Sequence

from ..allocators.base import Allocator
from .jobs import JobSpec
from .multi import BatchChoice, MultiJobResult, SuperstepChoice, simulate_job_set

__all__ = ["EXECUTION_PATHS", "PATH_MODES", "replay_path"]

#: The replayable execution paths, in reference-first order.
EXECUTION_PATHS: tuple[str, ...] = ("serial", "batched", "superstep", "sharded")

#: path name -> ``(batch, superstep, shards)`` modes of
#: :func:`simulate_job_set`.  The sharded path pins two shards — enough to
#: exercise the window barriers and the pooled worker dispatch without
#: making fixture replay fork-heavy.
PATH_MODES: dict[str, tuple[BatchChoice, SuperstepChoice, int | None]] = {
    "serial": ("off", "off", None),
    "batched": ("auto", "off", None),
    "superstep": ("auto", "auto", None),
    "sharded": ("auto", "auto", 2),
}


def replay_path(
    specs: Sequence[JobSpec],
    allocator: Allocator,
    processors: int,
    *,
    quantum_length: int,
    max_quanta: int,
    path: str,
) -> MultiJobResult:
    """Run a job set to completion on one named execution path.

    ``path`` must be one of :data:`EXECUTION_PATHS`; the batch backend, the
    superstep mode, and the shard count are all passed explicitly so the
    environment cannot change what a fixture replay executes.
    """
    modes = PATH_MODES.get(path)
    if modes is None:
        raise ValueError(
            f"unknown execution path {path!r}; pick one of {EXECUTION_PATHS}"
        )
    batch, superstep, shards = modes
    return simulate_job_set(
        specs,
        allocator,
        processors,
        quantum_length=quantum_length,
        max_quanta=max_quanta,
        batch=batch,
        superstep=superstep,
        shards=shards,
    )
