"""Execution-path replay hooks for the golden-trace harness.

The multiprogrammed simulator has three execution paths that are
bit-identical by contract: the serial per-job reference loop, the batched
numpy kernel, and the kernel with multi-quantum superstep fast-forwarding
on top.  :func:`replay_path` pins one of them explicitly — including
``superstep`` — so a replay can never be perturbed by the ambient
:data:`~repro.sim.multi.SUPERSTEP_ENV_VAR` override.  One golden fixture
replayed through all three paths therefore proves three-way identity
against the recorded reference run.
"""

from __future__ import annotations

from typing import Sequence

from ..allocators.base import Allocator
from .jobs import JobSpec
from .multi import BatchChoice, MultiJobResult, SuperstepChoice, simulate_job_set

__all__ = ["EXECUTION_PATHS", "PATH_MODES", "replay_path"]

#: The replayable execution paths, in reference-first order.
EXECUTION_PATHS: tuple[str, ...] = ("serial", "batched", "superstep")

#: path name -> ``(batch, superstep)`` mode pair of :func:`simulate_job_set`.
PATH_MODES: dict[str, tuple[BatchChoice, SuperstepChoice]] = {
    "serial": ("off", "off"),
    "batched": ("auto", "off"),
    "superstep": ("auto", "auto"),
}


def replay_path(
    specs: Sequence[JobSpec],
    allocator: Allocator,
    processors: int,
    *,
    quantum_length: int,
    max_quanta: int,
    path: str,
) -> MultiJobResult:
    """Run a job set to completion on one named execution path.

    ``path`` must be one of :data:`EXECUTION_PATHS`; both the batch backend
    and the superstep mode are passed explicitly so the environment cannot
    change what a fixture replay executes.
    """
    modes = PATH_MODES.get(path)
    if modes is None:
        raise ValueError(
            f"unknown execution path {path!r}; pick one of {EXECUTION_PATHS}"
        )
    batch, superstep = modes
    return simulate_job_set(
        specs,
        allocator,
        processors,
        quantum_length=quantum_length,
        max_quanta=max_quanta,
        batch=batch,
        superstep=superstep,
    )
