"""Multiprogrammed two-level scheduling simulation.

A set of jobs space-shares ``P`` processors (paper Sections 6.3 and 7, second
simulation set).  Scheduling quanta are machine-wide and synchronized: at
every boundary ``t = 0, L, 2L, ...`` the allocator divides the processors
among the active jobs' requests, each job runs its quantum, and newly
released jobs join at the next boundary.

A job that completes mid-quantum releases its processors at its completion
step for accounting purposes (no further waste accrues), but they become
re-allocatable only at the next boundary — the conservative reading of the
paper's quantum-granularity reallocation.

Execution backends
------------------
``batch="auto"`` (the default) routes every job whose structure is
counts-determined through the multi-job batched kernel
(:mod:`repro.sim.multi_batched`): one numpy step loop advances all of them
per quantum, with the remaining jobs falling back to their per-job executors
inside the same quantum.  ``batch="off"`` forces the serial per-job loop for
everything.  Both paths produce bit-identical traces — the kernel replays
the same closed-form chunk sequence as the per-job engines (see the kernel
module docstring for the argument, and ``tests/test_sim_multi_batched.py``
for the cross-validation).

On the kernel path, records are emitted *columnar*: each quantum appends one
group of aligned arrays to a :class:`~repro.sim.superstep.QuantumLog`, and
finished traces get array-backed :class:`~repro.core.columnar.TraceColumns`
views instead of eagerly-built record lists.

Supersteps
----------
``superstep="auto"`` (the default) adds multi-quantum fast-forwarding on top
of the kernel path.  Between *events* — a job completing, an arrival
admission, or a feedback-driven request change — the simulation checks
whether the next quantum is a literal fixed point of the previous one: the
feedback recurrences hold every request bit-identical
(:meth:`~repro.core.feedback.FeedbackPolicy.advance_request_batch`; a policy
with only a scalar form forces ``K = 1``), the allocator certifies its grants
repeat (:meth:`~repro.core.allocators.base.Allocator.allocation_fixed_point`),
and every job's remaining segment chunks sustain identical pure quanta
(regime-1 sustain / regime-2 drain closed forms in
:mod:`repro.sim.superstep`).  When all hold, ``K`` quanta advance at once —
state moves by closed form and the ``K`` identical records land as one
repeat-group in the log.  ``superstep="off"`` disables only the
fast-forwarding; either setting produces byte-identical traces and
artifacts, because a superstep engages exactly when the per-quantum path
would have produced those ``K`` identical quanta anyway.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Literal, Sequence, cast

import numpy as np

from ..allocators.base import (
    Allocator,
    validate_allocation,
    validate_allocation_arrays,
)
from ..core.overhead import NO_OVERHEAD, ReallocationOverhead
from ..core.types import JobTrace, QuantumRecord, integer_request
from ..engine.base import JobExecutor
from .jobs import JobSpec, make_executor
from .metrics import makespan, mean_response_time
from .multi_batched import MultiBatchKernel, QuantumBatch, segment_profile
from .single import run_quantum_with_overhead
from .superstep import QuantumGroup, QuantumLog

__all__ = ["MultiJobResult", "SUPERSTEP_ENV_VAR", "simulate_job_set"]

BatchChoice = Literal["auto", "off"]
SuperstepChoice = Literal["auto", "off"]

#: Ambient override of the default superstep mode.  When a caller leaves
#: ``superstep=None``, this environment variable (if set) picks the mode —
#: the hook the CI byte-identity job uses to re-run the full artifact
#: pipeline with fast-forwarding disabled and diff the output bytes.
SUPERSTEP_ENV_VAR = "REPRO_SUPERSTEP"


@dataclass(slots=True)
class MultiJobResult:
    """Traces and set-level metrics of one multiprogrammed run."""

    traces: dict[int, JobTrace]
    processors: int
    quantum_length: int
    quanta_elapsed: int = 0
    released: dict[int, int] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        return makespan(self.traces.values())

    @property
    def mean_response_time(self) -> float:
        return mean_response_time(self.traces.values())

    @property
    def total_waste(self) -> int:
        return sum(t.total_waste for t in self.traces.values())

    @property
    def total_work(self) -> int:
        return sum(t.total_work for t in self.traces.values())


def _scalar_feedback(
    kernel: MultiBatchKernel,
    positions: Sequence[int],
    group: QuantumGroup,
    length: int,
    start_step: int,
) -> None:
    """Per-record feedback for kernel slots whose policy has no vectorized
    form — rebuilds each slot's record from the quantum's emitted columns
    (identical values, so an identical next request)."""
    for pos in positions:
        slot = kernel.slots[pos]
        record = QuantumRecord(
            index=int(group.index0[pos]),
            request=float(group.request[pos]),
            request_int=int(group.request_int[pos]),
            available=int(group.available[pos]),
            allotment=int(group.allotment[pos]),
            work=int(group.work[pos]),
            span=float(group.span[pos]),
            steps=int(group.steps[pos]),
            quantum_length=length,
            start_step=start_step,
        )
        kernel.request[pos] = slot.policy.next_request(record)


def _batch_feedback(
    kernel: MultiBatchKernel,
    group: QuantumGroup,
    req_int: np.ndarray,
    alloc_arr: np.ndarray,
    batch_out: QuantumBatch,
    finished_pos: list[int],
    length: int,
    start: int,
) -> bool:
    """Post-quantum feedback over the kernel's slots, vectorized per policy
    instance (experiment job sets share one policy object across jobs, so
    the common case is one whole-array batch call); returns whether any
    slot fell back to scalar feedback.  Requests computed for slots that
    just finished are discarded with the slot, exactly like the serial
    loop, which never updates a finished job's request.
    """
    nk = len(kernel)
    scalar_fb = False
    uniform = kernel.uniform_policy
    if uniform is not None:
        nxt = uniform.next_request_batch(
            request=kernel.request,
            request_int=req_int,
            allotment=alloc_arr,
            work=batch_out.work,
            span=batch_out.span,
            steps=batch_out.steps,
        )
        if nxt is None:
            scalar_fb = True
            fin_set = set(finished_pos)
            _scalar_feedback(
                kernel,
                [pos for pos in range(nk) if pos not in fin_set],
                group,
                length,
                start,
            )
        else:
            kernel.request = nxt
    else:
        groups: dict[int, list[int]] = {}
        fin_set = set(finished_pos)
        for pos in range(nk):
            if pos not in fin_set:
                groups.setdefault(id(kernel.slots[pos].policy), []).append(pos)
        for positions in groups.values():
            policy = kernel.slots[positions[0]].policy
            sub = np.asarray(positions, dtype=np.int64)
            nxt = policy.next_request_batch(
                request=kernel.request[sub],
                request_int=req_int[sub],
                allotment=alloc_arr[sub],
                work=batch_out.work[sub],
                span=batch_out.span[sub],
                steps=batch_out.steps[sub],
            )
            if nxt is None:
                scalar_fb = True
                _scalar_feedback(kernel, positions, group, length, start)
            else:
                kernel.request[sub] = nxt
    return scalar_fb


def _requests_hold(
    kernel: MultiBatchKernel,
    alloc_arr: np.ndarray,
    req_int: np.ndarray,
    work: np.ndarray,
    span: np.ndarray,
    steps: np.ndarray,
    quanta: int,
) -> bool:
    """Whether every slot's feedback recurrence, fed the predicted repeated
    record ``quanta`` times, leaves its request bit-identical (see
    :meth:`~repro.core.feedback.FeedbackPolicy.advance_request_batch`)."""
    uniform = kernel.uniform_policy
    if uniform is not None:
        return (
            uniform.advance_request_batch(
                request=kernel.request,
                request_int=req_int,
                allotment=alloc_arr,
                work=work,
                span=span,
                steps=steps,
                quanta=quanta,
            )
            is not None
        )
    groups: dict[int, list[int]] = {}
    for pos, slot in enumerate(kernel.slots):
        groups.setdefault(id(slot.policy), []).append(pos)
    request = kernel.request
    for positions in groups.values():
        policy = kernel.slots[positions[0]].policy
        sub = np.asarray(positions, dtype=np.int64)
        nxt = policy.advance_request_batch(
            request=request[sub],
            request_int=req_int[sub],
            allotment=alloc_arr[sub],
            work=work[sub],
            span=span[sub],
            steps=steps[sub],
            quanta=quanta,
        )
        if nxt is None:
            return False
    return True


def _attempt_superstep(
    kernel: MultiBatchKernel,
    log: QuantumLog,
    allocator: Allocator,
    group: QuantumGroup,
    req_int: np.ndarray,
    avail: np.ndarray,
    alloc_arr: np.ndarray,
    processors: int,
    length: int,
    start: int,
    *,
    next_release: int | None,
    budget: int,
) -> int:
    """Fast-forward up to ``budget`` quanta past the one that just executed
    at ``start``; returns how many were skipped (0 when any fixed-point
    check fails).

    The checks, in order: the quantum's feedback left every request at its
    pre-quantum value (else next quantum's allocation inputs differ); every
    slot's remaining chunk sustains ``K >= 1`` pure quanta under the same
    allotment (closed form, also bounding ``K``); no pending release lands
    inside the window (admissions happen at boundaries ``<= t``, so quanta
    starting at ``start+L .. start+K*L`` need ``next_release > start+K*L``);
    the feedback recurrences hold the requests fixed over the predicted
    records; and the allocator certifies (and state-advances through) ``K``
    repeats of its grants.  Everything that passes is exact, so the emitted
    repeat-group and the fast-forwarded arena state are byte-identical to
    executing the ``K`` quanta one at a time.
    """
    if kernel.request.tobytes() != group.request.tobytes():
        return 0
    plan = kernel.superstep_plan(alloc_arr, length)
    if plan is None:
        return 0
    limit = int(plan.quanta.min())
    if next_release is not None:
        limit = min(limit, (next_release - start - 1) // length)
    limit = min(limit, budget)
    if limit < 1:
        return 0
    steps_pred = np.full(len(kernel.slots), length, dtype=np.int64)
    if not _requests_hold(
        kernel, alloc_arr, req_int, plan.delta, plan.span, steps_pred, limit
    ):
        return 0
    ids_sorted, order = kernel.allocation_order()
    k = allocator.allocation_fixed_point(
        ids_sorted, req_int[order], alloc_arr[order], processors, limit
    )
    if k < 1:
        return 0
    log.append_quantum(
        start_step=start + length,
        repeat=k,
        index0=kernel.next_q,
        request=group.request,
        request_int=req_int,
        available=avail,
        allotment=alloc_arr,
        work=plan.delta,
        span=plan.span,
        steps=steps_pred,
    )
    kernel.apply_superstep(k, plan, alloc_arr, length)
    return k


@dataclass(slots=True)
class _ActiveJob:
    spec: JobSpec
    executor: JobExecutor
    trace: JobTrace
    request: float
    seq: int
    next_q: int = 1


def simulate_job_set(
    specs: Sequence[JobSpec],
    allocator: Allocator,
    processors: int,
    *,
    quantum_length: int = 1000,
    max_quanta: int = 10_000_000,
    overhead: ReallocationOverhead = NO_OVERHEAD,
    strict: bool = False,
    batch: BatchChoice = "auto",
    superstep: SuperstepChoice | None = None,
    shards: int | Literal["auto"] | None = None,
    task_timeout: float | None = None,
    retries: int | None = None,
) -> MultiJobResult:
    """Run a job set to completion under a multiprogrammed allocator.

    Job ids default to the spec's position in ``specs``; explicit
    ``JobSpec.job_id`` values must be unique.  ``strict=True`` enables the
    engines' per-step invariant checking for every job.  ``batch`` selects
    the execution backend and ``superstep`` the multi-quantum fast-forwarding
    on top of it (see the module docstring); results do not depend on either.
    ``superstep=None`` (the default) resolves to :data:`SUPERSTEP_ENV_VAR`
    if set, else ``"auto"``.

    ``shards`` selects the *sharded* executor (:mod:`repro.sim.sharded`):
    ``None`` or ``1`` runs the centralized per-quantum loop below; ``N >= 2``
    (or ``"auto"`` for one worker per core) advances each allocation group in
    a window of quanta per supervised worker dispatch, meeting at the
    rebalancing/admission barriers.  Traces are byte-identical either way —
    sharding, like batching and supersteps, is an execution choice, not a
    policy choice.  ``task_timeout``/``retries`` apply to the sharded
    dispatch only (they thread through ``runtime.run_supervised``).
    """
    if superstep is None:
        superstep = cast(
            SuperstepChoice, os.environ.get(SUPERSTEP_ENV_VAR, "auto")
        )
    if processors < 1:
        raise ValueError("need at least one processor")
    if quantum_length < 1:
        raise ValueError("quantum length must be >= 1")
    if not specs:
        raise ValueError("job set is empty")
    if batch not in ("auto", "off"):
        raise ValueError(f"unknown batch mode {batch!r}; pick 'auto' or 'off'")
    if superstep not in ("auto", "off"):
        raise ValueError(
            f"unknown superstep mode {superstep!r}; pick 'auto' or 'off'"
        )
    if shards is not None and shards != "auto":
        if not isinstance(shards, int):
            raise ValueError(f"unknown shards mode {shards!r}; pick 'auto' or N >= 1")
        if shards < 1:
            raise ValueError("shard count must be >= 1 (or 'auto')")
    if shards == "auto" or (isinstance(shards, int) and shards > 1):
        if batch == "off":
            raise ValueError(
                "sharded execution runs on the batched kernel; "
                "batch='off' requires shards=None or 1"
            )
        from .sharded import simulate_job_set_sharded

        return simulate_job_set_sharded(
            specs,
            allocator,
            processors,
            quantum_length=quantum_length,
            max_quanta=max_quanta,
            overhead=overhead,
            strict=strict,
            superstep=superstep,
            shards=shards,
            task_timeout=task_timeout,
            retries=retries,
        )
    pending: list[tuple[int, int, JobSpec]] = []  # (release, id, spec)
    seen_ids: set[int] = set()
    for i, spec in enumerate(specs):
        jid = spec.job_id if spec.job_id is not None else i
        if jid in seen_ids:
            raise ValueError(f"duplicate job id {jid}")
        seen_ids.add(jid)
        pending.append((spec.release_time, jid, spec))
    pending.sort(key=lambda item: (item[0], item[1]))
    released = {jid: rel for rel, jid, _ in pending}

    kernel = MultiBatchKernel(strict=strict) if batch == "auto" else None
    log = QuantumLog(quantum_length) if kernel is not None else None
    layout_dirty = True
    do_superstep = superstep == "auto"
    fallback: dict[int, _ActiveJob] = {}
    done: dict[int, JobTrace] = {}
    t = 0
    quanta = 0
    seq = 0
    cursor = 0  # next admission index into the sorted release list
    L = quantum_length

    while (
        cursor < len(pending)
        or fallback
        or (kernel is not None and len(kernel) > 0)
    ):
        if quanta >= max_quanta:
            raise RuntimeError(f"job set did not finish within {max_quanta} quanta")
        # Admit jobs released at or before this boundary.
        while cursor < len(pending) and pending[cursor][0] <= t:
            rel, jid, spec = pending[cursor]
            cursor += 1
            trace = JobTrace(quantum_length=L, release_time=rel, job_id=jid)
            profile = (
                segment_profile(spec, strict=strict) if kernel is not None else None
            )
            if profile is not None:
                assert kernel is not None
                kernel.admit(
                    jid=jid,
                    seq=seq,
                    spec=spec,
                    trace=trace,
                    profile=profile,
                    request=spec.feedback.first_request(),
                )
                layout_dirty = True
            else:
                executor = make_executor(
                    spec.job, spec.discipline, strict=strict, engine=spec.engine
                )
                fallback[jid] = _ActiveJob(
                    spec=spec,
                    executor=executor,
                    trace=trace,
                    request=spec.feedback.first_request(),
                    seq=seq,
                )
            seq += 1
        nk = len(kernel) if kernel is not None else 0
        if not fallback and nk == 0:
            # Fast-forward to the boundary at/after the next release.
            next_release = pending[cursor][0]
            t = max(t + L, ((next_release + L - 1) // L) * L)
            continue

        # One machine-wide allocation over every active job.  When the kernel
        # holds the whole active set its array representation carries straight
        # through allocation: requests go to the allocator's array-native
        # entry point (id-sorted, as its mapping path would scan them) and the
        # validated grants scatter back to slot order — no per-quantum dicts.
        # Any fallback job, or an allocator without an array path, reverts to
        # the mapping interface in admission order (content-identical either
        # way; order preserved for fidelity to the serial loop under
        # order-sensitive allocators).
        alloc_arr: np.ndarray | None = None
        array_grants = False
        if nk:
            assert kernel is not None
            kernel_req_int = kernel.integer_requests()
            if not fallback:
                ids_sorted, order = kernel.allocation_order()
                req_sorted = kernel_req_int[order]
                grants = allocator.allocate_batch(ids_sorted, req_sorted, processors)
                if grants is not None:
                    validate_allocation_arrays(
                        ids_sorted, req_sorted, grants, processors
                    )
                    alloc_arr = np.empty(nk, dtype=np.int64)
                    alloc_arr[order] = grants
                    array_grants = True
        if alloc_arr is None:
            if nk:
                assert kernel is not None
                kri = kernel_req_int.tolist()
                if fallback:
                    by_seq = [
                        (slot.seq, slot.jid, ri)
                        for slot, ri in zip(kernel.slots, kri)
                    ]
                    for jid, job in fallback.items():
                        by_seq.append((job.seq, jid, integer_request(job.request)))
                    by_seq.sort()
                    requests = {jid: ri for _, jid, ri in by_seq}
                else:
                    requests = dict(zip(kernel.jids, kri))
            else:
                requests = {
                    jid: integer_request(job.request) for jid, job in fallback.items()
                }
            alloc = allocator.allocate(requests, processors)
            validate_allocation(requests, alloc, processors)
            if nk:
                assert kernel is not None
                alloc_arr = np.fromiter(
                    map(alloc.__getitem__, kernel.jids), dtype=np.int64, count=nk
                )

        finished_jobs: list[tuple[int, int, JobTrace]] = []  # (seq, id, trace)

        scalar_fb = False
        if nk:
            assert kernel is not None
            assert alloc_arr is not None
            assert log is not None
            batch_out = kernel.execute_quantum(alloc_arr, L, overhead)
            # Under a partitioning allocator the processors "available" to a
            # job are exactly its (possibly trimmed) share when deprived;
            # when satisfied the machine-wide P upper-bounds availability.
            avail = np.where(alloc_arr < kernel_req_int, alloc_arr, processors)
            # Columnar record emission: one vectorized validation pass over
            # the quantum's aligned columns, appended to the run-wide log as
            # a single group — no per-slot python, no record objects.  The
            # group snapshots ``index0``/``request`` before the bump and the
            # in-place feedback writes below; the other columns are fresh
            # arrays this iteration never touches again.
            if layout_dirty:
                log.set_layout(kernel.jids)
                layout_dirty = False
            group = log.append_quantum(
                start_step=t,
                repeat=1,
                index0=kernel.next_q,
                request=kernel.request,
                request_int=kernel_req_int,
                available=avail,
                allotment=alloc_arr,
                work=batch_out.work,
                span=batch_out.span,
                steps=batch_out.steps,
            )
            kernel.bump_quantum()
            finished_pos = np.flatnonzero(batch_out.finished).tolist()
            scalar_fb = _batch_feedback(
                kernel, group, kernel_req_int, alloc_arr, batch_out,
                finished_pos, L, t,
            )
            for pos in finished_pos:
                slot = kernel.slots[pos]
                finished_jobs.append((slot.seq, slot.jid, slot.trace))
            if finished_pos:
                kernel.remove(finished_pos)
                layout_dirty = True

        for jid, job in fallback.items():
            a = alloc[jid]
            prev_a = job.trace.records[-1].allotment if job.trace.records else None
            ex = run_quantum_with_overhead(job.executor, a, L, prev_a, overhead)
            record = QuantumRecord(
                index=job.next_q,
                request=job.request,
                request_int=requests[jid],
                available=a if a < requests[jid] else processors,
                allotment=a,
                work=ex.work,
                span=ex.span,
                steps=ex.steps,
                quantum_length=L,
                start_step=t,
            )
            job.trace.append(record)
            job.next_q += 1
            if ex.finished:
                finished_jobs.append((job.seq, jid, job.trace))
            else:
                job.request = job.spec.feedback.next_request(record)
        # Finished traces land in admission order, matching the serial
        # loop's active-dict iteration order byte for byte.
        for _seq, jid, trace in sorted(finished_jobs):
            fallback.pop(jid, None)
            done[jid] = trace
        # Superstep: with no event this quantum — nothing finished, no
        # fallback jobs, grants from the array path, no scalar feedback —
        # try to fast-forward through the quanta the whole system provably
        # repeats.  ``skipped`` quanta were emitted and applied wholesale.
        skipped = 0
        if (
            do_superstep
            and nk
            and array_grants
            and not scalar_fb
            and not fallback
            and not finished_jobs
        ):
            assert kernel is not None
            assert log is not None
            assert alloc_arr is not None
            skipped = _attempt_superstep(
                kernel,
                log,
                allocator,
                group,
                kernel_req_int,
                avail,
                alloc_arr,
                processors,
                L,
                t,
                next_release=pending[cursor][0] if cursor < len(pending) else None,
                budget=max_quanta - quanta - 1,
            )
        t += (skipped + 1) * L
        quanta += skipped + 1

    if log is not None:
        log.build_traces(done)
    return MultiJobResult(
        traces=done,
        processors=processors,
        quantum_length=L,
        quanta_elapsed=quanta,
        released=released,
    )
