"""Multiprogrammed two-level scheduling simulation.

A set of jobs space-shares ``P`` processors (paper Sections 6.3 and 7, second
simulation set).  Scheduling quanta are machine-wide and synchronized: at
every boundary ``t = 0, L, 2L, ...`` the allocator divides the processors
among the active jobs' requests, each job runs its quantum, and newly
released jobs join at the next boundary.

A job that completes mid-quantum releases its processors at its completion
step for accounting purposes (no further waste accrues), but they become
re-allocatable only at the next boundary — the conservative reading of the
paper's quantum-granularity reallocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..allocators.base import Allocator, validate_allocation
from ..core.overhead import NO_OVERHEAD, ReallocationOverhead
from ..core.types import JobTrace, QuantumRecord, integer_request
from ..engine.base import JobExecutor
from .jobs import JobSpec, make_executor
from .metrics import makespan, mean_response_time
from .single import run_quantum_with_overhead

__all__ = ["MultiJobResult", "simulate_job_set"]


@dataclass(slots=True)
class MultiJobResult:
    """Traces and set-level metrics of one multiprogrammed run."""

    traces: dict[int, JobTrace]
    processors: int
    quantum_length: int
    quanta_elapsed: int = 0
    released: dict[int, int] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        return makespan(self.traces.values())

    @property
    def mean_response_time(self) -> float:
        return mean_response_time(self.traces.values())

    @property
    def total_waste(self) -> int:
        return sum(t.total_waste for t in self.traces.values())

    @property
    def total_work(self) -> int:
        return sum(t.total_work for t in self.traces.values())


@dataclass(slots=True)
class _ActiveJob:
    spec: JobSpec
    executor: JobExecutor
    trace: JobTrace
    request: float
    next_q: int = 1


def simulate_job_set(
    specs: Sequence[JobSpec],
    allocator: Allocator,
    processors: int,
    *,
    quantum_length: int = 1000,
    max_quanta: int = 10_000_000,
    overhead: ReallocationOverhead = NO_OVERHEAD,
    strict: bool = False,
) -> MultiJobResult:
    """Run a job set to completion under a multiprogrammed allocator.

    Job ids default to the spec's position in ``specs``; explicit
    ``JobSpec.job_id`` values must be unique.  ``strict=True`` enables the
    engines' per-step invariant checking for every job.
    """
    if processors < 1:
        raise ValueError("need at least one processor")
    if quantum_length < 1:
        raise ValueError("quantum length must be >= 1")
    if not specs:
        raise ValueError("job set is empty")

    pending: list[tuple[int, int, JobSpec]] = []  # (release, id, spec)
    seen_ids: set[int] = set()
    for i, spec in enumerate(specs):
        jid = spec.job_id if spec.job_id is not None else i
        if jid in seen_ids:
            raise ValueError(f"duplicate job id {jid}")
        seen_ids.add(jid)
        pending.append((spec.release_time, jid, spec))
    pending.sort(key=lambda item: (item[0], item[1]))
    released = {jid: rel for rel, jid, _ in pending}

    active: dict[int, _ActiveJob] = {}
    done: dict[int, JobTrace] = {}
    t = 0
    quanta = 0
    L = quantum_length

    while pending or active:
        if quanta >= max_quanta:
            raise RuntimeError(f"job set did not finish within {max_quanta} quanta")
        # Admit jobs released at or before this boundary.
        while pending and pending[0][0] <= t:
            rel, jid, spec = pending.pop(0)
            executor = make_executor(
                spec.job, spec.discipline, strict=strict, engine=spec.engine
            )
            trace = JobTrace(quantum_length=L, release_time=rel, job_id=jid)
            active[jid] = _ActiveJob(
                spec=spec,
                executor=executor,
                trace=trace,
                request=spec.feedback.first_request(),
            )
        if not active:
            # Fast-forward to the boundary at/after the next release.
            next_release = pending[0][0]
            t = max(t + L, ((next_release + L - 1) // L) * L)
            continue

        requests = {jid: integer_request(job.request) for jid, job in active.items()}
        alloc = allocator.allocate(requests, processors)
        validate_allocation(requests, alloc, processors)

        finished_ids: list[int] = []
        for jid, job in active.items():
            a = alloc[jid]
            prev_a = job.trace.records[-1].allotment if job.trace.records else None
            ex = run_quantum_with_overhead(job.executor, a, L, prev_a, overhead)
            record = QuantumRecord(
                index=job.next_q,
                request=job.request,
                request_int=requests[jid],
                # Under a partitioning allocator the processors "available" to
                # a job are exactly its (possibly trimmed) share when deprived;
                # when satisfied the machine-wide P upper-bounds availability.
                available=a if a < requests[jid] else processors,
                allotment=a,
                work=ex.work,
                span=ex.span,
                steps=ex.steps,
                quantum_length=L,
                start_step=t,
            )
            job.trace.append(record)
            job.next_q += 1
            if ex.finished:
                finished_ids.append(jid)
            else:
                job.request = job.spec.feedback.next_request(record)
        for jid in finished_ids:
            done[jid] = active.pop(jid).trace
        t += L
        quanta += 1

    return MultiJobResult(
        traces=done,
        processors=processors,
        quantum_length=L,
        quanta_elapsed=quanta,
        released=released,
    )
