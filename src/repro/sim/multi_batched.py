"""Multi-job batched quantum kernel: one numpy step loop for the whole set.

:func:`repro.sim.multi.simulate_job_set` steps every active job through each
machine-wide scheduling quantum.  The serial loop calls one executor per job
per quantum; with dozens of active jobs (fig6 runs up to ``P = 128``), the
per-call python overhead — not the scheduling arithmetic — dominates the
wall time.  This module lifts the per-job closed form to the *job set*: all
active jobs whose structure is counts-determined are packed into flat numpy
arrays, and an entire quantum (the allocation already computed by DEQ)
executes as array arithmetic over every job at once.

What qualifies
--------------
A job is *batchable* when the executor :func:`repro.sim.jobs.make_executor`
would select for it is one of the closed-form engines, i.e. when its
execution is fully described by a ``(width, levels)`` segment profile:

- a :class:`~repro.engine.phased.PhasedJob` (always runs the phased closed
  form — its phases are the profile), or
- a level-major :class:`~repro.dag.graph.Dag` headed for the batched kernel
  (``engine="batched"``, or ``engine="auto"`` in non-strict mode — the
  cached :class:`~repro.dag.structure.LevelStructure` supplies the profile,
  including the permuted-chain structures PR 5 lifted into eligibility).

Everything else (reference-engine dags, executor factories such as work
stealing, strict-mode ``engine="auto"`` dags) falls back per job to the
existing executors, interleaved with the batched group inside the same
quantum — see :func:`segment_profile`.

Why the vectorization is exact
------------------------------
Per quantum, the serial closed form advances each job through a sequence of
``(segment, regime)`` chunks (see :class:`~repro.engine.phased.PhasedExecutor`
— regime 1 sustains ``min(a, w)`` tasks/step, regime 2 drains the last
level).  The kernel's masked vector loop processes, on iteration ``j``, the
``j``-th chunk of every still-running job.  For each job the chunk sequence —
and every integer and IEEE-754 operation inside it, in the same order — is
identical to the serial loop's, so work, span, steps, and the feedback
recurrences that consume them are *bit-identical*, not merely close.  The
test suite cross-validates entire multiprogrammed runs (traces, artifacts)
against the serial path (``tests/test_sim_multi_batched.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.feedback import FeedbackPolicy
from ..core.overhead import ReallocationOverhead
from ..core.types import JobTrace
from ..dag.graph import Dag
from ..engine.batched import supports_batched
from ..engine.phased import PhasedJob
from ..verify.violations import (
    InvariantError,
    V_IDLE_WITH_READY_TASKS,
    V_SPAN_EXCEEDS_STEPS,
    V_WORK_EXCEEDS_CAPACITY,
    Violation,
)
from .jobs import JobSpec
from .superstep import SuperstepArena, SuperstepPlan, pure_quantum_counts

__all__ = ["MultiBatchKernel", "QuantumBatch", "SlotState", "segment_profile"]


def segment_profile(
    spec: JobSpec, *, strict: bool
) -> tuple[tuple[int, int], ...] | None:
    """The ``(width, levels)`` segment profile of a batchable job, else None.

    Mirrors :func:`repro.sim.jobs.make_executor` exactly: a profile is
    returned precisely when the executor the serial path would build is a
    closed-form engine whose results the kernel reproduces bit-for-bit.  A
    non-level-major dag with ``engine="batched"`` also returns ``None`` — the
    fallback path's ``make_executor`` then raises the canonical
    :class:`~repro.engine.batched.UnsupportedDagStructure` at admission,
    matching the serial loop's behaviour.
    """
    job = spec.job
    if isinstance(job, PhasedJob):
        # make_executor always picks PhasedExecutor for phased jobs.
        return tuple((p.width, p.levels) for p in job.phases)
    if isinstance(job, Dag):
        if spec.engine == "batched":
            if not job.structure.level_major:
                return None
            return tuple(job.structure.segment_phases())
        if (
            spec.engine == "auto"
            and not strict
            and supports_batched(job, spec.discipline)
        ):
            return tuple(job.structure.segment_phases())
    return None


@dataclass(slots=True)
class _Slot:
    """Python-side metadata of one batched job (the arena holds the rest)."""

    jid: int
    seq: int
    """Admission sequence number — orders finished-trace insertion so the
    result dict matches the serial loop's byte for byte."""
    spec: JobSpec
    policy: FeedbackPolicy
    trace: JobTrace


@dataclass(slots=True)
class SlotState:
    """A slot's complete mid-run state, detached from its kernel.

    The sharded executor migrates jobs between per-group kernels at
    rebalancing barriers by exporting a :class:`SlotState` from one kernel
    and importing it into another; every field a fresh admission would
    initialize is carried verbatim, so the migrated job's subsequent quanta
    are bit-identical to never having moved.
    """

    jid: int
    seq: int
    spec: JobSpec
    trace: JobTrace
    request: float
    cur: int
    done: int
    rem: int
    prev_allot: int
    next_q: int
    seg_w: np.ndarray
    seg_total: np.ndarray


@dataclass(frozen=True, slots=True)
class QuantumBatch:
    """Per-slot results of one batched quantum (arrays aligned to slots)."""

    work: np.ndarray
    span: np.ndarray
    steps: np.ndarray
    """Total recorded steps including any reallocation-overhead charge."""
    finished: np.ndarray


def _strict_check(
    work: np.ndarray, span: np.ndarray, steps: np.ndarray, allotment: np.ndarray
) -> None:
    """Re-validate every executed quantum against B-Greedy semantics (strict
    mode) — the same three invariants the per-job engines re-check."""
    bad = work > allotment * steps
    if np.any(bad):
        i = int(np.flatnonzero(bad)[0])
        raise InvariantError(
            Violation(
                V_WORK_EXCEEDS_CAPACITY,
                f"multi-job kernel produced T1(q)={int(work[i])} > a*steps="
                f"{int(allotment[i] * steps[i])}",
            )
        )
    bad = work < steps
    if np.any(bad):
        i = int(np.flatnonzero(bad)[0])
        raise InvariantError(
            Violation(
                V_IDLE_WITH_READY_TASKS,
                f"multi-job kernel produced T1(q)={int(work[i])} < steps="
                f"{int(steps[i])}; greedy completes at least one task per step",
            )
        )
    bad = span > steps + 1e-9
    if np.any(bad):
        i = int(np.flatnonzero(bad)[0])
        raise InvariantError(
            Violation(
                V_SPAN_EXCEEDS_STEPS,
                f"multi-job kernel produced Tinf(q)={float(span[i])} > steps="
                f"{int(steps[i])}; breadth-first advances at most one level "
                "per step",
            )
        )


_EMPTY_I64 = np.zeros(0, dtype=np.int64)

_VECTOR_MIN = 12
"""Minimum live-slot count for a vectorized chunk iteration to beat the
scalar closed form (a fixed stack of ~25 small-array numpy ops versus well
under a microsecond per scalar chunk)."""


class MultiBatchKernel:
    """Packed execution state of every batchable active job.

    Per-slot state — ``request``, current segment, tasks done on it,
    remaining work, previous allotment, next quantum index — and the packed
    per-segment ``(width, total)`` tables all live in one preallocated
    :class:`~repro.sim.superstep.SuperstepArena`.  Admission writes arena
    rows in place and removal compacts in place, so the hot per-quantum path
    is pure array arithmetic over views of the arena's live prefix; only the
    sorted-id allocation-order cache is rebuilt (lazily) when membership
    changes.
    """

    __slots__ = (
        "slots",
        "jids",
        "_arena",
        "_sorted_jids",
        "_id_order",
        "_dirty",
        "_strict",
        "_policy_counts",
    )

    def __init__(self, *, strict: bool = False):
        self.slots: list[_Slot] = []
        self.jids: list[int] = []
        """Job ids aligned to ``slots`` (kept as a plain list for cheap
        per-quantum allocation-dict construction and gathering)."""
        self._arena = SuperstepArena()
        self._sorted_jids = _EMPTY_I64.copy()
        self._id_order = _EMPTY_I64.copy()
        self._dirty = False
        self._strict = bool(strict)
        self._policy_counts: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.slots)

    # -- arena views ----------------------------------------------------
    # Each property exposes the live prefix of one arena column.  Getters
    # return a view (writes through element/slice assignment mutate the
    # arena); setters copy values in place, so rebinding statements in the
    # quantum path (``self._done = np.where(...)``) keep working unchanged.

    @property
    def request(self) -> np.ndarray:
        """Real-valued controller requests ``d(q)``, aligned to ``slots``.
        The simulation loop reads it to build records and writes the
        feedback recurrences' results back into it (in place)."""
        return self._arena.request[: self._arena.n]

    @request.setter
    def request(self, values: np.ndarray) -> None:
        self._arena.request[: self._arena.n] = values

    @property
    def next_q(self) -> np.ndarray:
        """Per-slot index of the *next* quantum record (starts at 1)."""
        return self._arena.next_q[: self._arena.n]

    @property
    def _cur(self) -> np.ndarray:
        return self._arena.cur[: self._arena.n]

    @_cur.setter
    def _cur(self, values: np.ndarray) -> None:
        self._arena.cur[: self._arena.n] = values

    @property
    def _done(self) -> np.ndarray:
        return self._arena.done[: self._arena.n]

    @_done.setter
    def _done(self, values: np.ndarray) -> None:
        self._arena.done[: self._arena.n] = values

    @property
    def _rem(self) -> np.ndarray:
        return self._arena.rem[: self._arena.n]

    @_rem.setter
    def _rem(self, values: np.ndarray) -> None:
        self._arena.rem[: self._arena.n] = values

    @property
    def _prev_allot(self) -> np.ndarray:
        return self._arena.prev_allot[: self._arena.n]

    @_prev_allot.setter
    def _prev_allot(self, values: np.ndarray) -> None:
        self._arena.prev_allot[: self._arena.n] = values

    @property
    def _seg_w(self) -> np.ndarray:
        return self._arena.seg_w[: self._arena.seg_used]

    @property
    def _seg_total(self) -> np.ndarray:
        return self._arena.seg_total[: self._arena.seg_used]

    @property
    def _seg_off(self) -> np.ndarray:
        return self._arena.seg_off[: self._arena.n]

    @property
    def uniform_policy(self) -> FeedbackPolicy | None:
        """The single feedback-policy instance shared by every slot, or
        ``None`` when slots disagree.  Experiment job sets share one policy
        object across jobs, so the simulation loop's feedback step can
        usually issue one whole-array batch call instead of grouping."""
        if len(self._policy_counts) == 1:
            return self.slots[0].policy
        return None

    # ------------------------------------------------------------------

    def admit(
        self,
        *,
        jid: int,
        seq: int,
        spec: JobSpec,
        trace: JobTrace,
        profile: tuple[tuple[int, int], ...],
        request: float,
    ) -> None:
        """Add one batchable job at a quantum boundary."""
        seg_w = np.asarray([w for w, _ in profile], dtype=np.int64)
        seg_k = np.asarray([k for _, k in profile], dtype=np.int64)
        seg_total = seg_w * seg_k
        self.slots.append(
            _Slot(jid=jid, seq=seq, spec=spec, policy=spec.feedback, trace=trace)
        )
        self.jids.append(jid)
        pid = id(spec.feedback)
        self._policy_counts[pid] = self._policy_counts.get(pid, 0) + 1
        self._arena.admit(request=float(request), seg_w=seg_w, seg_total=seg_total)
        self._dirty = True

    def remove(self, positions: list[int]) -> None:
        """Drop finished slots (their traces were already handed out)."""
        for pos in positions:
            pid = id(self.slots[pos].policy)
            count = self._policy_counts[pid] - 1
            if count:
                self._policy_counts[pid] = count
            else:
                del self._policy_counts[pid]
        keep = np.ones(len(self.slots), dtype=bool)
        keep[positions] = False
        self.slots = [s for s, k in zip(self.slots, keep) if k]
        self.jids = [j for j, k in zip(self.jids, keep) if k]
        self._arena.remove(keep)
        self._dirty = True

    def export_slots(self, positions: list[int]) -> list[SlotState]:
        """Detach the given slots (for migration to another group kernel),
        removing them from this kernel; arrays are copied, so the states
        stay valid across the arena compaction."""
        arena = self._arena
        states: list[SlotState] = []
        for pos in positions:
            slot = self.slots[pos]
            off = int(arena.seg_off[pos])
            ln = int(arena.seg_len[pos])
            states.append(
                SlotState(
                    jid=slot.jid,
                    seq=slot.seq,
                    spec=slot.spec,
                    trace=slot.trace,
                    request=float(arena.request[pos]),
                    cur=int(arena.cur[pos]),
                    done=int(arena.done[pos]),
                    rem=int(arena.rem[pos]),
                    prev_allot=int(arena.prev_allot[pos]),
                    next_q=int(arena.next_q[pos]),
                    seg_w=arena.seg_w[off : off + ln].copy(),
                    seg_total=arena.seg_total[off : off + ln].copy(),
                )
            )
        self.remove(positions)
        return states

    def import_slot(self, state: SlotState) -> None:
        """Admit a migrated slot with its mid-run state intact (the inverse
        of :meth:`export_slots`)."""
        self.slots.append(
            _Slot(
                jid=state.jid,
                seq=state.seq,
                spec=state.spec,
                policy=state.spec.feedback,
                trace=state.trace,
            )
        )
        self.jids.append(state.jid)
        pid = id(state.spec.feedback)
        self._policy_counts[pid] = self._policy_counts.get(pid, 0) + 1
        arena = self._arena
        arena.admit(
            request=state.request, seg_w=state.seg_w, seg_total=state.seg_total
        )
        row = arena.n - 1
        arena.cur[row] = state.cur
        arena.done[row] = state.done
        arena.rem[row] = state.rem
        arena.prev_allot[row] = state.prev_allot
        arena.next_q[row] = state.next_q
        self._dirty = True

    # -- pickling (sharded worker round trips) --------------------------
    # ``_policy_counts`` is keyed on object identity, which does not survive
    # a pickle; rebuild it from the slots on the other side.

    def __getstate__(self) -> dict[str, object]:
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name != "_policy_counts"
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        counts: dict[int, int] = {}
        for slot in self.slots:
            pid = id(slot.policy)
            counts[pid] = counts.get(pid, 0) + 1
        self._policy_counts = counts

    def _repack(self) -> None:
        """Rebuild the sorted-id allocation-order cache (segment tables no
        longer repack — the arena maintains them incrementally)."""
        if not self._dirty:
            return
        if self.slots:
            jids = np.asarray(self.jids, dtype=np.int64)
            self._id_order = np.argsort(jids, kind="stable")  # jids are unique
            self._sorted_jids = jids[self._id_order]
        else:
            self._sorted_jids = _EMPTY_I64.copy()
            self._id_order = _EMPTY_I64.copy()
        self._dirty = False

    def allocation_order(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted_jids, order)`` for the array-native allocation path:
        ``sorted_jids`` are the slots' job ids in increasing order and
        ``order`` the slot positions producing it (``jids[order[i]] ==
        sorted_jids[i]``).  Cached across quanta, rebuilt with the packed
        tables when the slot set changes."""
        self._repack()
        return self._sorted_jids, self._id_order

    # ------------------------------------------------------------------

    def integer_requests(self) -> np.ndarray:
        """Vectorized :func:`repro.core.types.integer_request` over all slots
        (same validation, same ceiling-with-tolerance arithmetic)."""
        d = self.request
        ok = d >= 0  # NaN fails the comparison, so one mask catches both
        if not ok.all():
            offender = float(d[int(np.flatnonzero(~ok)[0])])
            raise ValueError(f"invalid processor request {offender!r}")
        return np.maximum(1, np.ceil(d - 1e-9).astype(np.int64))

    def execute_quantum(
        self, alloc: np.ndarray, length: int, overhead: ReallocationOverhead
    ) -> QuantumBatch:
        """Run one machine-wide quantum for every slot as array arithmetic.

        ``alloc`` is the allocator's per-slot grant (aligned to ``slots``).
        Replicates :func:`repro.sim.single.run_quantum_with_overhead` — an
        allotment change charges overhead steps up front, and a quantum fully
        consumed by overhead executes nothing — then advances every running
        slot through its ``(segment, regime)`` chunks.

        Chunk counts are heavily skewed (one or two per job-quantum in the
        paper's workloads), so vectorized iterations — each a fixed stack of
        array ops — only pay while many slots are still running.  The loop
        therefore goes wide only above :data:`_VECTOR_MIN` live slots and
        finishes the stragglers with the scalar closed form, which is both
        faster on a handful of slots and trivially bit-identical to the
        per-job engines.
        """
        self._repack()
        n = len(self.slots)
        a = alloc
        if overhead.is_free:
            # Fast path: no per-slot costs, every slot executes the full
            # quantum, and recorded steps equal executed steps.  Every slot
            # is live at the quantum's start (finished slots were removed at
            # the boundary), so the first chunk runs unmasked on the full
            # arrays — no gathers, no scatters.
            if n and int(a.min()) < 1:
                # Same guard the per-job engines apply
                # (base._check_quantum_args).
                raise ValueError("allotment must be >= 1 for an active job")
            g = self._seg_off + self._cur
            w = self._seg_w[g]
            total = self._seg_total[g]
            done = self._done
            boundary = total - w
            regime1 = done < boundary
            rate = np.minimum(a, w)
            remaining = total - done
            need = np.where(
                regime1, -(-(boundary - done) // rate), -(-remaining // a)
            )
            use = np.minimum(length, need)
            delta = np.where(regime1, rate * use, np.minimum(a * use, remaining))
            done = done + delta
            work = delta
            span = delta / w
            steps_left = length - use
            self._rem -= delta
            seg_done = done == total
            self._cur += seg_done
            self._done = np.where(seg_done, 0, done)

            live = np.flatnonzero((steps_left > 0) & (self._rem > 0))
            while live.size >= _VECTOR_MIN:
                live = self._advance_masked(live, a, work, span, steps_left)
            if live.size:
                self._finish_scalar(live, a, work, span, steps_left)

            steps = length - steps_left
            finished = self._rem == 0
            self._prev_allot = a
            if self._strict and n:
                _strict_check(work, span, steps, a)
            return QuantumBatch(work=work, span=span, steps=steps, finished=finished)
        raw = overhead.fixed + overhead.per_processor * np.abs(a - self._prev_allot)
        costs = np.minimum(length, np.round(raw).astype(np.int64))
        costs[(self._prev_allot < 0) | (a == self._prev_allot)] = 0
        run = length - costs
        execute = run > 0
        if np.any(execute & (a < 1)):
            # As in run_quantum_with_overhead, a quantum fully consumed
            # by overhead never reaches the engine's allotment guard.
            raise ValueError("allotment must be >= 1 for an active job")
        steps_left = np.where(execute, run, 0)

        work = np.zeros(n, dtype=np.int64)
        span = np.zeros(n, dtype=np.float64)

        live = np.flatnonzero((steps_left > 0) & (self._rem > 0))
        while live.size >= _VECTOR_MIN:
            live = self._advance_masked(live, a, work, span, steps_left)
        if live.size:
            self._finish_scalar(live, a, work, span, steps_left)

        used = np.where(execute, run - steps_left, 0)
        steps = np.where(execute, costs + used, length)
        finished = self._rem == 0
        self._prev_allot = a
        if self._strict and n:
            _strict_check(work[execute], span[execute], used[execute], a[execute])
        return QuantumBatch(work=work, span=span, steps=steps, finished=finished)

    def _advance_masked(
        self,
        idx: np.ndarray,
        a: np.ndarray,
        work: np.ndarray,
        span: np.ndarray,
        steps_left: np.ndarray,
    ) -> np.ndarray:
        """One vectorized chunk for the ``idx`` slots; returns the slots
        still running afterwards."""
        al = a[idx]
        cur = self._cur[idx]
        g = self._seg_off[idx] + cur
        w = self._seg_w[g]
        total = self._seg_total[g]
        done = self._done[idx]
        sl = steps_left[idx]
        boundary = total - w  # tasks strictly before the segment's last level
        regime1 = done < boundary
        # Regime 1 sustains min(a, w) tasks/step (the wavefront is full);
        # regime 2 drains the last level at min(a, remaining)/step.  Both
        # need counts are ceiling divisions, evaluated per element with
        # the same integer arithmetic as the serial closed form.
        rate = np.minimum(al, w)
        remaining = total - done
        need = np.where(regime1, -(-(boundary - done) // rate), -(-remaining // al))
        use = np.minimum(sl, need)
        delta = np.where(regime1, rate * use, np.minimum(al * use, remaining))
        done = done + delta
        work[idx] += delta
        span[idx] += delta / w
        steps_left[idx] = sl - use
        self._rem[idx] -= delta
        seg_done = done == total
        self._cur[idx] = cur + seg_done
        self._done[idx] = np.where(seg_done, 0, done)
        return idx[(steps_left[idx] > 0) & (self._rem[idx] > 0)]

    def _finish_scalar(
        self,
        live: np.ndarray,
        a: np.ndarray,
        work: np.ndarray,
        span: np.ndarray,
        steps_left: np.ndarray,
    ) -> None:
        """Drain the remaining live slots with the scalar closed form — a
        direct port of the per-job engines' chunk loop (python ints and the
        same IEEE-754 additions, continuing each slot's in-quantum span
        accumulation in chunk order)."""
        seg_off = self._seg_off
        seg_w = self._seg_w
        seg_total = self._seg_total
        cur = self._cur
        done_arr = self._done
        rem_arr = self._rem
        for i in live.tolist():
            ai = int(a[i])
            sl = int(steps_left[i])
            base = int(seg_off[i])
            c = int(cur[i])
            d = int(done_arr[i])
            rem = int(rem_arr[i])
            wk = int(work[i])
            sp = float(span[i])
            while sl > 0 and rem > 0:
                w = int(seg_w[base + c])
                total = int(seg_total[base + c])
                boundary = total - w
                if d < boundary:
                    rate = ai if ai < w else w
                    need = -(-(boundary - d) // rate)
                    use = sl if sl < need else need
                    delta = rate * use
                else:
                    r = total - d
                    need = -(-r // ai)
                    use = sl if sl < need else need
                    cap = ai * use
                    delta = cap if cap < r else r
                d += delta
                wk += delta
                sp += delta / w
                sl -= use
                rem -= delta
                if d == total:
                    c += 1
                    d = 0
            cur[i] = c
            done_arr[i] = d
            rem_arr[i] = rem
            work[i] = wk
            span[i] = sp
            steps_left[i] = sl

    # ------------------------------------------------------------------
    # Superstep fast-forward
    # ------------------------------------------------------------------

    def bump_quantum(self) -> None:
        """Advance every slot's next-record index by one executed quantum."""
        arena = self._arena
        arena.next_q[: arena.n] += 1

    def superstep_plan(self, alloc: np.ndarray, length: int) -> SuperstepPlan | None:
        """Closed-form count of the identical quanta every slot can
        fast-forward under the (fixed) allotment ``alloc``, or ``None`` when
        some slot reaches an event — a chunk boundary, segment transition,
        or completion — within the very next quantum.

        See :func:`repro.sim.superstep.pure_quantum_counts` for the per-slot
        regime arithmetic; the plan's ``delta``/``span`` are exactly the
        ``work``/``span`` each repeated record will carry.
        """
        arena = self._arena
        n = arena.n
        if not n:
            return None
        g = arena.seg_off[:n] + arena.cur[:n]
        w = arena.seg_w[g]
        total = arena.seg_total[g]
        done = arena.done[:n]
        boundary = total - w
        quanta, delta = pure_quantum_counts(
            alloc=alloc,
            width=w,
            seg_remaining=total - done,
            to_boundary=boundary - done,
            regime1=done < boundary,
            length=length,
        )
        if int(quanta.min()) < 1:
            return None
        return SuperstepPlan(quanta=quanta, delta=delta, span=delta / w)

    def apply_superstep(
        self, k: int, plan: SuperstepPlan, alloc: np.ndarray, length: int
    ) -> None:
        """Fast-forward every slot ``k`` quanta (``k <= plan.quanta.min()``).

        Pure quanta never cross a segment boundary, so only the done/remaining
        counters and the record indices move; the segment cursor and
        ``prev_allot`` (already equal to ``alloc``) are untouched — exactly
        the state ``k`` calls of :meth:`execute_quantum` would leave.
        """
        arena = self._arena
        n = arena.n
        moved = k * plan.delta
        arena.done[:n] += moved
        arena.rem[:n] -= moved
        arena.next_q[:n] += k
        if self._strict:
            _strict_check(
                plan.delta, plan.span, np.full(n, length, dtype=np.int64), alloc
            )
