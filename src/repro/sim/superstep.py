"""Whole-run superstep layer: arena state, columnar quantum log, closed forms.

PR 5's kernel vectorized *within* a machine quantum; the remaining per-quantum
python — state repacking, record materialization, and the quantum loop itself —
still bounded full-scale fig6.  This module supplies the three pieces that
lift the kernel to whole-*run* granularity:

:class:`SuperstepArena`
    One preallocated, amortized-growth home for every per-slot scalar the
    kernel tracks (request, segment cursor, tasks done, remaining work,
    previous allotment, next quantum index) plus the packed per-segment
    ``(width, total)`` tables.  Admission writes rows in place and removal
    compacts in place — no per-quantum ``np.append`` churn, no segment-table
    repacking.

:class:`QuantumLog`
    Columnar record emission for the whole simulation: per quantum the
    simulation loop appends one *group* of aligned column arrays (O(1) python,
    no per-slot work), and a superstep of ``K`` identical quanta appends one
    group with ``repeat=K``.  At the end of the run :meth:`QuantumLog.build_traces`
    expands and sorts the groups once, vectorized, and attaches a
    :class:`~repro.core.columnar.TraceColumns` view to every kernel job's
    trace — records themselves are never built unless someone iterates them.

:func:`pure_quantum_counts`
    The closed form behind multi-quantum fast-forwarding.  A quantum is
    *pure* for a job when a single ``(segment, regime)`` chunk consumes the
    entire quantum — then the quantum's record is fully determined by
    ``(allotment, width, regime)`` and repeats unchanged.  The function
    counts, per slot, how many consecutive pure quanta remain from the
    current state:

    - regime 1 (wavefront full, ``done < total - w``): each pure quantum
      completes ``rate*L`` tasks with ``rate = min(a, w)``; the chunk spans
      the whole quantum while ``boundary - done > rate*(L-1)``, giving
      ``n1 = floor((D - rate*(L-1) - 1) / (rate*L)) + 1`` such quanta (0 when
      ``D <= rate*(L-1)``).  Regime-1 overshoot is bounded by
      ``rate - 1 < w``, so a pure regime-1 quantum can never complete the
      segment.
    - regime 2 (draining the last level): each pure quantum completes
      ``a*L`` tasks; quanta stay pure *and non-completing* while the
      segment's remaining work exceeds ``a*L``, giving
      ``n2 = floor((R - 1) / (a*L))``.  A quantum that finishes the segment
      exactly at the boundary is an *event* (segment transition or job
      completion) and is deliberately left to the normal per-quantum path.

    Every count uses the same int64 ceiling/floor arithmetic as the serial
    chunk loop, so fast-forwarded state (``done += K*delta``) and the
    repeated records (``work = delta``, ``span = delta/w``, ``steps = L``)
    are bit-identical to executing the ``K`` quanta one by one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.columnar import TraceColumns
from ..core.types import JobTrace, quantum_records_from_columns

__all__ = [
    "SuperstepArena",
    "SupersetArena",
    "SuperstepPlan",
    "QuantumGroup",
    "QuantumLog",
    "pure_quantum_counts",
]

_MIN_SLOTS = 16
_MIN_SEGS = 64


class SuperstepArena:
    """Preallocated per-slot kernel state with amortized-doubling growth.

    The first ``n`` rows of every array are live; capacity beyond that is
    uninitialized headroom.  Segment tables are packed flat: slot ``i``'s
    segments occupy ``seg_w[seg_off[i] : seg_off[i] + seg_len[i]]`` (and the
    aligned ``seg_total``), with ``seg_used`` marking the packed tail.
    """

    __slots__ = (
        "n",
        "request",
        "cur",
        "done",
        "rem",
        "prev_allot",
        "next_q",
        "seg_off",
        "seg_len",
        "seg_used",
        "seg_w",
        "seg_total",
    )

    def __init__(self) -> None:
        self.n = 0
        self.request = np.zeros(_MIN_SLOTS, dtype=np.float64)
        self.cur = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self.done = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self.rem = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self.prev_allot = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self.next_q = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self.seg_off = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self.seg_len = np.zeros(_MIN_SLOTS, dtype=np.int64)
        self.seg_used = 0
        self.seg_w = np.zeros(_MIN_SEGS, dtype=np.int64)
        self.seg_total = np.zeros(_MIN_SEGS, dtype=np.int64)

    def _grow_slots(self) -> None:
        cap = self.request.size * 2
        for name in ("request", "cur", "done", "rem", "prev_allot", "next_q",
                     "seg_off", "seg_len"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[: self.n] = old[: self.n]
            setattr(self, name, new)

    def _grow_segs(self, need: int) -> None:
        cap = self.seg_w.size
        while cap < need:
            cap *= 2
        for name in ("seg_w", "seg_total"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=np.int64)
            new[: self.seg_used] = old[: self.seg_used]
            setattr(self, name, new)

    def admit(
        self, *, request: float, seg_w: np.ndarray, seg_total: np.ndarray
    ) -> None:
        """Append one slot (fresh job state) at the packed tail."""
        if self.n == self.request.size:
            self._grow_slots()
        k = int(seg_w.size)
        if self.seg_used + k > self.seg_w.size:
            self._grow_segs(self.seg_used + k)
        row = self.n
        self.request[row] = request
        self.cur[row] = 0
        self.done[row] = 0
        self.rem[row] = int(seg_total.sum())
        self.prev_allot[row] = -1
        self.next_q[row] = 1
        self.seg_off[row] = self.seg_used
        self.seg_len[row] = k
        self.seg_w[self.seg_used : self.seg_used + k] = seg_w
        self.seg_total[self.seg_used : self.seg_used + k] = seg_total
        self.seg_used += k
        self.n = row + 1

    def remove(self, keep: np.ndarray) -> None:
        """Compact the live rows down to ``keep`` (a boolean mask over the
        first ``n`` rows), re-packing the segment tables in place."""
        n = self.n
        m = int(np.count_nonzero(keep))
        for name in ("request", "cur", "done", "rem", "prev_allot", "next_q"):
            arr = getattr(self, name)
            arr[:m] = arr[:n][keep]
        kept_len = self.seg_len[:n][keep]
        kept_off = self.seg_off[:n][keep]
        if m:
            # Gather the surviving segment rows (fancy indexing copies, so
            # the left-shifting writes never read already-overwritten cells).
            idx = np.concatenate(
                [
                    np.arange(off, off + ln, dtype=np.int64)
                    for off, ln in zip(kept_off.tolist(), kept_len.tolist())
                ]
            )
            used = int(idx.size)
            self.seg_w[:used] = self.seg_w[idx]
            self.seg_total[:used] = self.seg_total[idx]
            new_off = np.zeros(m, dtype=np.int64)
            np.cumsum(kept_len[:-1], out=new_off[1:])
            self.seg_off[:m] = new_off
            self.seg_len[:m] = kept_len
            self.seg_used = used
        else:
            self.seg_used = 0
        self.n = m


#: The ISSUE's original spelling of the arena, kept as an alias.
SupersetArena = SuperstepArena


@dataclass(frozen=True, slots=True)
class SuperstepPlan:
    """Per-slot closed-form description of the upcoming pure quanta.

    ``quanta[i]`` is how many consecutive identical quanta slot ``i`` can
    fast-forward; each completes ``delta[i]`` tasks (= the record's work)
    with span ``span[i]`` over the full quantum length.
    """

    quanta: np.ndarray
    delta: np.ndarray
    span: np.ndarray


def pure_quantum_counts(
    *,
    alloc: np.ndarray,
    width: np.ndarray,
    seg_remaining: np.ndarray,
    to_boundary: np.ndarray,
    regime1: np.ndarray,
    length: int,
) -> tuple[np.ndarray, np.ndarray]:
    """``(quanta, delta)``: consecutive pure quanta per slot, and the tasks
    each completes — see the module docstring for the derivation.

    ``to_boundary`` is ``boundary - done`` (may be <= 0 in regime 2),
    ``seg_remaining`` is ``total - done``, and ``regime1`` the regime mask.
    All arrays are int64 (mask excepted) and ``alloc >= 1``.
    """
    rate = np.minimum(alloc, width)
    per_q1 = rate * length
    lim1 = rate * (length - 1)
    n1 = np.where(
        to_boundary > lim1, (to_boundary - lim1 - 1) // per_q1 + 1, 0
    )
    per_q2 = alloc * length
    n2 = (seg_remaining - 1) // per_q2
    quanta = np.where(regime1, n1, n2)
    delta = np.where(regime1, per_q1, per_q2)
    return quanta, delta


@dataclass(slots=True)
class QuantumGroup:
    """One emitted stretch of ``repeat`` identical machine quanta."""

    epoch: int
    start_step: int
    repeat: int
    index0: np.ndarray
    request: np.ndarray
    request_int: np.ndarray
    available: np.ndarray
    allotment: np.ndarray
    work: np.ndarray
    span: np.ndarray
    steps: np.ndarray


class QuantumLog:
    """Simulation-wide columnar record store with layout epochs.

    Rows are machine-quantum-major: each appended group carries one value per
    live slot, aligned to the slot layout (job ids) registered by the most
    recent :meth:`set_layout` call.  The log never touches individual jobs
    until :meth:`build_traces`, which runs once at the end of the run.
    """

    __slots__ = ("quantum_length", "_layouts", "_epoch", "_groups")

    def __init__(self, quantum_length: int) -> None:
        self.quantum_length = quantum_length
        self._layouts: list[np.ndarray] = []
        self._epoch = -1
        self._groups: list[QuantumGroup] = []

    def __len__(self) -> int:
        return len(self._groups)

    def set_layout(self, jids: Sequence[int]) -> None:
        """Register the current slot->job-id layout (call after every
        admission/removal; cheap relative to how rarely membership changes)."""
        # np.array, not np.asarray: the caller hands in its *live* slot
        # layout (the kernel keeps appending/compacting it), so the stored
        # epoch must own its memory (ABG341)
        self._layouts.append(np.array(jids, dtype=np.int64))
        self._epoch += 1

    def append_quantum(
        self,
        *,
        start_step: int,
        repeat: int,
        index0: np.ndarray,
        request: np.ndarray,
        request_int: np.ndarray,
        available: np.ndarray,
        allotment: np.ndarray,
        work: np.ndarray,
        span: np.ndarray,
        steps: np.ndarray,
    ) -> QuantumGroup:
        """Record ``repeat`` consecutive identical quanta, the first starting
        at ``start_step``.  ``index0`` and ``request`` are snapshotted (the
        simulation mutates them in place after emission); the remaining
        columns must be freshly-computed arrays that are never written again.

        Validation mirrors the per-record path: one vectorized pass over the
        row invariants, falling back to scalar construction on failure so the
        offending row raises exactly the record constructor's error at
        exactly the quantum that produced it.
        """
        quantum_length = self.quantum_length
        valid = (
            (allotment >= 0)
            & (available >= 0)
            & (allotment <= available)
            & (allotment <= request_int)
            & (steps >= 0)
            & (steps <= quantum_length)
            & (work >= 0)
            & (work <= allotment * steps)
            & (span >= 0.0)
            & (span <= work + 1e-9)
        )
        index0 = index0.copy()
        if not valid.all() or (index0.size and int(index0.min()) < 1):
            # Raise the scalar constructor's error for the first bad row.
            quantum_records_from_columns(
                index=index0.tolist(),
                request=request,
                request_int=request_int,
                available=available,
                allotment=allotment,
                work=work,
                span=span,
                steps=steps,
                quantum_length=quantum_length,
                start_step=start_step,
            )
        group = QuantumGroup(
            epoch=self._epoch,
            start_step=start_step,
            repeat=repeat,
            index0=index0,
            request=request.copy(),
            request_int=request_int,
            available=available,
            allotment=allotment,
            work=work,
            span=span,
            steps=steps,
        )
        self._groups.append(group)
        return group

    def extend(self, other: "QuantumLog") -> None:
        """Adopt another log's groups wholesale (the sharded executor's
        gather step: each worker emits a window of quanta into its own log,
        and the coordinator merges them in group order).

        The adopted groups keep their layouts, remapped onto this log's
        epoch list; no re-validation happens — the rows were validated when
        the worker appended them.  :meth:`build_traces` stays correct as
        long as every job's rows arrive in chronological order across
        ``extend`` calls, which the window barrier guarantees: a job lives
        in exactly one group per window, and windows merge in time order.
        """
        if other.quantum_length != self.quantum_length:
            raise ValueError(
                "cannot merge quantum logs with different quantum lengths"
            )
        base = len(self._layouts)
        # Copy the adopted layouts at the ownership boundary: the donor log
        # (a gathered worker result) is discarded after the merge, but this
        # log must never hold views into another object's buffers.
        self._layouts.extend(arr.copy() for arr in other._layouts)
        for grp in other._groups:
            grp.epoch += base
            self._groups.append(grp)
        self._epoch = len(self._layouts) - 1

    # ------------------------------------------------------------------

    def build_traces(self, traces: Mapping[int, JobTrace]) -> None:
        """Expand the groups once, sort rows by job, and attach a
        :class:`TraceColumns` view to every job's trace.

        Group order is chronological and rows within a superstep group are
        slot-major (slot ``i``'s ``K`` quanta are consecutive), so a stable
        sort by job id leaves each job's rows in quantum order.
        """
        if not self._groups:
            return
        L = self.quantum_length
        jid_parts: list[np.ndarray] = []
        idx_parts: list[np.ndarray] = []
        start_parts: list[np.ndarray] = []
        value_parts: dict[str, list[np.ndarray]] = {
            name: []
            for name in (
                "request",
                "request_int",
                "available",
                "allotment",
                "work",
                "span",
                "steps",
            )
        }
        for grp in self._groups:
            layout = self._layouts[grp.epoch]
            n = int(grp.index0.size)
            k = grp.repeat
            if k == 1:
                jid_parts.append(layout)
                idx_parts.append(grp.index0)
                start_parts.append(np.full(n, grp.start_step, dtype=np.int64))
            else:
                offsets = np.arange(k, dtype=np.int64)
                jid_parts.append(np.repeat(layout, k))
                idx_parts.append(np.repeat(grp.index0, k) + np.tile(offsets, n))
                start_parts.append(
                    grp.start_step + L * np.tile(offsets, n)
                )
            for name, parts in value_parts.items():
                col: np.ndarray = getattr(grp, name)
                parts.append(col if k == 1 else np.repeat(col, k))
        jid_all = np.concatenate(jid_parts)
        order = np.argsort(jid_all, kind="stable")
        jid_sorted = jid_all[order]
        idx_sorted = np.concatenate(idx_parts)[order]
        start_sorted = np.concatenate(start_parts)[order]
        cols_sorted = {
            name: np.concatenate(parts)[order]
            for name, parts in value_parts.items()
        }
        bounds = np.flatnonzero(np.diff(jid_sorted)) + 1
        starts = np.concatenate(([0], bounds, [jid_sorted.size]))
        for a, b in zip(starts[:-1].tolist(), starts[1:].tolist()):
            jid = int(jid_sorted[a])
            traces[jid].attach_columns(
                TraceColumns(
                    quantum_length=L,
                    index=idx_sorted[a:b],
                    request=cols_sorted["request"][a:b],
                    request_int=cols_sorted["request_int"][a:b],
                    available=cols_sorted["available"][a:b],
                    allotment=cols_sorted["allotment"][a:b],
                    work=cols_sorted["work"][a:b],
                    span=cols_sorted["span"][a:b],
                    steps=cols_sorted["steps"][a:b],
                    start_step=start_sorted[a:b],
                )
            )
