"""Discrete-time work-stealing execution of explicit dags.

This is the distributed counterpart of the centralized engines in
:mod:`repro.engine` — the execution substrate of the ABP scheduler (Arora,
Blumofe, Plaxton) and of A-Steal (Agrawal, He, Leiserson), both discussed in
the paper's related work (Section 8).

Model (one time step, ``a`` workers):

- a worker holding a task executes it; enabled children are pushed to the
  bottom of its own deque (depth-first order, as in Cilk-style runtimes);
- a worker whose deque is empty makes one *steal attempt* at a uniformly
  random victim; a successful steal takes the top task of the victim's deque
  and executes it next step; a failed attempt wastes the cycle;
- when the allotment shrinks between quanta, surplus workers are *mugged*:
  their deques drain into the surviving workers' deques; when it grows, new
  workers start empty and steal.

The per-quantum measurements are the same as the centralized engines
(``T1(q)``, fractional ``Tinf(q)``), plus steal statistics.  Note that
``Tinf(q) <= steps`` is NOT guaranteed here: depth-first execution smears
completions across dag levels, which is exactly the measurement problem
B-Greedy's breadth-first discipline avoids (see the discipline ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dag.graph import Dag
from ..engine.base import JobExecutor, QuantumExecution
from .deque import WorkStealingDeque

__all__ = ["StealStats", "WorkStealingExecutor"]


@dataclass(slots=True)
class StealStats:
    """Cumulative work-stealing behaviour across the run."""

    steal_attempts: int = 0
    successful_steals: int = 0
    idle_cycles: int = 0
    muggings: int = 0

    @property
    def steal_success_rate(self) -> float:
        if self.steal_attempts == 0:
            return 0.0
        return self.successful_steals / self.steal_attempts


class WorkStealingExecutor(JobExecutor):
    """Executes an explicit dag with randomized work stealing."""

    def __init__(self, dag: Dag, rng: np.random.Generator):
        self._dag = dag
        self._rng = rng
        self._indegree = np.fromiter(
            (dag.in_degree(t) for t in range(dag.num_tasks)),
            dtype=np.int64,
            count=dag.num_tasks,
        )
        self._remaining = dag.num_tasks
        self._level_sizes = dag.level_sizes
        self._deques: list[WorkStealingDeque] = [WorkStealingDeque()]
        # workers pick up their next task at the *start* of a step; holding
        # slots model the task a worker is about to execute
        self._holding: list[int | None] = [None]
        self.stats = StealStats()
        for t in dag.sources():
            self._deques[0].push_bottom(t)

    # ------------------------------------------------------------------

    def _resize_workers(self, count: int) -> None:
        current = len(self._deques)
        if count > current:
            self._deques.extend(WorkStealingDeque() for _ in range(count - current))
            self._holding.extend(None for _ in range(count - current))
        elif count < current:
            # mugging: surplus workers' held tasks and deques migrate to the
            # survivors (round-robin), preserving all ready work
            spill: list[int] = []
            for i in range(count, current):
                if self._holding[i] is not None:
                    spill.append(self._holding[i])  # type: ignore[arg-type]
                spill.extend(self._deques[i].drain())
                self.stats.muggings += 1
            del self._deques[count:]
            del self._holding[count:]
            for j, task in enumerate(spill):
                self._deques[j % count].push_bottom(task)

    # ------------------------------------------------------------------

    def execute_quantum(self, allotment: int, max_steps: int) -> QuantumExecution:
        self._check_quantum_args(allotment, max_steps)
        self._resize_workers(allotment)
        dag = self._dag
        levels = dag.levels
        completed_per_level = np.zeros(dag.num_levels + 1, dtype=np.int64)
        work = 0
        steps = 0
        while steps < max_steps and self._remaining > 0:
            steps += 1
            executing: list[tuple[int, int]] = []  # (worker, task)
            for w in range(allotment):
                task = self._holding[w]
                if task is None:
                    task = self._deques[w].pop_bottom()
                if task is None:
                    # steal attempt at a random victim (possibly itself —
                    # then it simply fails, a conventional simplification)
                    self.stats.steal_attempts += 1
                    victim = int(self._rng.integers(0, allotment))
                    stolen = self._deques[victim].steal_top() if victim != w else None
                    if stolen is None:
                        self.stats.idle_cycles += 1
                        self._holding[w] = None
                        continue
                    self.stats.successful_steals += 1
                    # the stolen task executes next step (the steal itself
                    # costs this cycle)
                    self._holding[w] = stolen
                    continue
                self._holding[w] = None
                executing.append((w, task))
            for w, task in executing:
                work += 1
                self._remaining -= 1
                completed_per_level[levels[task]] += 1
                for child in dag.successors(task):
                    self._indegree[child] -= 1
                    if self._indegree[child] == 0:
                        self._deques[w].push_bottom(child)
        span = float(
            np.sum(completed_per_level[1:] / self._level_sizes.astype(np.float64))
        )
        return QuantumExecution(
            work=work, span=span, steps=steps, finished=self._remaining == 0
        )

    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._remaining == 0

    @property
    def total_work(self) -> int:
        return self._dag.work

    @property
    def total_span(self) -> int:
        return self._dag.span

    @property
    def remaining_work(self) -> int:
        return self._remaining

    @property
    def dag(self) -> Dag:
        return self._dag

    @property
    def current_parallelism(self) -> float:
        if self.finished:
            return 0.0
        ready = sum(len(d) for d in self._deques)
        ready += sum(1 for h in self._holding if h is not None)
        return float(max(1, ready))
