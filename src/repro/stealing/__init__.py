"""Work-stealing substrate: the ABP deque, a discrete-time work-stealing
executor, and the A-Steal / ABP schedulers from the paper's related work."""

from .asteal import ABPPolicy, ASteal, make_abp, make_asteal
from .deque import WorkStealingDeque
from .executor import StealStats, WorkStealingExecutor

__all__ = [
    "WorkStealingDeque",
    "WorkStealingExecutor",
    "StealStats",
    "ASteal",
    "ABPPolicy",
    "make_asteal",
    "make_abp",
]
