"""A-Steal and ABP — the work-stealing schedulers of the paper's related work.

**A-Steal** (Agrawal, He, Leiserson [2, 3]) is the distributed sibling of
A-Greedy: the same multiplicative-increase multiplicative-decrease request
rules driven by quantum utilization, but executing with randomized work
stealing instead of a centralized greedy scheduler.  In our unit-task,
discrete-time model a processor cycle either executes a task or it does not
(steal attempts and idle waiting both count as non-work cycles), so the
utilization signal ``T1(q) / (a(q) * L)`` coincides with A-Greedy's and the
request rules are shared via subclassing.

**ABP** (Arora, Blumofe, Plaxton [4]) uses the same work-stealing execution
but *no parallelism feedback*: it always asks for the whole machine and lets
the allocator decide.  The paper's related work notes A-Steal empirically
dominates ABP — our work-stealing bench reproduces that (ABP burns the whole
machine through a job's serial phases).
"""

from __future__ import annotations

import numpy as np

from ..core.agreedy import AGreedy
from ..core.reference import FixedRequest
from ..dag.graph import Dag
from .executor import WorkStealingExecutor

__all__ = ["ASteal", "ABPPolicy", "make_asteal", "make_abp"]


class ASteal(AGreedy):
    """A-Greedy's request rules paired (by convention) with work-stealing
    execution."""

    def __init__(self, responsiveness: float = 2.0, utilization_threshold: float = 0.8):
        super().__init__(responsiveness, utilization_threshold)
        self.name = (
            f"A-Steal(rho={self.responsiveness:g}, delta={self.utilization_threshold:g})"
        )


class ABPPolicy(FixedRequest):
    """ABP's non-adaptive request: always the whole machine."""

    def __init__(self, processors: int):
        super().__init__(processors)
        self.name = f"ABP(P={processors})"


def make_asteal(
    dag: Dag, rng: np.random.Generator, **kwargs: float
) -> tuple[WorkStealingExecutor, ASteal]:
    """(executor, feedback) pair implementing A-Steal on ``dag``."""
    return WorkStealingExecutor(dag, rng), ASteal(**kwargs)


def make_abp(
    dag: Dag, rng: np.random.Generator, processors: int
) -> tuple[WorkStealingExecutor, ABPPolicy]:
    """(executor, feedback) pair implementing ABP on ``dag``."""
    return WorkStealingExecutor(dag, rng), ABPPolicy(processors)
