"""Work-stealing deque (the ABP deque's sequential semantics).

Arora, Blumofe, and Plaxton's non-blocking deque gives each worker a private
double-ended queue: the owner pushes and pops *ready tasks* at the bottom
(depth-first), thieves steal single tasks from the top (breadth-first-ish —
the top holds the shallowest, largest-grained work).  Our simulator is
discrete-time and sequential, so we keep the semantics without the
lock-free protocol.
"""

from __future__ import annotations

from collections import deque as _deque

__all__ = ["WorkStealingDeque"]


class WorkStealingDeque:
    """Owner operates at the bottom; thieves steal from the top."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: _deque[int] = _deque()

    def push_bottom(self, task: int) -> None:
        self._items.append(task)

    def pop_bottom(self) -> int | None:
        """Owner's pop; ``None`` when empty."""
        if not self._items:
            return None
        return self._items.pop()

    def steal_top(self) -> int | None:
        """Thief's steal; ``None`` when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def drain(self) -> list[int]:
        """Remove and return everything (used when a worker is mugged —
        descheduled on an allotment decrease)."""
        items = list(self._items)
        self._items.clear()
        return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkStealingDeque({list(self._items)!r})"
