"""Crash-safe file writes: temp file + fsync + atomic rename.

Every artifact the repo persists (experiment JSON, ``REPORT.md``, CSV
exports, ``BENCH_*.json``, checkpoint records) goes through
:func:`write_atomic`, so an interruption at any instant — SIGKILL, OOM,
power loss — leaves either the complete previous file or the complete new
file, never a truncated hybrid.  The recipe is the standard one: write to
a uniquely-named sibling temp file, flush + ``os.fsync`` the data to disk,
then ``os.replace`` onto the target (atomic on POSIX and Windows when
source and destination share a filesystem, which the sibling placement
guarantees).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["write_atomic"]


def write_atomic(path: str | Path, text: str, *, encoding: str = "utf-8") -> Path:
    """Atomically replace ``path``'s contents with ``text``; return the path.

    The parent directory is created if missing.  On any failure the temp
    file is removed and the target is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target
