"""Crash-safe file writes: temp file + fsync + atomic rename + dir fsync.

Every artifact the repo persists (experiment JSON, ``REPORT.md``, CSV
exports, ``BENCH_*.json``, checkpoint records, golden fixtures) goes
through :func:`write_atomic`, so an interruption at any instant — SIGKILL,
OOM, power loss — leaves either the complete previous file or the complete
new file, never a truncated hybrid.  The recipe is the standard one: write
to a uniquely-named sibling temp file, flush + ``os.fsync`` the data to
disk, ``os.replace`` onto the target (atomic on POSIX and Windows when
source and destination share a filesystem, which the sibling placement
guarantees), then ``os.fsync`` the parent *directory* — the rename lives
in the directory entry, and only the directory fsync makes it durable
across power loss.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["write_atomic"]


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry to disk so a completed rename survives power
    loss.  Best-effort: platforms/filesystems that cannot fsync a directory
    (e.g. Windows, some network mounts) are skipped — the rename itself has
    already happened, so atomicity is unaffected, only durability timing.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_atomic(path: str | Path, text: str, *, encoding: str = "utf-8") -> Path:
    """Atomically replace ``path``'s contents with ``text``; return the path.

    The parent directory is created if missing.  On any failure the temp
    file is removed and the target is left untouched.  After the rename the
    parent directory is fsynced, so the new entry is durable, not merely
    visible.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(target.parent)
    return target
