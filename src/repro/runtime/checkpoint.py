"""Crash-safe checkpoint journal for experiment work units.

Every independent work unit of a sweep (a Figure 5 factor point, a
Figure 6 set point, one ``repro all`` experiment) gets a *content-addressed
key*: the sha256 of a canonical JSON description of everything that
determines its output (unit kind + parameters, which include the seed).
A :class:`CheckpointJournal` is a directory of one small JSON file per
completed unit, each written via :func:`~repro.runtime.atomic.write_atomic`
— so a record either exists completely or not at all, and an interrupted
sweep can resume by skipping exactly the units whose records survived.

Determinism argument: because keys hash the *inputs* and the work units
are pure functions of those inputs (the ``--jobs``/``--workers`` contract
enforced by ``repro.verify.flow``), replaying a journaled payload is
bit-identical to re-executing the unit.  Corrupt or truncated records
(impossible under the atomic writer, but possible from external tampering)
are treated as absent, never an error — the unit simply re-runs.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterator, Mapping

from .atomic import write_atomic

__all__ = ["CheckpointJournal", "compact_journal", "unit_key", "stable_fraction"]

#: Schema stamp written into every record (bump on incompatible change).
JOURNAL_SCHEMA = 1

#: File name of the compacted segment (sorts before every key file and is
#: shaped so the per-unit loader ignores it).
SEGMENT_FILENAME = "_segment.json"


def _canonical(params: Mapping[str, Any]) -> str:
    """Canonical JSON of a parameter mapping (sorted keys, stable floats)."""
    return json.dumps(params, sort_keys=True, default=str, separators=(",", ":"))


def unit_key(kind: str, params: Mapping[str, Any]) -> str:
    """Content-addressed key of one work unit: ``kind`` + parameters.

    >>> unit_key("demo", {"b": 2, "a": 1}) == unit_key("demo", {"a": 1, "b": 2})
    True
    >>> unit_key("demo", {"a": 1}) != unit_key("other", {"a": 1})
    True
    """
    digest = hashlib.sha256(f"{kind}\n{_canonical(params)}".encode()).hexdigest()
    return f"{kind}-{digest[:32]}"


def stable_fraction(*parts: object) -> float:
    """Deterministic uniform-ish value in ``[0, 1)`` from arbitrary parts.

    A pure function of its arguments (sha256-based), identical across
    processes, platforms, and Python hash randomization — the primitive
    behind deterministic backoff jitter and the seeded fault schedule.
    """
    digest = hashlib.sha256(":".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class CheckpointJournal:
    """A directory of atomically-written per-unit completion records.

    Records are durable the moment :meth:`record` returns (each is its own
    fsync'd file), so there is nothing to lose on interruption;``flush``
    exists for API symmetry with buffered journals and is a no-op.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self._payloads: dict[str, Any] = {}
        self._load()

    def _load(self) -> None:
        if not self.directory.is_dir():
            return
        # Compacted segment first, then per-unit records layered on top —
        # a record written after the last compaction wins over the segment.
        segment = self.directory / SEGMENT_FILENAME
        try:
            data = json.loads(segment.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            data = None  # no segment (or tampered): per-unit records only
        if (
            isinstance(data, dict)
            and data.get("schema") == JOURNAL_SCHEMA
            and isinstance(data.get("segment"), dict)
        ):
            self._payloads.update(data["segment"])
        for record in sorted(self.directory.glob("*.json")):
            if record.name == SEGMENT_FILENAME:
                continue
            try:
                data = json.loads(record.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # unreadable/tampered record: treat the unit as not done
            if (
                isinstance(data, dict)
                and data.get("schema") == JOURNAL_SCHEMA
                and isinstance(data.get("key"), str)
                and "payload" in data
            ):
                self._payloads[data["key"]] = data["payload"]

    def __contains__(self, key: str) -> bool:
        return key in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)

    def keys(self) -> Iterator[str]:
        yield from sorted(self._payloads)

    def payload(self, key: str) -> Any:
        """The journaled payload of a completed unit (KeyError if absent)."""
        return self._payloads[key]

    def record(self, key: str, payload: Any) -> None:
        """Durably journal one completed unit (atomic write + fsync).

        Payloads must be JSON-serializable; values that are not are
        stringified exactly as the artifact writers do (``default=str``),
        so a replayed payload re-serializes to identical artifact bytes.
        """
        body = json.dumps(
            {"schema": JOURNAL_SCHEMA, "key": key, "payload": payload},
            default=str,
        )
        write_atomic(self.directory / f"{key}.json", body)
        # keep the in-memory view consistent with what a resume would load
        self._payloads[key] = json.loads(body)["payload"]

    def compact(self) -> int:
        """Fold every completed record into one atomic segment file.

        A long sweep leaves one small file per unit (5000 for full-scale
        fig6); compaction rewrites them as a single
        :data:`SEGMENT_FILENAME` — written atomically *before* the
        per-unit files are unlinked, so a kill at any instant leaves
        either the original records, both, or the segment alone, and
        every one of those states resumes with identical payloads
        (:meth:`_load` layers per-unit records over the segment).
        Returns the number of records folded.
        """
        count = len(self._payloads)
        body = json.dumps(
            {
                "schema": JOURNAL_SCHEMA,
                "segment": {k: self._payloads[k] for k in sorted(self._payloads)},
            },
            default=str,
        )
        write_atomic(self.directory / SEGMENT_FILENAME, body)
        for record in self.directory.glob("*.json"):
            if record.name == SEGMENT_FILENAME:
                continue
            try:
                record.unlink()
            except OSError:
                pass  # still covered by the segment just written
        return count

    def clear(self) -> None:
        """Delete every record, segment included (a fresh, non-resuming
        run starts here)."""
        if self.directory.is_dir():
            for record in self.directory.glob("*.json"):
                try:
                    record.unlink()
                except OSError:
                    pass
        self._payloads.clear()

    def flush(self) -> None:
        """No-op: every record is already durable when written."""


def compact_journal(directory: str | Path) -> int:
    """Compact the journal at ``directory``; returns the records folded.

    Convenience wrapper for tooling (``repro all --compact-journal``):
    loads whatever segment + per-unit state survives at ``directory`` and
    rewrites it as one segment file.
    """
    return CheckpointJournal(directory).compact()
