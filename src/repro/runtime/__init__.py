"""Fault-tolerant experiment runtime.

The resilience layer under every fan-out path in the repo:

- :mod:`repro.runtime.atomic` — crash-safe artifact writes
  (temp + fsync + rename);
- :mod:`repro.runtime.checkpoint` — content-addressed completion journal
  enabling ``repro all --resume``;
- :mod:`repro.runtime.faults` — deterministic, seeded fault injection
  (crash / hang / transient) for tests and the CI chaos job;
- :mod:`repro.runtime.supervisor` — the supervised process pool with
  per-task timeouts, bounded retries, deterministic backoff, and graceful
  degradation to serial execution.

See ``docs/RESILIENCE.md`` for the failure model and the determinism
argument.
"""

from .atomic import write_atomic
from .checkpoint import CheckpointJournal, compact_journal, stable_fraction, unit_key
from .faults import FAULT_KINDS, FAULTS_ENV_VAR, FaultPlan, TransientFault
from .supervisor import (
    RetryPolicy,
    SupervisedOutcome,
    TaskError,
    resolve_workers,
    run_supervised,
)

__all__ = [
    "CheckpointJournal",
    "compact_journal",
    "FAULT_KINDS",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "RetryPolicy",
    "SupervisedOutcome",
    "TaskError",
    "TransientFault",
    "resolve_workers",
    "run_supervised",
    "stable_fraction",
    "unit_key",
    "write_atomic",
]
