"""Supervised process-pool execution with retry, timeout, and fallback.

:func:`run_supervised` is the fault-tolerant engine behind
``repro.experiments.parallel.map_deterministic``: an order-preserving map
over independent work units that survives the three classic worker
failures —

- **crash** (an OOM-killed or ``os._exit``-ing worker breaks the pool):
  the pool is torn down, surviving units are resubmitted to a fresh pool,
  and the crashed unit's attempt counter advances;
- **hang** (a unit exceeds its wall-clock ``task_timeout``): hung workers
  cannot be cancelled through :class:`~concurrent.futures.ProcessPoolExecutor`,
  so the pool is killed and rebuilt, charging the timeout to the
  over-deadline unit(s) only;
- **transient exception**: retried in place with deterministic exponential
  backoff (:meth:`RetryPolicy.delay` is a pure function of ``(seed, key,
  attempt)``, so retry scheduling never perturbs the bit-identical
  ``--jobs``/``--workers`` results contract).

After ``max_pool_restarts`` pool failures the supervisor degrades
gracefully to in-process serial execution, where crash/hang faults from
the injection harness (:mod:`repro.runtime.faults`) demote to ordinary
exceptions and the same retry budget applies.

Retry accounting distinguishes *attributed* failures (an exception raised
by the unit itself, or its own timeout) from *collateral* ones (a sibling
crashed the shared pool): only attributed failures consume the per-unit
``retries`` budget, while pool breakage is bounded separately by
``max_pool_restarts`` — so one crashy unit cannot exhaust an innocent
neighbour's budget.

Completed units are journaled through an optional
:class:`~repro.runtime.checkpoint.CheckpointJournal` the moment they
finish; on a later run the journal pre-fills those units and the pool
only executes the remainder (``repro all --resume``).
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Generic, Iterable, Sequence, TypeVar

from .checkpoint import CheckpointJournal, stable_fraction
from .faults import FaultPlan

__all__ = [
    "RetryPolicy",
    "SupervisedOutcome",
    "TaskError",
    "WorkerPool",
    "resolve_workers",
    "run_supervised",
]

T = TypeVar("T")
R = TypeVar("R")

#: Default extra attempts per unit after the first.
DEFAULT_RETRIES = 2

#: Default pool rebuilds tolerated before degrading to serial execution.
DEFAULT_MAX_POOL_RESTARTS = 3


def resolve_workers(workers: int) -> int:
    """Normalize a worker count: ``0`` means "all cores", ``1`` serial."""
    if workers < 0:
        raise ValueError("worker count must be non-negative")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff + jitter.

    ``delay`` is a pure function of ``(seed, key, attempt)`` — no clock,
    no ambient RNG — so the backoff schedule of any unit is reproducible
    and unit-testable, and sleeping between retries can never change a
    result (only wall-clock time).
    """

    retries: int = DEFAULT_RETRIES
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.25
    seed: int = 2008

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_cap < 0:
            raise ValueError("invalid backoff parameters")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to back off before retry ``attempt`` (>= 1) of ``key``."""
        if attempt < 1:
            return 0.0
        raw = min(
            self.backoff_cap, self.backoff_base * self.backoff_factor ** (attempt - 1)
        )
        return raw * (1.0 + self.jitter * stable_fraction(self.seed, key, attempt))


class TaskError(RuntimeError):
    """A work unit exhausted its retry budget."""

    def __init__(self, key: str, attempts: int, cause: BaseException):
        super().__init__(
            f"work unit {key!r} failed after {attempts} attempt(s): {cause!r}"
        )
        self.key = key
        self.attempts = attempts
        self.cause = cause


class _TaskTimeout(RuntimeError):
    """Internal marker: a unit exceeded its wall-clock timeout."""


@dataclass(slots=True)
class SupervisedOutcome(Generic[R]):
    """Results plus the supervision bookkeeping the tests assert on."""

    results: list[R]
    attempts: dict[str, int] = field(default_factory=dict)
    """Per-key attempts executed this run (0 for journal-resumed units)."""
    resumed: tuple[str, ...] = ()
    """Keys pre-filled from the checkpoint journal, in input order."""
    delays: tuple[float, ...] = ()
    """Backoff delays slept, in scheduling order."""
    pool_restarts: int = 0
    serial_fallback: bool = False


def _invoke_unit(
    fn: Callable[[T], R],
    item: T,
    key: str,
    attempt: int,
    plan: FaultPlan | None,
    in_worker: bool,
) -> R:
    """The (picklable) unit entrypoint every dispatch path funnels through.

    Runs inside a pool worker (``in_worker=True``) or in the supervising
    process (serial mode / fallback).  The fault-injection hook fires
    first, so an injected crash kills the worker before any real work —
    the harshest point in the unit's lifetime.
    """
    if plan is not None:
        plan.inject(key, attempt, in_worker=in_worker)
    return fn(item)


def _identity(value: Any) -> Any:
    return value


def _init_worker() -> None:
    """Reset inherited signal handlers in a freshly forked pool worker.

    The supervising process may translate SIGTERM into KeyboardInterrupt
    (see ``repro.experiments.runner``); a worker inheriting that handler
    would print a spurious traceback every time the supervisor reaps its
    pool.  Workers die quietly on SIGTERM and leave Ctrl-C handling to the
    parent.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class WorkerPool:
    """A process pool that survives across ``run_supervised`` calls.

    Callers that dispatch many small supervised batches back to back (the
    sharded executor runs one batch per window barrier) pay pool creation
    and teardown on every call otherwise.  Passing one ``WorkerPool`` as
    ``run_supervised(..., pool=...)`` reuses the same worker processes for
    every batch; fault handling is unchanged — a crashed or hung pool is
    discarded through this handle and the next acquisition forks a fresh
    one.  Use as a context manager (or call :meth:`close`) to reap the
    workers.
    """

    def __init__(self, workers: int = 0):
        self.workers = resolve_workers(workers)
        self._pool: ProcessPoolExecutor | None = None

    def acquire(self) -> ProcessPoolExecutor:
        """The live executor, forking one on first use or after a discard."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_init_worker
            )
        return self._pool

    def discard(self, pool: ProcessPoolExecutor) -> None:
        """Kill a broken or hung executor and forget it if it is ours."""
        if pool is self._pool:
            self._pool = None
        _kill_pool(pool)

    def close(self) -> None:
        if self._pool is not None:
            _kill_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _Supervisor(Generic[T, R]):
    """One ``run_supervised`` call's mutable state."""

    def __init__(
        self,
        fn: Callable[[T], R],
        work: list[T],
        keys: list[str],
        *,
        workers: int,
        task_timeout: float | None,
        policy: RetryPolicy,
        faults: FaultPlan | None,
        journal: CheckpointJournal | None,
        encode: Callable[[R], Any],
        decode: Callable[[Any], R],
        max_pool_restarts: int,
        sleep: Callable[[float], None],
        shared: WorkerPool | None = None,
    ) -> None:
        self.fn = fn
        self.work = work
        self.keys = keys
        self.workers = workers
        self.task_timeout = task_timeout
        self.policy = policy
        self.faults = faults
        self.journal = journal
        self.encode = encode
        self.decode = decode
        self.max_pool_restarts = max_pool_restarts
        self.sleep = sleep
        self.shared = shared

        self.results: list[Any] = [None] * len(work)
        self.done: list[bool] = [False] * len(work)
        #: concluded failed attempts per index (drives injection + backoff)
        self.attempt_no: list[int] = [0] * len(work)
        #: attributed failures per index (consumes the retry budget)
        self.budget_used: list[int] = [0] * len(work)
        self.executed_attempts: dict[str, int] = {}
        self.delays: list[float] = []
        self.pool_restarts = 0
        self.serial_fallback = False

    # -- shared bookkeeping ---------------------------------------------------

    def _complete(self, index: int, result: R) -> None:
        self.results[index] = result
        self.done[index] = True
        key = self.keys[index]
        self.executed_attempts[key] = self.attempt_no[index] + 1
        if self.journal is not None:
            self.journal.record(key, self.encode(result))

    def _backoff(self, index: int) -> None:
        delay = self.policy.delay(self.keys[index], self.attempt_no[index])
        if delay > 0:
            self.delays.append(delay)
            self.sleep(delay)

    def _fail_attempt(
        self, index: int, exc: BaseException, *, attributed: bool
    ) -> None:
        """Charge one failed attempt; raise TaskError past the budget."""
        self.attempt_no[index] += 1
        if attributed:
            self.budget_used[index] += 1
            if self.budget_used[index] > self.policy.retries:
                raise TaskError(
                    self.keys[index], self.attempt_no[index], exc
                ) from exc
        self._backoff(index)

    # -- serial execution (workers <= 1, and the degraded fallback) ----------

    def run_serial(self, indices: Iterable[int]) -> None:
        for index in indices:
            while not self.done[index]:
                try:
                    result = _invoke_unit(
                        self.fn,
                        self.work[index],
                        self.keys[index],
                        self.attempt_no[index],
                        self.faults,
                        False,
                    )
                except Exception as exc:  # noqa: BLE001 — every unit failure retries
                    self._fail_attempt(index, exc, attributed=True)
                else:
                    self._complete(index, result)

    # -- pool execution -------------------------------------------------------

    def run_pool(self, indices: list[int]) -> None:
        pending: deque[int] = deque(indices)
        in_flight: dict[Future[R], tuple[int, float]] = {}
        pool: ProcessPoolExecutor | None = None
        pool_size = min(self.workers, len(indices))
        try:
            while pending or in_flight:
                if self.pool_restarts > self.max_pool_restarts:
                    # degraded mode: reap whatever the pool had and go serial
                    pending.extend(i for i, _ in in_flight.values())
                    in_flight.clear()
                    self.serial_fallback = True
                    self.run_serial(sorted(pending))
                    return
                if pool is None:
                    pool = (
                        self.shared.acquire()
                        if self.shared is not None
                        else ProcessPoolExecutor(
                            max_workers=pool_size, initializer=_init_worker
                        )
                    )
                try:
                    while pending and len(in_flight) < pool_size:
                        index = pending[0]
                        future = pool.submit(
                            _invoke_unit,
                            self.fn,
                            self.work[index],
                            self.keys[index],
                            self.attempt_no[index],
                            self.faults,
                            True,
                        )
                        # popped only after submit succeeds: a submit-time
                        # BrokenProcessPool must not drop the unit
                        pending.popleft()
                        deadline = (
                            time.monotonic() + self.task_timeout
                            if self.task_timeout is not None
                            else float("inf")
                        )
                        in_flight[future] = (index, deadline)
                except BrokenProcessPool:
                    pool = self._restart_pool(pool, in_flight, pending)
                    continue
                if not in_flight:
                    continue
                timeout = self._wait_timeout(in_flight)
                finished, _ = wait(
                    set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                broken = False
                for future in finished:
                    index, _ = in_flight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # a worker died; attempt advances but the budget is
                        # charged to the pool-restart bound, not the unit
                        broken = True
                        self.attempt_no[index] += 1
                        self._backoff(index)
                        pending.append(index)
                    except Exception as exc:  # noqa: BLE001 — in-band unit failure
                        self._fail_attempt(index, exc, attributed=True)
                        pending.append(index)
                    else:
                        self._complete(index, result)
                if broken:
                    pool = self._restart_pool(pool, in_flight, pending)
                    continue
                timed_out = [
                    future
                    for future, (_, deadline) in in_flight.items()
                    if now >= deadline
                ]
                if timed_out:
                    # hung workers cannot be cancelled: charge the timeout to
                    # the over-deadline units and rebuild the pool for the rest
                    for future in timed_out:
                        index, _ = in_flight.pop(future)
                        self._fail_attempt(
                            index,
                            _TaskTimeout(
                                f"unit {self.keys[index]!r} exceeded "
                                f"{self.task_timeout}s"
                            ),
                            attributed=True,
                        )
                        pending.append(index)
                    pool = self._restart_pool(pool, in_flight, pending)
        finally:
            if pool is not None and self.shared is None:
                _kill_pool(pool)

    def _restart_pool(
        self,
        pool: ProcessPoolExecutor,
        in_flight: dict[Future[R], tuple[int, float]],
        pending: deque[int],
    ) -> ProcessPoolExecutor | None:
        """Tear the pool down and requeue survivors collaterally (no budget
        charge, no attempt advance — their fault schedule is untouched).
        Returns None so the caller's ``pool`` binding forces a lazy rebuild.
        """
        for index, _ in in_flight.values():
            pending.append(index)
        in_flight.clear()
        if self.shared is not None:
            self.shared.discard(pool)
        else:
            _kill_pool(pool)
        self.pool_restarts += 1
        return None

    def _wait_timeout(
        self, in_flight: dict[Future[R], tuple[int, float]]
    ) -> float | None:
        earliest = min(deadline for _, deadline in in_flight.values())
        if earliest == float("inf"):
            return None
        return max(0.01, earliest - time.monotonic())


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a (possibly hung or broken) pool down hard: cancel queued work,
    terminate worker processes, and reap them."""
    worker_map = getattr(pool, "_processes", None)  # CPython internal, best effort
    processes = list(worker_map.values()) if isinstance(worker_map, dict) else []
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError, AttributeError):
            pass
    for process in processes:
        try:
            process.join(timeout=1.0)
        except (OSError, ValueError, AssertionError):
            pass


def run_supervised(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int = 1,
    keys: Sequence[str] | None = None,
    journal: CheckpointJournal | None = None,
    encode: Callable[[R], Any] | None = None,
    decode: Callable[[Any], R] | None = None,
    task_timeout: float | None = None,
    retries: int | None = None,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    max_pool_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
    sleep: Callable[[float], None] = time.sleep,
    pool: WorkerPool | None = None,
) -> SupervisedOutcome[R]:
    """Order-preserving, fault-tolerant map over independent work units.

    ``fn`` and every item must be picklable (module-level) when
    ``workers > 1``.  ``keys`` are the stable per-unit identities used for
    fault scheduling, backoff jitter, and journaling — pass
    :func:`~repro.runtime.checkpoint.unit_key` keys when a ``journal`` is
    supplied (they are required then), otherwise positional defaults are
    generated.  ``encode``/``decode`` translate results to and from the
    journal's JSON payloads.  ``faults`` defaults to the ambient
    ``REPRO_FAULTS`` plan when unset.  ``pool`` is an optional
    :class:`WorkerPool` reused across calls (the caller owns its
    lifetime); without one, each call forks and reaps its own pool.
    """
    work = list(items)
    n_workers = resolve_workers(workers)
    if keys is None:
        if journal is not None:
            raise ValueError(
                "journaling needs content-addressed keys; pass keys= "
                "(see repro.runtime.checkpoint.unit_key)"
            )
        key_list = [f"unit-{i}" for i in range(len(work))]
    else:
        key_list = [str(k) for k in keys]
        if len(key_list) != len(work):
            raise ValueError(
                f"got {len(key_list)} keys for {len(work)} work items"
            )
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError("task_timeout must be positive (or None for no limit)")
    if max_pool_restarts < 0:
        raise ValueError("max_pool_restarts must be non-negative")
    active_policy = policy if policy is not None else RetryPolicy()
    if retries is not None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        active_policy = replace(active_policy, retries=retries)
    plan = faults if faults is not None else FaultPlan.from_env()

    supervisor: _Supervisor[T, R] = _Supervisor(
        fn,
        work,
        key_list,
        workers=n_workers,
        task_timeout=task_timeout,
        policy=active_policy,
        faults=plan,
        journal=journal,
        encode=encode if encode is not None else _identity,
        decode=decode if decode is not None else _identity,
        max_pool_restarts=max_pool_restarts,
        sleep=sleep,
        shared=pool,
    )

    resumed: list[str] = []
    if journal is not None:
        for index, key in enumerate(key_list):
            if key in journal:
                supervisor.results[index] = supervisor.decode(journal.payload(key))
                supervisor.done[index] = True
                supervisor.executed_attempts[key] = 0
                resumed.append(key)
    remaining = [i for i, is_done in enumerate(supervisor.done) if not is_done]

    if n_workers <= 1 or len(remaining) <= 1:
        supervisor.run_serial(remaining)
    else:
        supervisor.run_pool(remaining)

    dropped = [key_list[i] for i, is_done in enumerate(supervisor.done) if not is_done]
    if dropped:
        raise RuntimeError(
            f"supervisor invariant violated: {len(dropped)} unit(s) were never "
            f"completed nor raised (first: {dropped[:3]!r})"
        )

    return SupervisedOutcome(
        results=list(supervisor.results),
        attempts=dict(supervisor.executed_attempts),
        resumed=tuple(resumed),
        delays=tuple(supervisor.delays),
        pool_restarts=supervisor.pool_restarts,
        serial_fallback=supervisor.serial_fallback,
    )
