"""Deterministic fault injection for the supervised experiment runtime.

A :class:`FaultPlan` is a *seeded schedule* of worker failures: for every
work-unit key it decides — as a pure function of ``(seed, key, attempt)``
via :func:`~repro.runtime.checkpoint.stable_fraction` — whether that
attempt should crash the worker process, hang past the task timeout, or
raise a transient exception.  Because the schedule is deterministic, a
chaos run is exactly reproducible: the same plan injects the same faults
at the same attempts on every machine, and the supervised pool's recovery
can be asserted bit-for-bit against a fault-free run.

Faulted keys fail their first ``k`` attempts (``1 <= k <= max_failures``,
drawn deterministically per key) and then succeed, so any retry budget of
at least ``max_failures`` is guaranteed to complete the sweep.

Plans are frozen dataclasses (picklable — they travel to pool workers as
plain submit arguments) and can also be activated ambiently through the
``REPRO_FAULTS`` environment variable, e.g.::

    REPRO_FAULTS="seed=11:rate=0.4:kinds=crash,transient:max-failures=2" \\
        python -m repro all --jobs 4 --retries 5

Crash and hang faults only make sense inside a sacrificial worker
process; when the supervisor executes a unit in-process (serial mode or
the post-pool-failure fallback) they are demoted to transient exceptions,
which keeps the retry accounting identical without killing the parent.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from .checkpoint import stable_fraction

__all__ = ["FaultPlan", "TransientFault", "FAULTS_ENV_VAR", "FAULT_KINDS"]

#: Environment variable holding an ambient fault-plan spec.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Recognized fault kinds, in spec order.
FAULT_KINDS = ("crash", "hang", "transient")

#: Exit status of a crash-injected worker (distinctive in core-dump logs).
CRASH_EXIT_STATUS = 13


class TransientFault(RuntimeError):
    """The injected recoverable failure (also the demoted crash/hang form)."""


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic, seeded schedule of injected worker faults."""

    seed: int = 0
    rate: float = 0.25
    """Fraction of work-unit keys that fail at all (drawn per key)."""
    kinds: tuple[str, ...] = FAULT_KINDS
    max_failures: int = 1
    """A faulted key fails attempts ``0..k-1`` with ``k <= max_failures``."""
    hang_seconds: float = 600.0
    """How long a hang fault sleeps (pick well past the task timeout)."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if not self.kinds:
            raise ValueError("need at least one fault kind")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; pick from {FAULT_KINDS}"
                )

    # -- spec syntax ---------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value:key=value`` spec (the env/CLI syntax).

        Keys: ``seed`` (int), ``rate`` (float in [0,1]), ``kinds``
        (comma-separated subset of crash/hang/transient), ``max-failures``
        (int >= 1), ``hang-seconds`` (float).
        """
        fields: dict[str, object] = {}
        for part in spec.split(":"):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"bad fault spec field {part!r} (want key=value)")
            name = name.strip().replace("-", "_")
            value = value.strip()
            try:
                if name == "seed":
                    fields["seed"] = int(value)
                elif name == "rate":
                    fields["rate"] = float(value)
                elif name == "kinds":
                    fields["kinds"] = tuple(
                        k.strip() for k in value.split(",") if k.strip()
                    )
                elif name == "max_failures":
                    fields["max_failures"] = int(value)
                elif name == "hang_seconds":
                    fields["hang_seconds"] = float(value)
                else:
                    raise ValueError(f"unknown fault spec field {name!r}")
            except ValueError as exc:
                raise ValueError(f"bad fault spec {spec!r}: {exc}") from None
        return cls(**fields)  # type: ignore[arg-type]

    def format(self) -> str:
        """The spec string :meth:`parse` round-trips."""
        return (
            f"seed={self.seed}:rate={self.rate}:kinds={','.join(self.kinds)}"
            f":max-failures={self.max_failures}:hang-seconds={self.hang_seconds}"
        )

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The ambient plan from ``REPRO_FAULTS``, or None when unset/empty."""
        spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
        return cls.parse(spec) if spec else None

    # -- the schedule --------------------------------------------------------

    def planned_failures(self, key: str) -> int:
        """How many leading attempts of ``key`` fail (0 for unfaulted keys)."""
        if stable_fraction(self.seed, key, "gate") >= self.rate:
            return 0
        return 1 + int(stable_fraction(self.seed, key, "count") * self.max_failures)

    def decide(self, key: str, attempt: int) -> str | None:
        """The fault kind to inject for ``(key, attempt)``, or None."""
        if attempt >= self.planned_failures(key):
            return None
        pick = stable_fraction(self.seed, key, attempt, "kind")
        return self.kinds[int(pick * len(self.kinds))]

    def inject(self, key: str, attempt: int, *, in_worker: bool) -> None:
        """Execute the scheduled fault for ``(key, attempt)``, if any.

        ``in_worker`` tells the plan whether it runs inside a sacrificial
        pool worker (crashes/hangs allowed) or in the supervising process
        (both demote to :class:`TransientFault`).
        """
        kind = self.decide(key, attempt)
        if kind is None:
            return
        if kind == "crash" and in_worker:
            os._exit(CRASH_EXIT_STATUS)
        if kind == "hang" and in_worker:
            time.sleep(self.hang_seconds)
            return  # a survived hang completes normally (timeout reaps it)
        raise TransientFault(
            f"injected {kind} fault for unit {key!r} at attempt {attempt}"
        )
