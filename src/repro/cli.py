"""Command-line interface: regenerate any of the paper's figures/tables.

Usage::

    python -m repro fig1 [--parallelism 10] [--quanta 16]
    python -m repro fig2
    python -m repro fig4 [--parallelism 10] [--rate 0.2]
    python -m repro fig5 [--factors 2:101:7] [--jobs 50] [--workers N]
                         [--retries K] [--task-timeout S]
    python -m repro fig6 [--sets 200] [--bins 12] [--workers N]
                         [--retries K] [--task-timeout S]
    python -m repro all [--out results] [--scale reduced] [--jobs N]
                        [--resume] [--retries K] [--task-timeout S]
                        [--faults SPEC] [--compact-journal]
    python -m repro theorem1
    python -m repro bounds
    python -m repro ablation-rate | ablation-quantum | ablation-discipline |
                    ablation-allocator
    python -m repro audit [--lint src/repro]
    python -m repro lint [--deep] [--format json] [paths...]
    python -m repro record-traces [--out fixtures/goldens] [--check]
                                  [--record-on-green]
                                  [--from-experiments SCALE] [--sets N]
    python -m repro verify-traces [--fixtures fixtures/goldens] [--workers N]
                                  [--retries K] [--task-timeout S]
                                  [--faults SPEC] [--format json]
                                  [--shrink-out DIR]
    python -m repro --audit <any command>

Every command prints the rows/series the corresponding paper figure plots.
``audit`` (or the global ``--audit`` flag) replays the example workloads
through the invariant auditor (``repro.verify``) and exits non-zero on any
violation of the paper's model invariants.  ``lint`` runs the file-local
determinism rules (``ABG1xx``); with ``--deep`` it additionally runs the
interprocedural purity/parallel-safety analysis (``ABG2xx``,
``repro.verify.flow``) plus the kernel-parity and numerical-determinism
passes (``ABG3xx``, ``repro.verify.flow.kernel``) and emits one unified
report.  ``lint --deep --strict-roots`` also fails on pool-dispatch
payloads the analysis cannot resolve.  ``record-traces`` /
``verify-traces`` drive the golden-trace regression harness
(``repro.goldens``, rules ``ABG401``-``ABG404``): recording known-good
fixtures, replaying them on every execution path with a first-divergence
diff, checking fixture freshness (``--check``), and shrinking failures to
minimal reproductions (``--shrink-out``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import fields
from pathlib import Path

from . import experiments as exp
from .experiments.runner import RunInterrupted
from .runtime.faults import FaultPlan

__all__ = ["build_parser", "main"]


def _parse_range(spec: str) -> list[int]:
    """``a:b[:step]`` → ``range(a, b, step)``; a single integer → ``[a]``."""
    parts = spec.split(":")
    if len(parts) == 1:
        return [int(parts[0])]
    if len(parts) == 2:
        return list(range(int(parts[0]), int(parts[1])))
    if len(parts) == 3:
        return list(range(int(parts[0]), int(parts[1]), int(parts[2])))
    raise argparse.ArgumentTypeError(f"bad range spec {spec!r}")


def _worker_count(value: str) -> int:
    """``--workers``/``--jobs`` validator: an integer >= 0 (0 = all cores)."""
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"worker count must be an integer, got {value!r}"
        ) from None
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 0 (0 means all cores), got {count}"
        )
    return count


def _positive_int(value: str) -> int:
    """Validator for counts that must be at least 1."""
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {value!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError(f"expected an integer >= 1, got {count}")
    return count


def _shard_spec(value: str) -> int | str:
    """``--shards`` validator: ``auto`` or an integer >= 1 (1 = flat loop)."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard count must be an integer or 'auto', got {value!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"shard count must be >= 1 (1 means the flat loop), got {count}"
        )
    return count


def _retry_count(value: str) -> int:
    """``--retries`` validator: an integer >= 0 (0 = fail fast)."""
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"retry count must be an integer, got {value!r}"
        ) from None
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"retry count must be >= 0 (0 disables retries), got {count}"
        )
    return count


def _timeout_seconds(value: str) -> float:
    """``--task-timeout`` validator: a positive number of seconds."""
    try:
        seconds = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"timeout must be a number of seconds, got {value!r}"
        ) from None
    if not seconds > 0:
        raise argparse.ArgumentTypeError(f"timeout must be > 0 seconds, got {value}")
    return seconds


def _fault_plan(value: str) -> FaultPlan:
    """``--faults`` validator: a ``key=value:...`` fault-plan spec."""
    try:
        return FaultPlan.parse(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _rows_table(title: str, rows: list) -> str:
    if not rows:
        return f"{title}\n\n(no rows)"
    columns = tuple(f.name for f in fields(rows[0]))
    return exp.format_table(exp.ExperimentTable(title=title, columns=columns, rows=tuple(rows)))


def _cmd_fig1(args: argparse.Namespace) -> str:
    r = exp.run_fig1(parallelism=args.parallelism, num_quanta=args.quanta)
    lines = [
        f"Figure 1 — A-Greedy request instability (constant parallelism "
        f"{r.parallelism})",
        "",
        exp.format_series("quantum      ", [float(q) for q in r.quanta]),
        exp.format_series("request d(q) ", r.requests),
        exp.format_series("parallelism  ", r.measured_parallelism),
    ]
    return "\n".join(lines)


def _cmd_fig2(args: argparse.Namespace) -> str:
    r = exp.run_fig2()
    return (
        "Figure 2 — B-Greedy quantum measurement\n\n"
        f"T1(q)  = {r.quantum_work}   (paper: {r.paper_work})\n"
        f"Tinf(q) = {r.quantum_span}  (paper: {r.paper_span})\n"
        f"A(q)   = {r.avg_parallelism} (paper: {r.paper_parallelism})\n"
        f"matches paper: {r.matches_paper}"
    )


def _cmd_fig4(args: argparse.Namespace) -> str:
    abg, agreedy = exp.run_fig4(
        parallelism=args.parallelism, convergence_rate=args.rate
    )
    lines = [
        f"Figure 4 — transient behaviour, constant parallelism {abg.parallelism}",
        "",
        "(a) ABG:",
        exp.format_series("  d(q)", abg.requests),
        "",
        "(b) A-Greedy:",
        exp.format_series("  d(q)", agreedy.requests),
    ]
    if args.plot:
        from .report import line_chart

        lines.append("")
        lines.append(
            line_chart(
                {
                    "ABG": list(zip(abg.quanta, abg.requests)),
                    "A-Greedy": list(zip(agreedy.quanta, agreedy.requests)),
                    "parallelism": [
                        (q, float(abg.parallelism)) for q in abg.quanta
                    ],
                },
                title="d(q) per quantum",
                x_label="quantum",
                y_label="processor request",
            )
        )
    return "\n".join(lines)


def _cmd_fig5(args: argparse.Namespace) -> str:
    result = exp.run_fig5(
        factors=_parse_range(args.factors),
        jobs_per_factor=args.jobs,
        workers=args.workers,
        retries=args.retries,
        task_timeout=args.task_timeout,
    )
    if args.csv:
        from .report import write_csv

        write_csv(list(result.points), args.csv)
    out = _rows_table("Figure 5 — individual jobs vs transition factor", list(result.points))
    if args.plot:
        from .report import line_chart

        out += "\n\n" + line_chart(
            {
                "ABG": [(p.transition_factor, p.abg_time_norm) for p in result.points],
                "A-Greedy": [
                    (p.transition_factor, p.agreedy_time_norm) for p in result.points
                ],
            },
            title="Figure 5(a) — running time / Tinf",
            x_label="transition factor",
            y_label="time / Tinf",
        )
        out += "\n\n" + line_chart(
            {
                "ABG": [(p.transition_factor, p.abg_waste_norm) for p in result.points],
                "A-Greedy": [
                    (p.transition_factor, p.agreedy_waste_norm) for p in result.points
                ],
            },
            title="Figure 5(c) — waste / T1",
            x_label="transition factor",
            y_label="waste / T1",
        )
    out += (
        f"\n\nmean A-Greedy/ABG running-time ratio: {result.mean_time_ratio:.3f}"
        f"  (ABG improvement {100 * result.mean_time_improvement:.1f}%; paper: ~20%)"
        f"\nmean A-Greedy/ABG waste ratio:        {result.mean_waste_ratio:.3f}"
        f"  (ABG reduction {100 * result.mean_waste_reduction:.1f}%; paper: ~50%)"
    )
    return out


def _cmd_fig6(args: argparse.Namespace) -> str:
    result = exp.run_fig6(
        num_sets=args.sets,
        workers=args.workers,
        retries=args.retries,
        task_timeout=args.task_timeout,
        group_size=args.group_size,
        shards=args.shards,
    )
    bins = exp.bin_by_load(result, num_bins=args.bins)
    if args.csv:
        from .report import write_csv

        write_csv(list(result.points), args.csv)
    out = _rows_table("Figure 6 — job sets vs load (binned)", bins)
    if args.plot:
        from .report import line_chart

        def mid(b: exp.LoadBin) -> float:
            return (b.load_low + b.load_high) / 2

        out += "\n\n" + line_chart(
            {
                "ABG": [(mid(b), b.abg_makespan_norm) for b in bins],
                "A-Greedy": [(mid(b), b.agreedy_makespan_norm) for b in bins],
            },
            title="Figure 6(a) — makespan / M*",
            x_label="load",
            y_label="makespan / M*",
        )
        out += "\n\n" + line_chart(
            {
                "ABG": [(mid(b), b.abg_response_norm) for b in bins],
                "A-Greedy": [(mid(b), b.agreedy_response_norm) for b in bins],
            },
            title="Figure 6(c) — mean response time / R*",
            x_label="load",
            y_label="response / R*",
        )
    light_m, light_r = result.light_load_ratios()
    heavy_m, heavy_r = result.heavy_load_ratios()
    out += (
        f"\n\nlight load (<=1): A-Greedy/ABG makespan {light_m:.3f}, response {light_r:.3f}"
        f"  (paper: 1.10-1.15)"
        f"\nheavy load (>=4): A-Greedy/ABG makespan {heavy_m:.3f}, response {heavy_r:.3f}"
        f"  (paper: ~1.0)"
    )
    return out


def _cmd_giant(args: argparse.Namespace) -> str:
    import time

    from .sim.multi import simulate_job_set
    from .workloads.giant import artifact_rows, giant_scenario

    scenario = giant_scenario(
        groups=args.groups,
        jobs_per_group=args.jobs_per_group,
        stable_quanta=args.quanta,
    )
    t0 = time.perf_counter()
    result = simulate_job_set(
        scenario.specs,
        scenario.build_allocator(),
        scenario.processors,
        quantum_length=scenario.quantum_length,
        shards=args.shards,
    )
    elapsed = time.perf_counter() - t0
    rows = artifact_rows(result)
    lines = [
        f"giant scenario: {len(scenario.specs)} jobs on P={scenario.processors} "
        f"({args.groups} groups of {scenario.group_size})",
        f"shards={args.shards if args.shards is not None else 1}: "
        f"{result.quanta_elapsed} quanta in {elapsed:.3f}s "
        f"(makespan {result.makespan:.0f})",
    ]
    if args.csv:
        from .report import write_csv

        path = write_csv(rows, args.csv)
        lines.append(f"wrote {len(rows)} per-job rows to {path}")
    return "\n".join(lines)


def _cmd_theorem1(args: argparse.Namespace) -> str:
    return _rows_table("Theorem 1 — control-theoretic properties", exp.run_theorem1())


def _cmd_bounds(args: argparse.Namespace) -> str:
    return _rows_table(
        "Lemma 2 / Theorems 3-5 — measured vs bounds", exp.run_bounds_check()
    )


def _cmd_ablation_rate(args: argparse.Namespace) -> str:
    return _rows_table("Ablation — convergence rate", exp.run_rate_ablation())


def _cmd_ablation_quantum(args: argparse.Namespace) -> str:
    return _rows_table("Ablation — quantum length", exp.run_quantum_ablation())


def _cmd_ablation_discipline(args: argparse.Namespace) -> str:
    return _rows_table(
        "Ablation — breadth-first vs FIFO greedy", exp.run_discipline_ablation()
    )


def _cmd_ablation_allocator(args: argparse.Namespace) -> str:
    return _rows_table("Ablation — DEQ vs round-robin", exp.run_allocator_ablation())


def _cmd_stealing(args: argparse.Namespace) -> str:
    return _rows_table(
        "Work stealing — ABG vs A-Steal vs ABP", exp.run_stealing_compare()
    )


def _cmd_arrivals(args: argparse.Namespace) -> str:
    return _rows_table(
        "Open system — Poisson arrivals (Theorem 5 makespan setting)",
        exp.run_arrivals(),
    )


def _cmd_trim(args: argparse.Namespace) -> str:
    return _rows_table(
        "Trim analysis demo — speedup vs raw and trimmed availability",
        exp.run_trim_demo(),
    )


def _cmd_all(args: argparse.Namespace) -> str:
    from .experiments.runner import resume_status, run_everything

    if args.resume:
        completed, total = resume_status(args.out, args.scale)
        print(
            f"resuming: {completed}/{total} experiments already checkpointed "
            f"({100.0 * completed / total:.0f}%)"
        )
    result = run_everything(
        args.out,
        scale=args.scale,
        jobs=args.jobs,
        resume=args.resume,
        retries=args.retries,
        task_timeout=args.task_timeout,
        faults=args.faults,
        compact_journal=args.compact_journal,
    )
    lines = [f"ran {len(result.outcomes)} experiments at scale '{result.scale}' "
             f"in {result.total_seconds:.1f}s"]
    for o in result.outcomes:
        lines.append(f"  {o.name:<22} {o.rows:>4} rows  {o.seconds:>7.2f}s  -> {o.artifact}")
    lines.append(f"report: {result.report_path}")
    return "\n".join(lines)


def _cmd_controllers(args: argparse.Namespace) -> str:
    return _rows_table(
        "Controller comparison — adaptive vs fixed gain vs A-Greedy",
        exp.run_controller_compare(),
    )


def _cmd_overhead(args: argparse.Namespace) -> str:
    return _rows_table(
        "Reallocation-overhead study (cost of A-Greedy's instability)",
        exp.run_overhead_study(),
    )


def _cmd_characteristics(args: argparse.Namespace) -> str:
    return _rows_table(
        "Job characteristics study (Section 9 future work)",
        exp.run_characteristics_study(),
    )


def _cmd_bench(args: argparse.Namespace) -> str:
    import json

    from .bench import (
        compare_memory,
        compare_reports,
        load_report,
        report_payload,
        run_bench,
        write_report,
    )

    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
    else:  # committed baseline matching the requested scale
        suffix = "" if args.scale == "default" else f"_{args.scale}"
        baseline_path = Path(f"benchmarks/BENCH_baseline{suffix}.json")
    if baseline_path.exists():
        baseline = load_report(baseline_path)
    report = run_bench(scale=args.scale, repeats=args.repeats)

    lines = [
        f"perf baseline — rev {report.rev}, scale '{report.scale}', "
        f"best of {args.repeats} (calibration {report.calibration_seconds * 1e3:.1f} ms)",
        "",
    ]
    speedups = report.speedups_vs(baseline) if baseline is not None else {}
    for t in report.timings:
        line = (
            f"  {t.name:<22} {t.seconds * 1e3:>9.2f} ms  "
            f"{t.units_per_second:>12.0f} units/s  norm {t.normalized:>8.3f}  "
            f"peak {t.peak_bytes / 1e6:>7.1f} MB"
        )
        if t.name in speedups:
            line += f"  x{speedups[t.name]:.2f} vs {baseline.rev}"  # type: ignore[union-attr]
        lines.append(line)

    if args.write_baseline:
        from .runtime import write_atomic

        target = Path(args.write_baseline)
        write_atomic(target, json.dumps(report_payload(report), indent=1))
        lines.append(f"\nbaseline written: {target}")
        return "\n".join(lines)
    if args.out:
        path = write_report(report, args.out, baseline=baseline)
        lines.append(f"\nreport written: {path}")

    if baseline is None:
        lines.append(
            "\nno baseline to gate against"
            + (f" (missing {baseline_path})" if baseline_path else "")
        )
        return "\n".join(lines)

    regressions = compare_reports(
        report, baseline, max_regression=args.max_regression
    )
    mem_regressions = compare_memory(
        report, baseline, max_regression=args.max_mem_regression
    )
    if regressions:
        lines.append(
            f"\nPERF REGRESSION vs {baseline.rev} "
            f"(gate: {100 * args.max_regression:.0f}%):"
        )
        for r in regressions:
            lines.append(
                f"  {r.scenario}: normalized {r.baseline_normalized:.3f} -> "
                f"{r.current_normalized:.3f} ({r.slowdown:.2f}x slower)"
            )
    if mem_regressions:
        lines.append(
            f"\nMEMORY REGRESSION vs {baseline.rev} "
            f"(gate: {100 * args.max_mem_regression:.0f}%):"
        )
        for m in mem_regressions:
            lines.append(
                f"  {m.scenario}: peak {m.baseline_peak_bytes / 1e6:.1f} MB -> "
                f"{m.current_peak_bytes / 1e6:.1f} MB ({m.growth:.2f}x)"
            )
    if regressions or mem_regressions:
        print("\n".join(lines))
        raise SystemExit(1)
    lines.append(
        f"\nno regressions vs {baseline.rev} "
        f"(time gate: {100 * args.max_regression:.0f}%, "
        f"memory gate: {100 * args.max_mem_regression:.0f}%)"
    )
    return "\n".join(lines)


def _run_audit_suite() -> tuple[str, int]:
    """Run the canonical audit scenarios; exit status 1 on any violation."""
    from .verify.scenarios import format_suite, run_audit_suite

    results = run_audit_suite()
    failed = any(not report.ok for _, report in results)
    return format_suite(results), 1 if failed else 0


def _cmd_audit(args: argparse.Namespace) -> str:
    text, status = _run_audit_suite()
    if args.lint:
        from .verify.lint import lint_paths

        try:
            findings = lint_paths([p for p in args.lint])
        except FileNotFoundError as exc:
            print(text)
            raise SystemExit(f"error: {exc}") from None
        if findings:
            text += "\n\nlint findings:\n" + "\n".join(str(f) for f in findings)
            status = 1
        else:
            text += f"\n\nlint: clean ({', '.join(args.lint)})"
    if status:
        print(text)
        raise SystemExit(1)
    return text


def _cmd_lint(args: argparse.Namespace) -> str:
    import json

    from .verify.findings import exit_code, findings_payload, render_findings
    from .verify.lint import lint_paths

    if args.explain is not None:
        from .verify.catalogue import explain

        text = explain(args.explain)
        if text is None:
            raise SystemExit(
                f"error: unknown rule {args.explain!r}; valid codes are "
                "listed in docs/STATIC_ANALYSIS.md"
            )
        return text

    paths = args.paths or ["src/repro"]
    try:
        findings = lint_paths(paths)
    except FileNotFoundError as exc:
        raise SystemExit(f"error: {exc}") from None

    stats = None
    if args.deep:
        from .verify.flow import SummaryCache, analyze_paths

        cache = None if args.no_cache else SummaryCache(args.cache)
        deep = analyze_paths(paths, cache=cache, strict_roots=args.strict_roots)
        findings = sorted(
            [*findings, *deep.findings],
            key=lambda f: (f.path, f.line, f.col, f.code),
        )
        stats = deep.stats

    if args.format == "json":
        text = json.dumps(findings_payload(findings, stats=stats), indent=1)
    else:
        text = render_findings(findings)
        if stats is not None:
            text += (
                f"\ndeep: {stats['modules']} modules, "
                f"{stats['functions']} functions, {stats['roots']} roots, "
                f"{stats['reachable']} worker-reachable, "
                f"{stats['kernel_files']} kernel files "
                f"(cache: {stats['cache_hits']} hit, "
                f"{stats['cache_misses']} miss)"
            )
    status = exit_code(findings)
    if status:
        print(text)
        raise SystemExit(status)
    return text


def _cmd_record_traces(args: argparse.Namespace) -> str:
    from .goldens import check_freshness, record_fixtures, record_stale_fixtures
    from .verify.findings import exit_code, render_findings

    out = Path(args.out)
    if args.check:
        findings = check_freshness(out)
        text = render_findings(findings)
        status = exit_code(findings)
        if status:
            print(text)
            raise SystemExit(status)
        return text
    if args.record_on_green:
        if args.from_experiments is not None:
            raise SystemExit(
                "error: --record-on-green applies to the default registry "
                "only (drop --from-experiments)"
            )
        written, skipped = record_stale_fixtures(out)
        lines = [
            f"re-recorded {len(written)} stale fixture(s) under {out}, "
            f"left {len(skipped)} green fixture(s) untouched:"
        ]
        lines.extend(f"  stale {path}" for path in written)
        lines.extend(f"  green {path}" for path in skipped)
        return "\n".join(lines)
    if args.from_experiments is not None:
        from .experiments.runner import record_from_experiments

        written = record_from_experiments(
            out, scale=args.from_experiments, sets=args.sets
        )
    else:
        written = record_fixtures(out)
    lines = [f"recorded {len(written)} golden fixture(s) under {out}:"]
    lines.extend(f"  {path}" for path in written)
    return "\n".join(lines)


def _cmd_verify_traces(args: argparse.Namespace) -> str:
    import json

    from .goldens import (
        ScenarioSpec,
        fixture_paths,
        regression_bundle,
        shrink_scenario,
        verify_traces,
    )

    fixtures = fixture_paths(args.fixtures)
    if not fixtures:
        raise SystemExit(f"error: no golden fixtures found under {args.fixtures!r}")
    report = verify_traces(
        fixtures,
        workers=args.workers,
        retries=args.retries if args.retries is not None else 2,
        task_timeout=args.task_timeout,
        faults=args.faults,
    )
    if args.format == "json":
        text = json.dumps(report.payload(), indent=1)
    else:
        text = report.render()
    if report.passed:
        return text
    if args.shrink_out is not None:
        from .io.traces import load_golden_bundle, save_golden_bundle

        shrink_dir = Path(args.shrink_out)
        shrink_dir.mkdir(parents=True, exist_ok=True)
        shrunk_lines: list[str] = []
        failing = sorted(
            {o["fixture"] for o in report.outcomes if o["status"] == "fail"}
        )
        for fixture in failing:
            spec = ScenarioSpec.from_dict(load_golden_bundle(fixture).scenario)
            result = shrink_scenario(spec)
            if result is None:
                shrunk_lines.append(
                    f"  {spec.scenario_id}: not shrinkable (all execution "
                    "paths agree; behaviour changed consistently — "
                    "re-record if intended)"
                )
                continue
            bundle = regression_bundle(result, shrunk_from=fixture)
            path = save_golden_bundle(
                shrink_dir / f"{result.spec.scenario_id}-min.json", bundle
            )
            shrunk_lines.append(f"  {path}: {result.describe()}")
        if shrunk_lines:
            text += "\n\nshrunk reproductions:\n" + "\n".join(shrunk_lines)
    print(text)
    raise SystemExit(1)


def _add_resilience_arguments(p: argparse.ArgumentParser) -> None:
    """The shared ``--retries``/``--task-timeout`` knobs of supervised fan-out."""
    p.add_argument(
        "--retries",
        type=_retry_count,
        default=None,
        help="failed-attempt budget per work unit before the run aborts "
        "(default: 2; retries re-run the same pure unit, so results are "
        "unchanged)",
    )
    p.add_argument(
        "--task-timeout",
        type=_timeout_seconds,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock limit; a unit past its deadline is killed "
        "with its pool and retried (default: none for fig5/fig6; per-scale "
        "for `all` — 120s smoke, 900s reduced, 3600s full)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="abg-repro",
        description="Reproduce the evaluation of 'Adaptive B-Greedy (ABG)' (IPPS 2008).",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="after the command, replay the example workloads through the "
        "invariant auditor and fail on any violation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="A-Greedy request instability")
    p.add_argument("--parallelism", type=int, default=10)
    p.add_argument("--quanta", type=int, default=16)
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("fig2", help="B-Greedy quantum measurement example")
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig4", help="ABG vs A-Greedy transient behaviour")
    p.add_argument("--parallelism", type=int, default=10)
    p.add_argument("--rate", type=float, default=0.2)
    p.add_argument("--plot", action="store_true", help="draw an ASCII chart")
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("fig5", help="individual jobs vs transition factor")
    p.add_argument("--factors", default="2:101:7", help="a:b[:step] transition factors")
    p.add_argument("--jobs", type=_positive_int, default=50, help="jobs per factor")
    p.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="parallel worker processes (0 = all cores); results are "
        "bit-identical at any worker count",
    )
    _add_resilience_arguments(p)
    p.add_argument("--plot", action="store_true", help="draw ASCII charts")
    p.add_argument("--csv", default=None, help="write per-factor rows to CSV")
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig6", help="job sets vs load under DEQ")
    p.add_argument("--sets", type=_positive_int, default=200, help="number of job sets")
    p.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="parallel worker processes (0 = all cores); results are "
        "bit-identical at any worker count",
    )
    _add_resilience_arguments(p)
    p.add_argument("--bins", type=_positive_int, default=12)
    p.add_argument(
        "--group-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="run every set under hierarchical allocation with groups of "
        "this many processors (default: centralized DEQ)",
    )
    p.add_argument(
        "--shards",
        type=_shard_spec,
        default=None,
        metavar="N",
        help="dispatch each set's quantum loop over N shard workers "
        "('auto' = all cores); figures are byte-identical at any value",
    )
    p.add_argument("--plot", action="store_true", help="draw ASCII charts")
    p.add_argument("--csv", default=None, help="write per-set rows to CSV")
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser(
        "giant",
        help="giant-scale hierarchical sharding scenario (thousands of "
        "jobs, P in the tens of thousands); the CSV artifact is "
        "byte-identical at any --shards value",
    )
    p.add_argument(
        "--groups", type=_positive_int, default=32, help="allocation groups"
    )
    p.add_argument(
        "--jobs-per-group", type=_positive_int, default=128, help="jobs per group"
    )
    p.add_argument(
        "--quanta",
        type=_positive_int,
        default=800,
        help="quanta a stable job runs (sets the horizon)",
    )
    p.add_argument(
        "--shards",
        type=_shard_spec,
        default=None,
        metavar="N",
        help="shard workers ('auto' = all cores; default: flat loop)",
    )
    p.add_argument("--csv", default=None, help="write per-job rows to CSV")
    p.set_defaults(func=_cmd_giant)

    p = sub.add_parser("theorem1", help="control-theoretic property table")
    p.set_defaults(func=_cmd_theorem1)

    p = sub.add_parser("bounds", help="Lemma 2 / Theorems 3-5 bound checks")
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser("ablation-rate", help="convergence-rate sweep")
    p.set_defaults(func=_cmd_ablation_rate)

    p = sub.add_parser("ablation-quantum", help="quantum-length sweep + adaptive")
    p.set_defaults(func=_cmd_ablation_quantum)

    p = sub.add_parser("ablation-discipline", help="breadth-first vs FIFO greedy")
    p.set_defaults(func=_cmd_ablation_discipline)

    p = sub.add_parser("ablation-allocator", help="DEQ vs round-robin")
    p.set_defaults(func=_cmd_ablation_allocator)

    p = sub.add_parser("stealing", help="ABG vs A-Steal vs ABP (work stealing)")
    p.set_defaults(func=_cmd_stealing)

    p = sub.add_parser("arrivals", help="open system with Poisson releases")
    p.set_defaults(func=_cmd_arrivals)

    p = sub.add_parser(
        "characteristics", help="alternative job characteristics study"
    )
    p.set_defaults(func=_cmd_characteristics)

    p = sub.add_parser("overhead", help="reallocation-overhead sweep")
    p.set_defaults(func=_cmd_overhead)

    p = sub.add_parser(
        "controllers", help="adaptive vs fixed-gain integral controllers"
    )
    p.set_defaults(func=_cmd_controllers)

    p = sub.add_parser("trim", help="trim-analysis speedup demonstration")
    p.set_defaults(func=_cmd_trim)

    p = sub.add_parser("all", help="run every experiment, write JSON + REPORT.md")
    p.add_argument("--out", default="results", help="output directory")
    p.add_argument(
        "--scale", choices=("smoke", "reduced", "full"), default="reduced"
    )
    p.add_argument(
        "--jobs",
        type=_worker_count,
        default=1,
        help="parallel worker processes for the experiments (0 = all "
        "cores); the JSON artifacts are bit-identical at any job count",
    )
    _add_resilience_arguments(p)
    p.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="replay experiments already checkpointed under <out>/.journal "
        "instead of re-running them (--no-resume clears the journal first)",
    )
    p.add_argument(
        "--compact-journal",
        action="store_true",
        help="after a successful run, fold the per-unit checkpoint files "
        "into one atomic segment file (resume behaviour is unchanged)",
    )
    p.add_argument(
        "--faults",
        type=_fault_plan,
        default=None,
        metavar="SPEC",
        help="inject a deterministic fault schedule, e.g. "
        "'seed=11:rate=0.4:kinds=crash,transient:max-failures=2' "
        "(chaos testing; artifacts stay bit-identical because retries "
        "re-run the same pure work units)",
    )
    p.set_defaults(func=_cmd_all)

    p = sub.add_parser(
        "bench",
        help="time the canonical perf scenarios, write BENCH_<rev>.json, "
        "and gate against the committed baseline",
    )
    p.add_argument("--scale", choices=("smoke", "default"), default="default")
    p.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    p.add_argument("--out", default=None, help="directory for BENCH_<rev>.json")
    p.add_argument(
        "--baseline",
        default=None,
        help="baseline report to gate against (default: the committed "
        "benchmarks/BENCH_baseline[_<scale>].json; skipped when missing)",
    )
    p.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        help="fail when a scenario's normalized time regresses more than "
        "this fraction vs the baseline",
    )
    p.add_argument(
        "--max-mem-regression",
        type=float,
        default=0.25,
        help="fail when a scenario's peak heap grows more than this "
        "fraction vs the baseline",
    )
    p.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write this run as the new baseline file instead of gating",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "audit",
        help="replay the example workloads through the invariant auditor "
        "(exit 1 on any violation)",
    )
    p.add_argument(
        "--lint",
        nargs="*",
        metavar="PATH",
        default=None,
        help="additionally run the determinism lint pass on these paths",
    )
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "lint",
        help="run the determinism lint (ABG1xx); --deep adds the "
        "interprocedural purity/parallel-safety analysis (ABG2xx) and the "
        "kernel-parity/numerical-determinism passes (ABG3xx)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to analyze (default: src/repro)",
    )
    p.add_argument(
        "--deep",
        action="store_true",
        help="also build the call graph from the worker-dispatch roots and "
        "check every reachable function (rules ABG201-ABG333), plus the "
        "scalar<->batched kernel-parity and numerical-determinism passes",
    )
    p.add_argument(
        "--strict-roots",
        action="store_true",
        help="with --deep: fail (ABG333) on pool-dispatch payloads the "
        "analysis cannot resolve to a function, instead of trusting the "
        "declared root patterns to cover them",
    )
    p.add_argument(
        "--explain",
        metavar="ABGNNN",
        default=None,
        help="print the long-form catalogue entry for one rule "
        "(description, hazard, example, suppression guidance) and exit "
        "without analyzing anything",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json follows the schema in docs/STATIC_ANALYSIS.md)",
    )
    p.add_argument(
        "--cache",
        default=".abg_cache/flow-summaries.json",
        metavar="PATH",
        help="effect-summary cache file for --deep (content-hash keyed)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the summary cache",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "record-traces",
        help="record golden trace fixtures (or --check that the committed "
        "fixtures are fresh against the current tree)",
    )
    p.add_argument(
        "--out",
        default="fixtures/goldens",
        metavar="DIR",
        help="fixture directory (default: fixtures/goldens)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="do not write anything; fail (ABG404) if re-recording any "
        "committed fixture from the current tree would change it",
    )
    p.add_argument(
        "--record-on-green",
        action="store_true",
        help="re-record only stale fixtures (missing file, scenario drift, "
        "or digest drift); byte-fresh fixtures are left untouched so their "
        "committed bytes and provenance never churn",
    )
    p.add_argument(
        "--from-experiments",
        choices=("smoke", "reduced", "full"),
        default=None,
        metavar="SCALE",
        help="instead of the default registry, materialize and record the "
        "first --sets job sets of the fig6 sweep at this scale",
    )
    p.add_argument(
        "--sets",
        type=_positive_int,
        default=2,
        help="job sets to record with --from-experiments (default: 2)",
    )
    p.set_defaults(func=_cmd_record_traces)

    p = sub.add_parser(
        "verify-traces",
        help="replay every committed golden fixture on all execution paths "
        "(serial/batched/superstep/sharded) and fail with the first "
        "diverging quantum and a field-level diff",
    )
    p.add_argument(
        "--fixtures",
        default="fixtures/goldens",
        metavar="DIR",
        help="fixture directory to replay (default: fixtures/goldens)",
    )
    p.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="parallel worker processes (0 = all cores); the report is "
        "byte-identical at any worker count",
    )
    _add_resilience_arguments(p)
    p.add_argument(
        "--faults",
        type=_fault_plan,
        default=None,
        metavar="SPEC",
        help="inject a deterministic fault schedule into the replay pool "
        "(chaos testing; the verdict stays byte-identical because every "
        "replay unit is pure)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    p.add_argument(
        "--shrink-out",
        default=None,
        metavar="DIR",
        help="on failure, delta-debug each failing fixture's job set to a "
        "minimal reproduction and write <id>-min.json fixtures here",
    )
    p.set_defaults(func=_cmd_verify_traces)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        print(args.func(args))
    except RunInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    if args.audit and args.command != "audit":
        text, status = _run_audit_suite()
        print()
        print(text)
        return status
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
