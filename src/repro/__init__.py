"""repro — a reproduction of "Adaptive B-Greedy (ABG): A Simple yet Efficient
Scheduling Algorithm" (Hongyang Sun, Wen-Jing Hsu, IPPS 2008).

ABG is a two-level adaptive scheduler for malleable parallel jobs: the
B-Greedy task scheduler executes ready tasks breadth-first (measuring the
job's average parallelism per quantum exactly) and the A-Control feedback
law ``d(q) = r*d(q-1) + (1-r)*A(q-1)`` turns that measurement into stable,
zero-overshoot processor requests.  The package also implements the A-Greedy
baseline, dynamic equi-partitioning, the paper's control-theoretic and trim
analyses, and the full evaluation harness (Figures 1-6, Theorems 1-5).

Quickstart
----------
>>> import numpy as np
>>> from repro import AControl, AGreedy, ForkJoinGenerator, simulate_job
>>> gen = ForkJoinGenerator(quantum_length=1000)
>>> job = gen.generate(np.random.default_rng(0), transition_factor=20)
>>> abg = simulate_job(job, AControl(0.2), availability=128)
>>> agreedy = simulate_job(job, AGreedy(), availability=128)
>>> abg.total_waste <= agreedy.total_waste
True
"""

from .allocators import (
    Allocator,
    AvailabilityPolicy,
    ConstantAvailability,
    DynamicEquiPartitioning,
    InverseParallelismAvailability,
    RandomAvailability,
    RoundRobinAllocator,
    TraceAvailability,
)
from .analysis import (
    check_lemma2,
    classify_quanta,
    job_set_transition_factor,
    measured_transition_factor,
    theorem3_time_bound,
    theorem4_waste_bound,
    theorem5_makespan_bound,
    theorem5_response_bound,
    trimmed_availability,
)
from .control import FirstOrderLoop, analyze_response, theorem1_loop, verify_theorem1
from .core import (
    NO_OVERHEAD,
    AControl,
    AdaptiveQuantumLength,
    AGreedy,
    FeedbackPolicy,
    FixedQuantumLength,
    FixedRequest,
    JobTrace,
    OracleFeedback,
    QuantumRecord,
    ReallocationOverhead,
)
from .dag import (
    Dag,
    chain,
    characteristics,
    diamond,
    figure2_fragment,
    fork_join,
    fork_join_from_phases,
    random_layered,
    series_parallel,
    wide_level,
)
from .engine import ExplicitExecutor, Phase, PhasedExecutor, PhasedJob
from .io import load_trace, load_traces, save_trace, save_traces
from .report import bar_chart, line_chart, rows_to_csv, rows_to_json, sparkline
from .sim import (
    JobSpec,
    MultiJobResult,
    job_set_load,
    make_executor,
    makespan,
    makespan_lower_bound,
    mean_response_time,
    mean_response_time_lower_bound,
    simulate_job,
    simulate_job_set,
)
from .stealing import ABPPolicy, ASteal, StealStats, WorkStealingExecutor
from .workloads import (
    ForkJoinGenerator,
    JobSetGenerator,
    constant_parallelism_job,
    fork_join_job,
    job_from_profile,
    ramped_job,
    structural_transition_factor,
)

__version__ = "1.0.0"

__all__ = [
    # engines & job models
    "Dag",
    "PhasedJob",
    "Phase",
    "ExplicitExecutor",
    "PhasedExecutor",
    "make_executor",
    # dag builders
    "chain",
    "wide_level",
    "diamond",
    "fork_join",
    "fork_join_from_phases",
    "figure2_fragment",
    "random_layered",
    "series_parallel",
    "characteristics",
    # feedback policies
    "FeedbackPolicy",
    "AControl",
    "AGreedy",
    "FixedRequest",
    "OracleFeedback",
    # quantum policies
    "FixedQuantumLength",
    "AdaptiveQuantumLength",
    # overhead models
    "ReallocationOverhead",
    "NO_OVERHEAD",
    # allocators
    "Allocator",
    "AvailabilityPolicy",
    "ConstantAvailability",
    "InverseParallelismAvailability",
    "RandomAvailability",
    "TraceAvailability",
    "DynamicEquiPartitioning",
    "RoundRobinAllocator",
    # simulation
    "simulate_job",
    "simulate_job_set",
    "JobSpec",
    "MultiJobResult",
    "JobTrace",
    "QuantumRecord",
    # metrics
    "makespan",
    "mean_response_time",
    "makespan_lower_bound",
    "mean_response_time_lower_bound",
    "job_set_load",
    # control-theoretic analysis
    "FirstOrderLoop",
    "analyze_response",
    "theorem1_loop",
    "verify_theorem1",
    # algorithmic analysis
    "classify_quanta",
    "trimmed_availability",
    "measured_transition_factor",
    "job_set_transition_factor",
    "check_lemma2",
    "theorem3_time_bound",
    "theorem4_waste_bound",
    "theorem5_makespan_bound",
    "theorem5_response_bound",
    # workloads
    "ForkJoinGenerator",
    "JobSetGenerator",
    "constant_parallelism_job",
    "fork_join_job",
    "job_from_profile",
    "ramped_job",
    "structural_transition_factor",
    # work stealing (related-work schedulers)
    "WorkStealingExecutor",
    "StealStats",
    "ASteal",
    "ABPPolicy",
    # reporting & persistence
    "sparkline",
    "line_chart",
    "bar_chart",
    "rows_to_csv",
    "rows_to_json",
    "save_trace",
    "load_trace",
    "save_traces",
    "load_traces",
    "__version__",
]
