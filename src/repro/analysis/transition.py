"""Transition-factor measurement (paper Section 5.2).

The transition factor ``CL >= 1`` of a job is the maximal ratio of average
parallelism between any two adjacent full quanta for quantum length ``L``
(with ``A(0) = 1``).  It is an intrinsic job characteristic for a given
``L`` and captures how hard the job is to schedule non-clairvoyantly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.types import JobTrace, transition_factor_of_series

__all__ = [
    "measured_transition_factor",
    "transition_factor_of_series",
    "job_set_transition_factor",
    "parallelism_transitions",
]


def measured_transition_factor(trace: JobTrace) -> float:
    """``CL`` measured from one job's quantum trace."""
    return trace.measured_transition_factor()


def job_set_transition_factor(traces: Iterable[JobTrace]) -> float:
    """The maximum transition factor over a set of jobs — the ``CL`` that
    appears in Theorem 5's makespan/response-time bounds."""
    factors = [t.measured_transition_factor() for t in traces]
    if not factors:
        raise ValueError("no traces")
    return max(factors)


def parallelism_transitions(series: Sequence[float]) -> list[float]:
    """Per-step ratio series ``max(A(q)/A(q-1), A(q-1)/A(q))`` including the
    initial ``A(0) = 1`` transition; useful for locating where a job's
    parallelism swings."""
    out: list[float] = []
    prev = 1.0
    for a in series:
        if a <= 0:
            continue
        out.append(max(a / prev, prev / a))
        prev = a
    return out
