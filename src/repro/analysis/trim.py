"""Trim analysis (paper Section 6.1).

Trim analysis limits the power of an adversarial OS allocator: an allocator
may dangle many processors exactly when the job cannot use them, wrecking
speedup measured against *average* availability.  Trimming the ``R`` time
steps with the highest availability and averaging over the rest yields the
*R-trimmed availability* ``P~``, against which ABG achieves nearly linear
speedup (Theorem 3).

Quantum classification (Section 6.1): a *full* quantum ``q`` is

- **accounted** if the request was deprived (``a(q) < d(q)``) *and* the
  allotment ran below the measured parallelism (``a(q) < A(q)``) — these
  quanta make guaranteed work progress (``alpha(q) >= 1/2``);
- **deductible** otherwise (``a(q) = d(q)`` or ``a(q) >= A(q)``) — these make
  guaranteed critical-path progress.

The job's final, non-full quantum is neither.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import JobTrace, QuantumRecord

__all__ = ["QuantumClasses", "classify_quanta", "trimmed_availability"]


@dataclass(frozen=True, slots=True)
class QuantumClasses:
    """Partition of a trace's quanta per the trim analysis."""

    accounted: tuple[QuantumRecord, ...]
    deductible: tuple[QuantumRecord, ...]
    non_full: tuple[QuantumRecord, ...]

    @property
    def counts(self) -> tuple[int, int, int]:
        return (len(self.accounted), len(self.deductible), len(self.non_full))


def classify_quanta(trace: JobTrace) -> QuantumClasses:
    """Split a job trace into accounted / deductible / non-full quanta."""
    accounted: list[QuantumRecord] = []
    deductible: list[QuantumRecord] = []
    non_full: list[QuantumRecord] = []
    for rec in trace:
        if not rec.is_full:
            non_full.append(rec)
        elif rec.allotment < rec.request_int and rec.allotment < rec.avg_parallelism:
            accounted.append(rec)
        else:
            deductible.append(rec)
    return QuantumClasses(
        accounted=tuple(accounted),
        deductible=tuple(deductible),
        non_full=tuple(non_full),
    )


def trimmed_availability(trace: JobTrace, trim_steps: float) -> float:
    """The ``R``-trimmed processor availability ``P~``.

    Every quantum contributes ``steps`` time steps at availability ``p(q)``.
    The ``trim_steps`` steps with the *highest* availability are removed and
    the mean availability of the remaining steps returned.  If trimming
    swallows the whole execution the bound is vacuous and 0 is returned.
    """
    if trim_steps < 0:
        raise ValueError("cannot trim a negative number of steps")
    avail = np.array([rec.available for rec in trace], dtype=np.float64)
    steps = np.array([rec.steps for rec in trace], dtype=np.float64)
    if avail.size == 0:
        raise ValueError("empty trace")
    order = np.argsort(-avail)  # highest availability first
    avail, steps = avail[order], steps[order]
    remaining_to_trim = float(trim_steps)
    kept_weight = 0.0
    kept_sum = 0.0
    for p, s in zip(avail, steps):
        if remaining_to_trim >= s:
            remaining_to_trim -= s
            continue
        keep = s - remaining_to_trim
        remaining_to_trim = 0.0
        kept_weight += keep
        kept_sum += p * keep
    if kept_weight <= 0.0:
        return 0.0
    return float(kept_sum / kept_weight)
