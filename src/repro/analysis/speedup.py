"""Speedup accounting under trim analysis (paper Section 6.1).

The point of the R-trimmed availability: an adversarial allocator can make
the *raw* mean availability arbitrarily high while the job is serial,
destroying any speedup guarantee stated against it.  Trimming the R highest-
availability steps restores a meaningful baseline: Theorem 3 says ABG's
running time is within a factor ~2 of ``T1 / P~`` plus a span term — i.e.
nearly linear speedup against the trimmed availability.

:func:`speedup_report` computes both views for a measured trace so the
contrast is visible in one table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import JobTrace
from .bounds import theorem3_trim_steps
from .trim import trimmed_availability

__all__ = ["SpeedupReport", "speedup_report"]


@dataclass(frozen=True, slots=True)
class SpeedupReport:
    """Speedup of one run measured against raw and trimmed availability."""

    running_time: int
    serial_time: int
    """``T1`` — the one-processor running time."""

    speedup: float
    """``T1 / T``."""

    raw_availability: float
    """Unweighted mean availability over all steps."""

    trimmed_availability: float
    """Availability after trimming Theorem 3's step budget."""

    trim_steps: float

    @property
    def linearity_vs_raw(self) -> float:
        """``speedup / raw availability`` — near 0 under an adversary."""
        if self.raw_availability <= 0:
            return 0.0
        return self.speedup / self.raw_availability

    @property
    def linearity_vs_trimmed(self) -> float:
        """``speedup / trimmed availability`` — Theorem 3 keeps this bounded
        below by roughly 1/2 once span terms are negligible."""
        if self.trimmed_availability <= 0:
            return float("inf")
        return self.speedup / self.trimmed_availability


def speedup_report(
    trace: JobTrace,
    work: int,
    span: float,
    convergence_rate: float,
    *,
    transition_factor: float | None = None,
) -> SpeedupReport:
    """Build the raw-vs-trimmed speedup comparison for a measured trace."""
    if work < 1:
        raise ValueError("work must be positive")
    cl = (
        transition_factor
        if transition_factor is not None
        else trace.measured_transition_factor()
    )
    trim = theorem3_trim_steps(span, trace.quantum_length, cl, convergence_rate)
    running_time = trace.running_time
    return SpeedupReport(
        running_time=running_time,
        serial_time=work,
        speedup=work / running_time if running_time else float("inf"),
        raw_availability=trimmed_availability(trace, 0),
        trimmed_availability=trimmed_availability(trace, trim),
        trim_steps=trim,
    )
