"""Algorithmic analysis: trim analysis, transition factors, and the paper's
theorem bounds evaluated on measured traces."""

from .characteristics import (
    ParallelismCharacteristics,
    job_structure_characteristics,
    trace_characteristics,
)
from .bounds import (
    Lemma2Report,
    Theorem3Report,
    check_lemma2,
    lemma2_coefficients,
    theorem3_time_bound,
    theorem3_trim_steps,
    theorem4_waste_bound,
    theorem5_makespan_bound,
    theorem5_response_bound,
)
from .transition import (
    job_set_transition_factor,
    measured_transition_factor,
    parallelism_transitions,
)
from .speedup import SpeedupReport, speedup_report
from .trim import QuantumClasses, classify_quanta, trimmed_availability

__all__ = [
    "ParallelismCharacteristics",
    "trace_characteristics",
    "job_structure_characteristics",
    "SpeedupReport",
    "speedup_report",
    "QuantumClasses",
    "classify_quanta",
    "trimmed_availability",
    "measured_transition_factor",
    "job_set_transition_factor",
    "parallelism_transitions",
    "lemma2_coefficients",
    "check_lemma2",
    "Lemma2Report",
    "theorem3_trim_steps",
    "theorem3_time_bound",
    "Theorem3Report",
    "theorem4_waste_bound",
    "theorem5_makespan_bound",
    "theorem5_response_bound",
]
