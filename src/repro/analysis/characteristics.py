"""Alternative job characteristics (paper Section 9 future work).

"Beside the transition factor, alternative job characteristics such as the
frequency on the change of parallelism, or the variance, etc. can be
considered when analyzing adaptive schedulers."  This module computes those
characteristics from quantum traces and from phased-job structure so the
characteristics experiment can correlate them with scheduler performance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import JobTrace
from ..engine.phased import PhasedJob

__all__ = [
    "ParallelismCharacteristics",
    "trace_characteristics",
    "job_structure_characteristics",
]


@dataclass(frozen=True, slots=True)
class ParallelismCharacteristics:
    """Summary statistics of a parallelism series."""

    transition_factor: float
    """max adjacent ratio (the paper's CL)."""

    change_frequency: float
    """Fraction of adjacent pairs whose parallelism differs by more than 5%
    — the 'frequency on the change of parallelism'."""

    variance: float
    """Variance of the series."""

    coefficient_of_variation: float
    """std / mean — scale-free variability."""

    mean: float


def _characterize(series: np.ndarray) -> ParallelismCharacteristics:
    if series.size == 0:
        raise ValueError("empty parallelism series")
    if np.any(series <= 0):
        raise ValueError("parallelism must be positive")
    if series.size == 1:
        c = 1.0
        freq = 0.0
    else:
        ratios = np.maximum(series[1:] / series[:-1], series[:-1] / series[1:])
        c = float(max(ratios.max(), series[0] / 1.0, 1.0 / series[0], 1.0))
        freq = float(np.mean(ratios > 1.05))
    mean = float(series.mean())
    var = float(series.var())
    return ParallelismCharacteristics(
        transition_factor=c,
        change_frequency=freq,
        variance=var,
        coefficient_of_variation=float(np.sqrt(var) / mean) if mean else 0.0,
        mean=mean,
    )


def trace_characteristics(trace: JobTrace) -> ParallelismCharacteristics:
    """Characteristics of the measured per-quantum parallelism.

    Uses full quanta (the paper's convention for ``CL``); a job so short it
    never completes a full quantum falls back to all its quanta."""
    series = np.array(
        [r.avg_parallelism for r in trace.full_quanta if r.avg_parallelism > 0]
    )
    if series.size == 0:
        series = np.array(
            [r.avg_parallelism for r in trace if r.avg_parallelism > 0]
        )
    return _characterize(series)


def job_structure_characteristics(job: PhasedJob) -> ParallelismCharacteristics:
    """Characteristics of the job's structural level-width profile, weighted
    by phase duration (levels)."""
    widths = np.array(job.parallelism_profile(), dtype=np.float64)
    return _characterize(widths)
